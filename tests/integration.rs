//! Cross-crate integration tests against the facade: full training
//! pipelines exercising dataflow + PS + DCV + ML together, end to end.

use ps2::ml::lr::{train_lr, LrBackend, LrConfig};
use ps2::ml::optim::Optimizer;
use ps2::{run_ps2, ClusterSpec, ElemOp, RunReport, SimTime};
use ps2_data::{presets, SparseDatasetGen};

fn spec(w: usize, s: usize) -> ClusterSpec {
    ClusterSpec {
        workers: w,
        servers: s,
        ..ClusterSpec::default()
    }
}

#[test]
fn facade_quickstart_shape() {
    let (out, report) = run_ps2(spec(4, 4), 42, |ctx, ps2| {
        let w = ps2.dense_dcv(ctx, 10_000, 4);
        let g = w.derive(ctx);
        g.add_sparse(ctx, &[(1, 1.0), (9_999, -2.0)]);
        w.iaxpy(ctx, &g, -0.5);
        (w.nnz(ctx), w.sum(ctx), w.norm2(ctx))
    });
    assert_eq!(out.0, 2);
    assert!((out.1 - 0.5).abs() < 1e-12); // -0.5*1 + -0.5*-2
    assert!(out.2 > 0.0);
    assert!(report.total_msgs > 0);
}

#[test]
fn full_lr_pipeline_learns_on_a_preset() {
    let (trace, report) = run_ps2(spec(8, 8), 5, |ctx, ps2| {
        let mut preset = presets::kddb(8, 3);
        preset.gen.rows = 4_000; // trim for test speed
        preset.gen.dim = 50_000;
        let mut cfg = LrConfig::new(preset.gen, Optimizer::Sgd, 40);
        cfg.hyper.learning_rate = 5.0;
        cfg.hyper.mini_batch_fraction = 0.05;
        train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
    });
    assert!(trace.is_sane());
    assert!(
        trace.final_loss() < 0.95 * trace.points[0].1,
        "{:?} -> {:?}",
        trace.points.first(),
        trace.points.last()
    );
    assert!(report.virtual_time > SimTime::ZERO);
    assert_eq!(report.dropped_msgs, 0);
}

#[test]
fn end_to_end_run_is_deterministic_across_processes_of_the_harness() {
    let run = || {
        let (trace, report) = run_ps2(spec(5, 3), 7, |ctx, ps2| {
            let gen = SparseDatasetGen::new(2_000, 5_000, 10, 5, 7);
            let cfg = LrConfig::new(gen, Optimizer::Sgd, 10);
            train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
        });
        (
            trace.points.clone(),
            report.virtual_time,
            report.total_bytes,
            report.total_msgs,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "loss curves must be bit-identical");
    assert_eq!((a.1, a.2, a.3), (b.1, b.2, b.3));
}

#[test]
fn same_seed_runs_emit_byte_identical_metrics_json() {
    let run = || {
        let (_, report) = run_ps2(spec(5, 3), 7, |ctx, ps2| {
            let gen = SparseDatasetGen::new(2_000, 5_000, 10, 5, 7);
            let cfg = LrConfig::new(gen, Optimizer::Sgd, 10);
            train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
        });
        RunReport::from_sim(&report).to_json()
    };
    // `wall_ms` is the report's one deliberate wall-clock field; everything
    // else must be byte-identical across same-seed runs.
    let strip_wall = |json: &str| -> String {
        json.lines()
            .filter(|l| !l.contains("\"wall_ms\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = run();
    let b = run();
    assert!(a.contains("\"wall_ms\""), "report must carry wall_ms");
    assert_eq!(
        strip_wall(&a),
        strip_wall(&b),
        "same-seed JSON run reports must be byte-identical apart from wall_ms"
    );
    assert!(
        a.contains("\"ops\""),
        "report must carry the per-op breakdown"
    );
}

#[test]
fn per_op_shares_sum_to_virtual_time() {
    let (_, report) = run_ps2(spec(5, 3), 7, |ctx, ps2| {
        let gen = SparseDatasetGen::new(2_000, 5_000, 10, 5, 7);
        let cfg = LrConfig::new(gen, Optimizer::Sgd, 10);
        train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
    });
    let run = RunReport::from_sim(&report);
    assert!(!run.ops.is_empty(), "an LR run must record client op spans");
    let share_sum: u64 = run.ops.iter().map(|o| o.share_ns).sum();
    let vt = run.virtual_time.as_nanos();
    // Proportional allocation rounds each share down, so the sum may fall
    // short of the job's virtual time by at most one nanosecond per op row.
    assert!(
        vt - share_sum <= run.ops.len() as u64,
        "op shares must sum to the run's virtual time within rounding: \
         shares {share_sum} vs virtual {vt}"
    );
}

#[test]
fn training_survives_chaos() {
    // Task failures + an executor loss + a server loss mid-training.
    let (final_loss, _) = run_ps2(spec(6, 4), 13, |ctx, ps2| {
        ps2.spark.failure.task_failure_prob = 0.05;
        ps2.spark.failure.max_task_attempts = 100;
        ps2.spark.failure.liveness_poll = SimTime::from_secs_f64(1.0);
        let gen = SparseDatasetGen::new(3_000, 4_000, 12, 6, 3);
        let mut cfg = LrConfig::new(gen, Optimizer::Sgd, 8);
        cfg.hyper.learning_rate = 3.0;
        cfg.hyper.mini_batch_fraction = 0.05;
        let t1 = train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv);

        // Checkpoint, then kill one server and one executor.
        ps2.ps.checkpoint_all(ctx);
        let server = ps2.ps.route().resolve(0);
        ctx.kill(server);
        let exec = ps2.spark.executors()[1];
        ctx.kill(exec);
        ctx.advance(SimTime::from_millis(1));
        let recovered = ps2.ps.recover_dead_servers(ctx);
        assert_eq!(recovered, vec![0]);

        // Keep training after recovery.
        let t2 = train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv);
        assert!(ps2.spark.task_retries > 0, "chaos must have caused retries");
        (t1.final_loss(), t2.final_loss())
    });
    assert!(final_loss.0.is_finite() && final_loss.1.is_finite());
}

#[test]
fn dcv_operator_table_is_complete() {
    // Every operator from the paper's Table 1 is callable on the facade.
    let ((), _) = run_ps2(spec(2, 3), 1, |ctx, ps2| {
        let v = ps2.dense_dcv(ctx, 100, 6);
        let u = v.derive(ctx); // creation: derive
        let x = v.derive(ctx).filled(ctx, 1.0);
        // row access
        v.add_dense(ctx, &vec![1.0; 100]); // push
        v.add_sparse(ctx, &[(5, 1.0)]);
        let _ = v.pull(ctx); // pull
        let _ = v.pull_indices(ctx, &[1, 5]);
        let _ = v.sum(ctx);
        let _ = v.nnz(ctx);
        let _ = v.norm2(ctx);
        // column access
        let _ = v.dot(ctx, &u);
        v.iaxpy(ctx, &u, 0.5); // axpy
        u.copy_from(ctx, &v); // copy
        let d = v.derive(ctx);
        d.assign_elem(ctx, &v, &x, ElemOp::Sub); // sub
        d.assign_elem(ctx, &v, &x, ElemOp::Add); // add
        d.assign_elem(ctx, &v, &x, ElemOp::Mul); // mul
        d.assign_elem(ctx, &v, &x, ElemOp::Div); // div
    });
}

#[test]
fn mllib_backend_runs_through_the_facade_too() {
    let (trace, _) = run_ps2(spec(4, 1), 3, |ctx, ps2| {
        let gen = SparseDatasetGen::new(1_000, 2_000, 8, 4, 1);
        let mut cfg = LrConfig::new(gen, Optimizer::Sgd, 5);
        cfg.hyper.mini_batch_fraction = 0.1;
        train_lr(ctx, ps2, &cfg, LrBackend::SparkDriver)
    });
    assert!(trace.is_sane());
    assert!(trace.breakdown.is_some());
}
