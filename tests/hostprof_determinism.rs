//! The host profiler's core contract: profiling observes the simulator, it
//! never perturbs it. The same seeded run — profiler and counting allocator
//! on versus off — must produce bit-identical virtual-time results: same
//! clock, same message counts, same rendered metrics JSON (modulo the one
//! deliberate wall-clock field, `wall_ms`).
//!
//! This lives in its own integration-test binary on purpose: hostprof state
//! is process-global, and sharing a process with unrelated tests would let
//! their allocations leak into this run's profile.

use ps2::ml::lr::{train_lr, LrBackend, LrConfig};
use ps2::ml::optim::Optimizer;
use ps2::simnet::hostprof;
use ps2::{run_ps2_with, ClusterSpec, RunReport, SimBuilder, SimReport, SimTime};
use ps2_data::SparseDatasetGen;

/// One seeded LR run with timeseries scraping on (so the `scrape.roll`
/// scope has something to record when profiled).
fn run_once(profiled: bool) -> SimReport {
    if profiled {
        hostprof::set_enabled(true);
        hostprof::set_alloc_counting(true);
    }
    let spec = ClusterSpec {
        workers: 4,
        servers: 3,
        ..ClusterSpec::default()
    };
    // 1 ms windows: these mini-runs finish in a few virtual ms, and the
    // scrape must actually roll for `scrape.roll` to show in the profile.
    let builder = SimBuilder::new()
        .seed(11)
        .timeseries(SimTime::from_millis(1));
    let (_, report) = run_ps2_with(builder, spec, |ctx, ps2| {
        let gen = SparseDatasetGen::new(1_000, 20_000, 10, 4, 11);
        let cfg = LrConfig::new(gen, Optimizer::Sgd, 3);
        train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
    });
    if profiled {
        hostprof::set_alloc_counting(false);
        hostprof::set_enabled(false);
    }
    report
}

/// Rendered metrics JSON minus the single deliberate wall-clock line.
fn virtual_json(report: &SimReport) -> String {
    RunReport::from_sim(report)
        .to_json()
        .lines()
        .filter(|l| !l.contains("\"wall_ms\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn profiling_never_perturbs_the_simulated_run() {
    let plain = run_once(false);
    let profiled = run_once(true);

    // Every virtual-time observable is bit-identical.
    assert_eq!(plain.virtual_time, profiled.virtual_time);
    assert_eq!(plain.total_msgs, profiled.total_msgs);
    assert_eq!(plain.total_bytes, profiled.total_bytes);
    assert_eq!(plain.procs.len(), profiled.procs.len());
    for (a, b) in plain.procs.iter().zip(&profiled.procs) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.msgs_recv, b.msgs_recv);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.finished_at, b.finished_at);
    }
    assert_eq!(virtual_json(&plain), virtual_json(&profiled));
    let (ts_a, ts_b) = (plain.timeseries.unwrap(), profiled.timeseries.unwrap());
    assert_eq!(ts_a.to_json(), ts_b.to_json());

    // The unprofiled run carries no host section; the profiled one does,
    // with the scheduler scopes represented (every run parks and dispatches)
    // and a real wall-clock total.
    assert!(plain.host.is_none());
    let host = profiled.host.expect("profiled run collects a host profile");
    assert!(host.wall_ns > 0);
    assert!(host.alloc_counted);
    let names: Vec<&str> = host.scopes.iter().map(|s| s.name).collect();
    assert!(names.contains(&"sched.dispatch"), "got scopes: {names:?}");
    assert!(names.contains(&"sched.park"), "got scopes: {names:?}");
    assert!(names.contains(&"scrape.roll"), "got scopes: {names:?}");
    for s in &host.scopes {
        assert!(s.calls > 0, "scope {} reported with zero calls", s.name);
    }
}
