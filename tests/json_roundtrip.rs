//! Round-trip property tests for the hand-rolled JSON reader/writer in
//! `ps2::tracefile` — the parser behind `ps2-trace` and `ps2-bench`.
//!
//! The invariant: for any value the writer can produce,
//! `parse_json(v.render()) == v`, and `render` is a fixpoint (re-rendering
//! the parse gives the same bytes). Covers escapes, nested arrays/objects,
//! and numeric edge cases.

use proptest::prelude::*;
use ps2::tracefile::{parse_json, JsonValue};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characters chosen to stress the escaper: quotes, backslashes, every
/// short escape, raw control characters, and multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{8}', '\u{c}', '\u{1}', '\u{1f}', 'é',
    'ß', '日', '🦀', '{', '}', '[', ']', ':', ',',
];

fn gen_string(state: &mut u64) -> String {
    let len = (splitmix(state) % 12) as usize;
    (0..len)
        .map(|_| PALETTE[splitmix(state) as usize % PALETTE.len()])
        .collect()
}

/// A random JSON tree. Numbers are drawn from the writer's actual domain:
/// integers (virtual-time counters) plus a few finite fractions.
fn gen_value(state: &mut u64, depth: usize) -> JsonValue {
    let pick = splitmix(state) % if depth == 0 { 5 } else { 7 };
    match pick {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(splitmix(state) & 1 == 1),
        2 => {
            let raw = splitmix(state) as i64 % 9_000_000_000_000_000;
            JsonValue::Num(raw as f64)
        }
        3 => {
            // A finite fraction with a short decimal form.
            let num = (splitmix(state) as i64 % 1_000_000) as f64;
            JsonValue::Num(num / 1024.0)
        }
        4 => JsonValue::Str(gen_string(state)),
        5 => {
            let n = (splitmix(state) % 4) as usize;
            JsonValue::Arr((0..n).map(|_| gen_value(state, depth - 1)).collect())
        }
        _ => {
            let n = (splitmix(state) % 4) as usize;
            JsonValue::Obj(
                (0..n)
                    .map(|_| (gen_string(state), gen_value(state, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ render is the identity on arbitrary trees, and render is a
    /// fixpoint of the round trip.
    #[test]
    fn parse_render_round_trips(seed in any::<u64>()) {
        let mut state = seed;
        let v = gen_value(&mut state, 3);
        let text = v.render();
        let back = parse_json(&text).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(back.render(), text);
    }

    /// Strings over the full escape palette survive the round trip.
    #[test]
    fn escaped_strings_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..48)) {
        let s: String = bytes
            .iter()
            .map(|b| PALETTE[*b as usize % PALETTE.len()])
            .collect();
        let v = JsonValue::Str(s);
        prop_assert_eq!(parse_json(&v.render()).unwrap(), v);
    }

    /// Integers in the writer's domain render without a fraction and parse
    /// back exactly (the determinism contract of the bench/metrics files).
    #[test]
    fn integers_round_trip_exactly(n in any::<i64>()) {
        let n = n % 9_000_000_000_000_000;
        let v = JsonValue::Num(n as f64);
        let text = v.render();
        prop_assert!(
            !text.contains('.') && !text.contains('e'),
            "integer must render as an integer: {}",
            text
        );
        prop_assert_eq!(parse_json(&text).unwrap(), v);
    }

    /// The log-linear latency histogram round-trips through its JSON wire
    /// form: `VtHistogram::to_json` → `parse_json` → `from_parts` rebuilds a
    /// histogram that agrees on count, sum, extremes, buckets, and every
    /// quantile — the contract the SLO sidecar and `ps2-trace slo` rely on.
    #[test]
    fn histogram_round_trips_through_json(
        values in prop::collection::vec(0u64..(1u64 << 44), 0..150)
    ) {
        let mut h = ps2::simnet::VtHistogram::default();
        for &v in &values {
            h.observe(ps2::simnet::SimTime(v));
        }

        let doc = parse_json(&h.to_json()).unwrap();
        let field = |k: &str| doc.get(k).and_then(JsonValue::as_u64).unwrap();
        let sparse: Vec<(u32, u64)> = doc
            .get("buckets")
            .and_then(JsonValue::as_arr)
            .unwrap()
            .iter()
            .map(|pair| {
                let kv = pair.as_arr().unwrap();
                (kv[0].as_u64().unwrap() as u32, kv[1].as_u64().unwrap())
            })
            .collect();

        let back = ps2::simnet::VtHistogram::from_parts(
            field("sum_ns"),
            field("min_ns"),
            field("max_ns"),
            &sparse,
        )
        .unwrap();

        prop_assert_eq!(back.count(), h.count());
        prop_assert_eq!(back.sum_ns(), h.sum_ns());
        prop_assert_eq!(back.min_ns(), h.min_ns());
        prop_assert_eq!(back.max_ns(), h.max_ns());
        prop_assert_eq!(back.sparse_buckets(), h.sparse_buckets());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(back.quantile_ns(q), h.quantile_ns(q));
        }
        // And the re-serialized form is byte-identical (fixpoint).
        prop_assert_eq!(back.to_json(), h.to_json());
    }
}

#[test]
fn numeric_edges_round_trip() {
    for n in [
        0.0,
        -0.0,
        0.1,
        -2.5,
        1e-9,
        1e300,
        -1e300,
        9.0e15,
        -9.0e15,
        1.5e-300,
        f64::MIN_POSITIVE,
        f64::EPSILON,
    ] {
        let v = JsonValue::Num(n);
        let text = v.render();
        assert_eq!(parse_json(&text).unwrap(), v, "n={n} text={text}");
    }
}

#[test]
fn deeply_nested_arrays_round_trip() {
    let mut v = JsonValue::Num(1.0);
    for _ in 0..64 {
        v = JsonValue::Arr(vec![v]);
    }
    assert_eq!(parse_json(&v.render()).unwrap(), v);
}

#[test]
fn duplicate_object_keys_are_preserved_in_order() {
    // The writer never emits duplicates, but the reader must not lose or
    // reorder them (first-match lookup is part of the `get` contract).
    let v = JsonValue::Obj(vec![
        ("k".to_string(), JsonValue::Num(1.0)),
        ("k".to_string(), JsonValue::Num(2.0)),
    ]);
    let back = parse_json(&v.render()).unwrap();
    assert_eq!(back, v);
    assert_eq!(back.get("k"), Some(&JsonValue::Num(1.0)));
}
