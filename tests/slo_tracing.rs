//! Request tracing's core contract, mirroring `hostprof_determinism.rs`:
//! the trace-context / exemplar recorder observes the simulator, it never
//! perturbs it. A traced run must be bit-identical to the same seeded run
//! untraced — same virtual clock, same message counts, same metrics JSON.
//! On top of that: exemplars carry complete stage breakdowns that partition
//! each request's total exactly, and the SLO burn-rate detector fires at a
//! window-aligned virtual timestamp.

use ps2::ml::lr::{train_lr, LrBackend, LrConfig};
use ps2::ml::optim::Optimizer;
use ps2::simnet::{SloObjective, Watchdog, WatchdogConfig, EXEMPLAR_K};
use ps2::{run_ps2_with, ClusterSpec, RunReport, SimBuilder, SimReport, SimTime};
use ps2_data::SparseDatasetGen;

/// One seeded LR run, with or without request tracing. Timeseries scraping
/// is on in both (it is independently non-perturbing, and the SLO tests
/// need the windows).
fn run_once(traced: bool) -> SimReport {
    let spec = ClusterSpec {
        workers: 4,
        servers: 3,
        ..ClusterSpec::default()
    };
    let builder = SimBuilder::new()
        .seed(11)
        .timeseries(SimTime::from_millis(1))
        .reqtrace(traced);
    let (_, report) = run_ps2_with(builder, spec, |ctx, ps2| {
        let gen = SparseDatasetGen::new(1_000, 20_000, 10, 4, 11);
        let cfg = LrConfig::new(gen, Optimizer::Sgd, 3);
        train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
    });
    report
}

/// Rendered metrics JSON minus the single deliberate wall-clock line.
fn virtual_json(report: &SimReport) -> String {
    RunReport::from_sim(report)
        .to_json()
        .lines()
        .filter(|l| !l.contains("\"wall_ms\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn request_tracing_never_perturbs_the_simulated_run() {
    let plain = run_once(false);
    let traced = run_once(true);

    // Every virtual-time observable is bit-identical.
    assert_eq!(plain.virtual_time, traced.virtual_time);
    assert_eq!(plain.total_msgs, traced.total_msgs);
    assert_eq!(plain.total_bytes, traced.total_bytes);
    assert_eq!(plain.procs.len(), traced.procs.len());
    for (a, b) in plain.procs.iter().zip(&traced.procs) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.msgs_recv, b.msgs_recv);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.finished_at, b.finished_at);
    }
    assert_eq!(virtual_json(&plain), virtual_json(&traced));
    let (ts_a, ts_b) = (plain.timeseries.unwrap(), traced.timeseries.unwrap());
    assert_eq!(ts_a.to_json(), ts_b.to_json());

    // The untraced run carries no request summary; the traced one does.
    assert!(plain.reqs.is_none());
    let reqs = traced.reqs.expect("traced run collects request summaries");
    assert!(reqs.completed() > 0);
}

#[test]
fn exemplars_carry_complete_stage_breakdowns() {
    let report = run_once(true);
    let reqs = report.reqs.as_ref().unwrap();

    // The LR run pulls and pushes every iteration, so both ops must have a
    // full top-K reservoir.
    for op in ["pull", "push"] {
        let stats = reqs
            .op(op)
            .unwrap_or_else(|| panic!("no op stats for {op}"));
        assert!(
            stats.completed >= EXEMPLAR_K as u64,
            "{op}: only {} completed requests",
            stats.completed
        );
        assert_eq!(
            stats.exemplars.len(),
            EXEMPLAR_K,
            "{op}: reservoir not full"
        );

        // Sorted slowest-first, and each breakdown partitions the total:
        // client_issue + net_request + server_queue + service + net_reply +
        // client_recv + cache_fill == total, exactly — no unattributed time.
        let totals: Vec<u64> = stats.exemplars.iter().map(|r| r.total_ns).collect();
        assert!(
            totals.windows(2).all(|w| w[0] >= w[1]),
            "{op}: exemplars not sorted by total: {totals:?}"
        );
        for r in &stats.exemplars {
            let stage_sum = r.client_issue_ns
                + r.net_request_ns
                + r.server_queue_ns
                + r.service_ns
                + r.net_reply_ns
                + r.client_recv_ns
                + r.cache_fill_ns;
            assert_eq!(
                stage_sum, r.total_ns,
                "{op} req {}: stages sum to {stage_sum}, total {}",
                r.id, r.total_ns
            );
            assert!(r.attempts >= 1);
        }

        // The exemplar reservoir holds exactly the K slowest: the slowest
        // exemplar is the histogram max, and every exemplar is at least the
        // op's p50 lower bound of the remaining population... the cheap
        // checkable form: max exemplar == hist max.
        assert_eq!(totals[0], stats.hist.max_ns(), "{op}: missed the slowest");
    }
}

#[test]
fn slo_burn_alert_fires_window_aligned() {
    let report = run_once(true);
    let window_ns = 1_000_000u64; // the 1 ms scrape window configured above

    // A deliberately unattainable objective: p999 of pulls under 1 µs. The
    // healthy p999 of this run is hundreds of µs, so every window's pull
    // samples are "bad events" and both burn spans saturate.
    let objectives = vec![SloObjective::latency_p999(
        "ps.pull.p999",
        "ps.client.op.pull.latency",
        SimTime::from_micros(1),
    )];
    // Short spans so the burn confirms inside this few-ms run on complete
    // windows (the default 12-window slow span would only fill at the final
    // partial window, whose end is the run end rather than a window edge).
    let wd = Watchdog::new(WatchdogConfig {
        slo_fast_windows: 2,
        slo_slow_windows: 3,
        ..WatchdogConfig::default()
    });
    let alerts = wd.evaluate_slo(&report, &objectives);
    assert!(
        !alerts.is_empty(),
        "tight objective must fire a burn alert on a healthy run"
    );
    let first = &alerts[0];
    assert_eq!(first.subject, "ps.pull.p999");
    // The earliest possible confirmation: the window that completes the
    // slow span. Its timestamp is the end of that window — window-aligned
    // in virtual time, never an arbitrary instant.
    assert_eq!(first.window, 2, "alert should fire as the slow span fills");
    assert_eq!(
        first.at.as_nanos(),
        (first.window + 1) * window_ns,
        "alert timestamp must be the end of its window"
    );
    assert_eq!(
        first.at.as_nanos() % window_ns,
        0,
        "alert at {} not window-aligned",
        first.at.as_nanos()
    );

    // And the sane objective used by the presets stays quiet on this run.
    let healthy = vec![SloObjective::latency_p999(
        "ps.pull.p999",
        "ps.client.op.pull.latency",
        SimTime::from_millis(1),
    )];
    assert!(wd.evaluate_slo(&report, &healthy).is_empty());
    assert!(Watchdog::default()
        .evaluate_slo(&report, &healthy)
        .is_empty());
}
