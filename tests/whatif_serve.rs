//! Causal analysis over the PR 9 steppable-agent runtime: a `serve-*`
//! scenario's critical path must traverse agent procs (the PS server
//! daemons and the aggregate client agents hold no OS threads), and the
//! what-if engine's replay of the *unmodified* DAG must reproduce the
//! measured makespan byte-for-byte — on agent-scheduled traffic, not just
//! thread-proc workloads. Also covers the offline round trip: a trace file
//! exported with the embedded `ps2-dag-v1` section parses back into a DAG
//! whose replay and battery agree with the in-process ones.

use ps2::ml::serve::{run_serve, serve_spec, ServeSummary};
use ps2::simnet::{
    export_trace_full, replay, run_battery, slo_json, standard_battery, CausalAnalysis, CausalDag,
    OpTails, SimBuilder, SimReport, SimTime,
};
use ps2::tracefile::whatif_input;

/// `serve-kddb`, shrunk to dev-machine size but keeping the shape: steppable
/// server daemons, aggregate open-loop client agents, one coordinator
/// thread proc.
fn serve_run(seed: u64) -> (ServeSummary, SimReport) {
    let mut spec = serve_spec("serve-kddb").expect("serve-kddb is a preset");
    spec.rows = 2_000;
    spec.servers = 4;
    spec.agents = 2;
    // Sparse enough that a client agent is idle between replies: a blocked
    // recv is what makes the backward walk hop across a message edge into
    // the server daemons.
    spec.users_per_agent = 4;
    spec.user_period = SimTime::from_millis(1);
    spec.duration = SimTime::from_millis(20);
    run_serve(
        SimBuilder::new().seed(seed).trace(true).reqtrace(true),
        &spec,
    )
}

#[test]
fn critical_path_traverses_agent_procs() {
    let (summary, report) = serve_run(42);
    assert!(summary.completed > 0, "the scenario must serve pulls");
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_eq!(
        a.makespan, report.virtual_time,
        "critical path must span the whole serve run"
    );
    // The walk must pass through steppable agents, not just the coordinator
    // thread proc: at least one server daemon and one client agent carry
    // critical-path time.
    let critical_on = |prefix: &str| {
        a.procs
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .map(|p| p.critical_ns)
            .sum::<u64>()
    };
    assert!(
        critical_on("ps-server-") > 0,
        "server agent daemons must appear on the critical path: {:?}",
        a.procs
            .iter()
            .map(|p| (&p.name, p.critical_ns))
            .collect::<Vec<_>>()
    );
    assert!(
        critical_on("serve-clients-") > 0,
        "client agents must appear on the critical path"
    );
    // And the path's own segments name agent procs, not only the summaries.
    let on_path: std::collections::BTreeSet<&str> = a
        .segments
        .iter()
        .map(|s| a.procs[s.proc].name.as_str())
        .collect();
    assert!(
        on_path.iter().any(|n| n.starts_with("serve-clients-")),
        "path segments must visit an agent proc: {on_path:?}"
    );
}

#[test]
fn unmodified_replay_reproduces_the_serve_makespan() {
    let (_, report) = serve_run(42);
    let dag = CausalDag::from_report(&report).unwrap();
    let r = replay(&dag, &[]).unwrap();
    assert_eq!(
        r.makespan_ns,
        report.virtual_time.as_nanos(),
        "identity replay over agent-scheduled traffic must be exact"
    );
}

#[test]
fn whatif_round_trips_through_the_trace_file() {
    let run = |seed| {
        let (_, report) = serve_run(seed);
        let a = CausalAnalysis::from_report(&report).unwrap();
        let dag = CausalDag::from_report(&report).unwrap();
        let reqs = report.reqs.as_ref().expect("reqtrace was enabled");
        let slo = slo_json(reqs, &[], &[]);
        let json = export_trace_full(&report, Some(&a), &[], Some(&slo), Some(&dag));
        (report, dag, json)
    };
    let (report, dag, json) = run(42);

    // Offline parse of the embedded ps2-dag-v1 section agrees with the
    // in-process DAG: identity replay lands on the measured makespan and
    // the standard battery replays to identical numbers.
    let (parsed, tails) = whatif_input(&json).unwrap();
    assert_eq!(parsed.makespan_ns, report.virtual_time.as_nanos());
    let r = replay(&parsed, &[]).unwrap();
    assert_eq!(r.makespan_ns, report.virtual_time.as_nanos());
    assert!(
        !tails.is_empty(),
        "the slo section must yield per-op tails for estimation"
    );

    let in_proc = run_battery(
        &dag,
        &OpTails::from_reqs(report.reqs.as_ref().unwrap()),
        &standard_battery(&dag),
    )
    .unwrap();
    let offline = run_battery(&parsed, &tails, &standard_battery(&parsed)).unwrap();
    assert!(
        in_proc.experiments.len() >= 5,
        "the standard battery must rank at least 5 experiments, got {}",
        in_proc.experiments.len()
    );
    assert_eq!(
        in_proc.to_json(),
        offline.to_json(),
        "offline replay from the trace file must match the in-process report"
    );

    // Determinism: a second same-seed run produces a byte-identical sidecar.
    let (_, dag2, json2) = run(42);
    assert_eq!(
        json, json2,
        "same-seed trace exports must be byte-identical"
    );
    let again = run_battery(
        &dag2,
        &OpTails::from_reqs(report.reqs.as_ref().unwrap()),
        &standard_battery(&dag2),
    )
    .unwrap();
    assert_eq!(in_proc.to_json(), again.to_json());
}
