//! End-to-end fault tolerance: a PS-server is killed in the *middle* of an
//! LR iteration — while worker tasks are blocked on it — and training still
//! completes, because the PS-clients' deadline/retry layer detects the dead
//! server, triggers checkpoint-based recovery from inside the job, and
//! replays the in-flight requests against the replacement.
//!
//! Before the request layer existed this scenario was a hard hang: the
//! workers blocked forever on the dead server, the driver polled executor
//! liveness (all alive) forever, and the run ended in `SimError::Deadlock`.

use ps2::data::SparseDatasetGen;
use ps2::ml::lr::{distinct_cols, grad_aligned};
use ps2::simnet::{Alert, AlertKind, TimeSeries, Watchdog};
use ps2::{deploy, ClusterSpec, MetricsSnapshot, Ps2Context, RunReport, SimBuilder, SimTime};

const SEED: u64 = 23;
const ITERS: usize = 8;
const ROWS: u64 = 2_000;
const DIM: u64 = 4_000;
const LEARNING_RATE: f64 = 20.0;
/// The model is checkpointed at the end of this (1-based) iteration and the
/// kill lands inside the following iteration's gradient phase.
const CHECKPOINT_AFTER: usize = 4;
/// Telemetry scrape interval. The clean run fits in a couple of windows;
/// the faulty run's recovery stall (attempt timeouts are tens of virtual
/// seconds) spans many, which is what the watchdog needs to see.
const SCRAPE_WINDOW_MS: u64 = 500;

struct RunOutcome {
    losses: Vec<f64>,
    /// `ctx.now()` right after each iteration's gradient job returns.
    grad_done: Vec<SimTime>,
    /// `ctx.now()` at the very end of each iteration.
    iter_done: Vec<SimTime>,
    recoveries: u64,
    silent_reinits: u64,
    /// Flight-recorder registry captured from the final `SimReport`.
    metrics: MetricsSnapshot,
    /// Aggregated breakdown report (per-op rows, drops by tag).
    run_report: RunReport,
    /// Windowed telemetry scraped every [`SCRAPE_WINDOW_MS`].
    timeseries: TimeSeries,
    /// Watchdog verdict over the windows.
    alerts: Vec<Alert>,
}

/// One deterministic run of a hand-rolled mini-batch-free LR loop (full
/// batch per iteration), checkpointing once after `CHECKPOINT_AFTER`
/// iterations. When `kill_at` is set, a chaos process kills one PS-server at
/// that virtual time. The chaos process is spawned in *both* runs so process
/// ids and scheduling are identical up to the kill.
fn run_lr(kill_at: Option<SimTime>) -> RunOutcome {
    let spec = ClusterSpec {
        workers: 4,
        servers: 4,
        ..ClusterSpec::default()
    };
    let mut sim = SimBuilder::new()
        .seed(SEED)
        .timeseries(SimTime::from_millis(SCRAPE_WINDOW_MS))
        .build();
    let deployment = deploy(&mut sim, &spec);
    let victim = deployment.servers[1];
    sim.spawn("chaos", move |ctx| {
        if let Some(at) = kill_at {
            ctx.advance(at);
            ctx.kill(victim);
        }
    });
    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut ps2 = Ps2Context::new(deployment);
        let gen = SparseDatasetGen::new(ROWS, DIM, 10, 4, SEED);
        let gen2 = gen.clone();
        let data = ps2
            .spark
            .source(gen.partitions, move |p, _w| gen2.partition(p))
            .cache();
        let _ = ps2.spark.count(ctx, &data);

        let w = ps2.dense_dcv(ctx, DIM, 1);
        let mut losses = Vec::new();
        let mut grad_done = Vec::new();
        let mut iter_done = Vec::new();
        for t in 1..=ITERS {
            let wd = w.clone();
            let results = ps2
                .spark
                .run_job(
                    ctx,
                    &data,
                    move |examples, wk| {
                        let cols = distinct_cols(examples);
                        let wv = wd.pull_indices(wk.sim, &cols);
                        let (grad, loss) = grad_aligned(examples, &cols, &wv);
                        let scaled: Vec<(u64, f64)> = cols
                            .into_iter()
                            .zip(grad)
                            .map(|(j, g)| (j, -LEARNING_RATE * g / ROWS as f64))
                            .collect();
                        wd.add_sparse(wk.sim, &scaled);
                        (loss, examples.len() as u64)
                    },
                    |_| 24,
                )
                .expect("gradient job must survive the server kill");
            grad_done.push(ctx.now());
            let (loss_sum, n) = results
                .into_iter()
                .fold((0.0, 0u64), |(l, c), (li, ci)| (l + li, c + ci));
            losses.push(loss_sum / n.max(1) as f64);
            if t == CHECKPOINT_AFTER {
                ps2.ps.checkpoint_all(ctx);
            }
            iter_done.push(ctx.now());
        }
        (
            losses,
            grad_done,
            iter_done,
            ps2.ps.recoveries(),
            ps2.ps.silent_reinits(),
        )
    });
    let report = sim.run().expect("simulation must complete (no deadlock)");
    let (losses, grad_done, iter_done, recoveries, silent_reinits) = out.take();
    let run_report = RunReport::from_sim(&report);
    let alerts = Watchdog::default().evaluate(&report);
    RunOutcome {
        losses,
        grad_done,
        iter_done,
        recoveries,
        silent_reinits,
        timeseries: report.timeseries.clone().expect("scraper was enabled"),
        alerts,
        metrics: report.metrics,
        run_report,
    }
}

#[test]
fn server_killed_mid_iteration_training_completes_via_in_job_recovery() {
    // Fault-free reference run, used both as the timing oracle (where does
    // iteration 5's gradient phase live in virtual time?) and as the loss
    // baseline.
    let clean = run_lr(None);
    assert_eq!(clean.losses.len(), ITERS);
    assert_eq!(clean.recoveries, 0);
    assert!(
        clean.losses[ITERS - 1] < 0.8 * clean.losses[0],
        "reference run must actually learn: {:?}",
        clean.losses
    );

    // Kill one server squarely inside iteration `CHECKPOINT_AFTER + 1`'s
    // gradient phase: after the post-checkpoint iteration starts, before its
    // gradient job completes — while worker pulls/pushes are in flight.
    let lo = clean.iter_done[CHECKPOINT_AFTER - 1];
    let hi = clean.grad_done[CHECKPOINT_AFTER];
    assert!(lo < hi);
    let kill_at = SimTime(lo.0 + (hi.0 - lo.0) / 2);

    let faulty = run_lr(Some(kill_at));
    assert_eq!(
        faulty.losses.len(),
        ITERS,
        "every iteration must complete despite the mid-iteration kill"
    );
    assert!(
        faulty.recoveries >= 1,
        "the dead server must have been recovered during the job"
    );
    assert_eq!(
        faulty.silent_reinits, 0,
        "recovery must restore the checkpoint, not silently re-init"
    );
    // Identical prefix: both runs are bit-deterministic until the kill.
    assert_eq!(
        &faulty.losses[..CHECKPOINT_AFTER],
        &clean.losses[..CHECKPOINT_AFTER],
        "pre-kill iterations must be unaffected"
    );
    // Post-recovery tolerance. The victim's slot rolls back to the
    // checkpoint, so gradient pushes acknowledged on it between the
    // checkpoint and the kill are lost (in-flight ones are retried and
    // applied exactly once, thanks to per-request op ids). The model
    // therefore drifts slightly from the reference, but training must still
    // converge to the same neighbourhood.
    let c = clean.losses[ITERS - 1];
    let f = faulty.losses[ITERS - 1];
    assert!(
        f < 0.8 * faulty.losses[0],
        "faulty run must still learn: {:?}",
        faulty.losses
    );
    assert!(
        (f - c).abs() / c < 0.2,
        "final losses must agree within the documented lost-push tolerance: \
         clean {c}, faulty {f}"
    );
    // The recovered run pays the detection deadline at least once.
    assert!(
        faulty.iter_done[ITERS - 1] > clean.iter_done[ITERS - 1],
        "recovery must cost virtual time"
    );
    // The flight recorder must have tagged the fault handling: the clients'
    // retry path and the master's recovery span both leave counters behind.
    let tagged =
        faulty.metrics.counter("ps.client.retries") + faulty.metrics.counter("ps.fleet.recoveries");
    assert!(
        tagged >= 1,
        "faulty run must record at least one tagged retry/recovery span"
    );
    assert_eq!(
        faulty.metrics.counter("ps.fleet.recoveries"),
        faulty.recoveries,
        "registry recovery count must match the master's own count"
    );
    assert_eq!(
        clean.metrics.counter("ps.client.retries"),
        0,
        "clean run must not record retries"
    );
    assert_eq!(clean.metrics.counter("ps.fleet.recoveries"), 0);
    // Messages addressed to the killed server are dropped, and the runtime
    // attributes every drop to its protocol tag — the faulty run's breakdown
    // table must name the tags and account for every dropped message.
    assert!(
        !faulty.run_report.drops_by_tag.is_empty(),
        "faulty run must attribute its dropped messages to protocol tags"
    );
    let by_tag: u64 = faulty.run_report.drops_by_tag.iter().map(|(_, n)| n).sum();
    assert_eq!(
        by_tag, faulty.run_report.dropped_msgs,
        "per-tag drop counts must sum to the total drop count"
    );
    assert!(
        clean.run_report.drops_by_tag.is_empty(),
        "clean run must drop nothing"
    );
    // The watchdog must flag the recovery window. While the fleet stalls on
    // the dead server, the only busy processes per window are the retrying
    // clients and (eventually) the recovery master — exactly the shape the
    // straggler (busy z-score) and queue-growth detectors look for.
    let recovery_hi = faulty.grad_done[CHECKPOINT_AFTER];
    let fired: Vec<&Alert> = faulty
        .alerts
        .iter()
        .filter(|a| matches!(a.kind, AlertKind::Straggler | AlertKind::QueueGrowth))
        .filter(|a| a.at > kill_at && a.at <= recovery_hi)
        .collect();
    assert!(
        !fired.is_empty(),
        "a straggler or queue-growth alert must fire between the kill ({kill_at}) \
         and the end of the recovered iteration ({recovery_hi}); alerts: {:?}",
        faulty.alerts
    );
    // Each alert carries the exact virtual timestamp of its window's end —
    // that is what makes it findable in the Perfetto trace.
    for a in &fired {
        let idx = (a.window - faulty.timeseries.dropped_windows) as usize;
        let w = &faulty.timeseries.windows[idx];
        assert_eq!(w.index, a.window, "alert window must be retained");
        assert_eq!(
            a.at.as_nanos(),
            w.end_ns,
            "alert timestamp must be its window's end"
        );
        assert!(
            w.end_ns <= (a.window + 1) * faulty.timeseries.window_ns,
            "window end must not pass its boundary"
        );
    }
    // The clean run never starves a window, so the same detectors stay
    // quiet there.
    assert!(
        !clean
            .alerts
            .iter()
            .any(|a| matches!(a.kind, AlertKind::Straggler | AlertKind::QueueGrowth)),
        "clean run must not trip the recovery detectors: {:?}",
        clean.alerts
    );
}
