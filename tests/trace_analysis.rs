//! Acceptance tests for the causal trace pipeline on a *real* training run:
//! critical-path category attribution partitions the virtual makespan
//! exactly, the exported Perfetto JSON is byte-identical across same-seed
//! runs, tracing never perturbs timing, and different seeds produce a
//! non-trivial diff.

use ps2::ml::lr::{train_lr, LrBackend, LrConfig};
use ps2::ml::optim::Optimizer;
use ps2::simnet::{export_trace, CausalAnalysis, SimReport};
use ps2::tracefile::TraceSummary;
use ps2::{run_ps2_with, ClusterSpec, SimBuilder};
use ps2_data::SparseDatasetGen;

const WORKERS: usize = 4;

fn lr_run(seed: u64, trace: bool) -> SimReport {
    let spec = ClusterSpec {
        workers: WORKERS,
        servers: 4,
        ..ClusterSpec::default()
    };
    let gen = SparseDatasetGen::new(2_000, 10_000, 10, WORKERS, seed);
    let (_, report) = run_ps2_with(
        SimBuilder::new().seed(seed).trace(trace),
        spec,
        move |ctx, ps2| {
            let cfg = LrConfig::new(gen, Optimizer::Sgd, 3);
            train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
        },
    );
    report
}

#[test]
fn critical_path_categories_partition_the_lr_makespan() {
    let report = lr_run(42, true);
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_eq!(
        a.makespan, report.virtual_time,
        "critical path must span the whole run"
    );
    assert_eq!(
        a.category_total_ns(),
        report.virtual_time.as_nanos(),
        "compute + network + queue + idle must sum to the virtual makespan"
    );
    assert!(a.compute_ns > 0, "an LR run computes");
    assert!(a.network_ns > 0, "an LR run communicates");
    // Per-op attribution covers all critical-path compute.
    let by_label: u64 = a.compute_by_label.values().sum();
    assert_eq!(by_label, a.compute_ns);
    assert!(
        a.compute_by_label.contains_key("spark.task"),
        "executor task compute must be labeled: {:?}",
        a.compute_by_label.keys().collect::<Vec<_>>()
    );
}

#[test]
fn same_seed_runs_export_byte_identical_traces() {
    let r1 = lr_run(42, true);
    let r2 = lr_run(42, true);
    let a1 = CausalAnalysis::from_report(&r1).unwrap();
    let a2 = CausalAnalysis::from_report(&r2).unwrap();
    assert_eq!(a1.render(), a2.render());
    let j1 = export_trace(&r1, Some(&a1));
    let j2 = export_trace(&r2, Some(&a2));
    assert_eq!(j1, j2, "same-seed trace exports must be byte-identical");
    // And the offline reader agrees with the in-process analysis.
    let summary = TraceSummary::from_json(&j1).unwrap();
    assert_eq!(summary.makespan_ns, a1.makespan.as_nanos());
    let cats: std::collections::BTreeMap<&str, u64> = summary
        .categories
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert_eq!(cats["compute"], a1.compute_ns);
    assert_eq!(cats["network"], a1.network_ns);
    assert_eq!(cats["queue"], a1.queue_ns);
    assert_eq!(cats["idle"], a1.idle_ns);
}

#[test]
fn tracing_does_not_perturb_timing() {
    let traced = lr_run(42, true);
    let untraced = lr_run(42, false);
    assert_eq!(traced.virtual_time, untraced.virtual_time);
    assert_eq!(traced.total_msgs, untraced.total_msgs);
    assert_eq!(traced.total_bytes, untraced.total_bytes);
    let timings = |r: &SimReport| -> Vec<(String, u64, u64)> {
        r.procs
            .iter()
            .map(|p| (p.name.clone(), p.finished_at.as_nanos(), p.busy.as_nanos()))
            .collect()
    };
    assert_eq!(
        timings(&traced),
        timings(&untraced),
        "recording a trace must not move any process's clock"
    );
    assert!(!traced.trace.is_empty() && untraced.trace.is_empty());
}

#[test]
fn different_seeds_diff_with_nonzero_category_deltas() {
    let r1 = lr_run(42, true);
    let r2 = lr_run(43, true);
    let a1 = CausalAnalysis::from_report(&r1).unwrap();
    let a2 = CausalAnalysis::from_report(&r2).unwrap();
    let s1 = TraceSummary::from_json(&export_trace(&r1, Some(&a1))).unwrap();
    let s2 = TraceSummary::from_json(&export_trace(&r2, Some(&a2))).unwrap();
    assert_ne!(
        s1.makespan_ns, s2.makespan_ns,
        "different seeds should not produce identical makespans"
    );
    let changed = s1
        .categories
        .iter()
        .zip(&s2.categories)
        .filter(|((ka, va), (kb, vb))| {
            assert_eq!(ka, kb);
            va != vb
        })
        .count();
    assert!(changed > 0, "diff must show non-zero per-category deltas");
    // The rendered diff names every category with a signed delta.
    let text = s1.render_diff(&s2);
    for cat in ["compute", "network", "queue", "idle"] {
        assert!(text.contains(cat), "diff must list '{cat}':\n{text}");
    }
}

#[test]
fn regression_gate_fires_on_synthetic_slowdown() {
    let r = lr_run(42, true);
    let a = CausalAnalysis::from_report(&r).unwrap();
    let s = TraceSummary::from_json(&export_trace(&r, Some(&a))).unwrap();
    // A trace never regresses against itself, even at zero tolerance.
    assert!(s.regressions(&s, 0).is_empty());
    // Synthetic regression: +10% makespan and compute.
    let mut slow = s.clone();
    slow.makespan_ns += s.makespan_ns / 10;
    for (name, ns) in slow.categories.iter_mut() {
        if name == "compute" {
            *ns += *ns / 10;
        }
    }
    let v = s.regressions(&slow, 50);
    assert!(
        v.iter().any(|l| l.contains("makespan")),
        "10% over a 5% gate must flag the makespan: {v:?}"
    );
    assert!(
        v.iter().any(|l| l.contains("category compute")),
        "the regressed category must be named: {v:?}"
    );
    // A 20% tolerance swallows the same delta, and improvements never fire.
    assert!(s.regressions(&slow, 200).is_empty());
    assert!(slow.regressions(&s, 0).is_empty());
}

#[test]
fn alerts_in_the_export_do_not_break_the_offline_reader() {
    use ps2::simnet::{Alert, AlertKind, SimTime};
    let r = lr_run(42, true);
    let a = CausalAnalysis::from_report(&r).unwrap();
    let alerts = vec![Alert {
        kind: AlertKind::Straggler,
        at: SimTime::from_millis(100),
        window: 0,
        proc: Some(3),
        subject: "executor-2".to_string(),
        value_milli: 2_500,
    }];
    let json = ps2::simnet::export_trace_with(&r, Some(&a), &alerts);
    let s = TraceSummary::from_json(&json).unwrap();
    assert_eq!(s.makespan_ns, a.makespan.as_nanos());
    assert!(json.contains("watchdog.straggler"));
}
