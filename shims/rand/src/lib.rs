//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this shim (see `[patch.crates-io]` in the root
//! manifest). Only the surface the workspace actually uses is provided:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**
//! seeded via splitmix64 — deterministic, fast, and statistically solid
//! for simulation workloads (it is not the real StdRng's ChaCha12 and
//! must not be used for anything security-sensitive).

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from seeds (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce.
pub trait SampleStandard {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for i64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl SampleStandard for usize {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The `rand::Rng` method subset the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard cheapo.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(0usize..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
