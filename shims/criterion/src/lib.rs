//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this shim. Benchmarks compile and run under
//! `cargo bench` with `harness = false`, timing each target with
//! `std::time::Instant` and printing a one-line mean per benchmark. No
//! statistical analysis, outlier detection, or HTML reports.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Run `routine` `samples` times and record the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call so lazy setup (allocator warm-up, page
        // faults on fresh buffers) does not land in the first sample.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label:<40} {:>12.3?} /iter ({samples} iters)", b.last_mean);
}

/// Top-level benchmark driver (subset: `sample_size` configuration only).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Called by `criterion_main!` after all groups run; the shim has no
    /// deferred summary to print.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks sharing the parent's sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| n += 1));
        // warm-up + 3 timed iterations
        assert_eq!(n, 4);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        let dim = 8usize;
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::new("dot", dim), &dim, |b, &d| {
            b.iter(|| {
                seen = d;
            })
        });
        g.finish();
        assert_eq!(seen, 8);
    }
}
