//! Offline drop-in subset of the `parking_lot` 0.12 API, implemented over
//! `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `parking_lot` to this shim. Two parking_lot semantics matter to
//! the simulator and are preserved:
//!
//! - `lock()`/`read()`/`write()` return guards directly (no `Result`), and
//!   **poisoning is ignored**: the simulator unwinds processes on purpose
//!   (kill/shutdown interrupts) while locks are held, which must not wedge
//!   every other thread.
//! - `Condvar::wait` takes `&mut MutexGuard` rather than consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

// ---- Mutex -----------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard holding the inner std guard in an `Option` so `Condvar::wait` can
/// temporarily take ownership (std's wait consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

// ---- Condvar ---------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

// ---- RwLock ----------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("on purpose");
        })
        .join();
        // A poisoned std mutex would panic here; the shim must not.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
