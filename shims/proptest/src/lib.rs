//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this shim. It covers the surface the workspace's
//! property tests use — the `proptest!` macro, `prop_assert*`/`prop_assume`,
//! integer/float range strategies, tuple strategies, `any::<T>()`, and the
//! `prop::collection::{vec, btree_map, btree_set}` constructors.
//!
//! Differences from real proptest, deliberately accepted:
//! - sampling is derived deterministically from the test name and case
//!   index (fully reproducible, no `PROPTEST_` env handling);
//! - failing cases are reported with their inputs but **not shrunk**;
//! - rejections (`prop_assume!`) simply skip to the next case.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic xoshiro256**-based source for strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeded from `(test name, case index)` so every test sees its own
        /// reproducible stream.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x5bd1_e995);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            (self.next_u64() as u128) % bound
        }
    }
}

use test_runner::TestRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try the next case.
    Reject,
    /// `prop_assert*` failed.
    Fail(String),
}

/// Per-`proptest!` block configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---- strategies -------------------------------------------------------------

/// A generator of values for one macro argument. Unlike real proptest there
/// is no value tree: `sample` draws a value directly and failures are not
/// shrunk.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// `Just(v)`: always produce `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- any::<T>() -------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

pub mod arbitrary {
    use super::{Arbitrary, Strategy, TestRng};
    use std::marker::PhantomData;

    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

// ---- collection strategies ---------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Like real proptest, duplicate keys collapse: the map may end
            // up smaller than the drawn size.
            let n = self.size.clone().sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }

    /// `prop::collection::btree_map(key, value, size_range)`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::btree_set(elem, size_range)`.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }
}

// Keep a `PhantomData` import user for the non-module `Just` etc.
#[doc(hidden)]
pub type __Phantom<T> = PhantomData<T>;

// ---- macros -----------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case, config.cases, msg, inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left), stringify!($right), l
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(a in 1u64..50, b in -2.0f64..2.0, p in (0usize..3, 1u32..4)) {
            prop_assert!((1..50).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(p.0 < 3 && (1..4).contains(&p.1));
        }

        /// Collections respect their size ranges.
        #[test]
        fn collections_sized(
            v in prop::collection::vec(any::<u32>(), 0..10),
            m in prop::collection::btree_map(0u64..100, 0.0f64..1.0, 0..8),
            s in prop::collection::btree_set(0u64..100, 1..8),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(m.len() < 8);
            prop_assert!(!s.is_empty() || s.len() < 8);
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 999);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let a = s.sample(&mut TestRng::for_case("t", 3));
        let b = s.sample(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
