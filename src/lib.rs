//! # PS2 — a parameter server on a Spark-like dataflow engine
//!
//! A Rust reproduction of *PS2: Parameter Server on Spark* (SIGMOD 2019):
//! the Dimension Co-located Vector (DCV) abstraction on top of an
//! integrated dataflow + parameter-server system, evaluated on a
//! deterministic cluster simulator.
//!
//! This facade re-exports the whole workspace; see the individual crates
//! for depth:
//!
//! * [`simnet`] — the deterministic discrete-event cluster simulator.
//! * [`dataflow`] — the Spark-like RDD engine (lineage, tasks, broadcast,
//!   fault tolerance).
//! * [`ps`] — PS-master / PS-servers / PS-clients, partition plans,
//!   checkpointing.
//! * [`core`] — [`Dcv`], [`Ps2Context`] and the Table 1 operator set: the
//!   paper's contribution.
//! * [`data`] — synthetic workload generators and the Table 2 presets.
//! * [`ml`] — LR, DeepWalk, GBDT, LDA, SVM and L-BFGS, each with
//!   communication-faithful baseline backends (Spark MLlib, Petuum,
//!   XGBoost, Glint, DistML).
//!
//! ## Quickstart
//!
//! ```
//! use ps2::{run_ps2, ClusterSpec};
//!
//! let spec = ClusterSpec { workers: 4, servers: 4, ..ClusterSpec::default() };
//! let (nnz, report) = run_ps2(spec, 42, |ctx, ps2| {
//!     let w = ps2.dense_dcv(ctx, 1_000_000, 4); // paper Figure 3, line 4
//!     let g = w.derive(ctx);                    // co-located sibling
//!     g.add_sparse(ctx, &[(3, 1.0), (999_999, -2.0)]);
//!     w.iaxpy(ctx, &g, -0.618);                 // server-side update
//!     w.nnz(ctx)
//! });
//! assert_eq!(nnz, 2);
//! println!("simulated {} in {:?} wall", report.virtual_time, report.wall_time);
//! ```

pub mod bench;
pub mod tracefile;

pub use ps2_core as core;
pub use ps2_data as data;
pub use ps2_dataflow as dataflow;
pub use ps2_ml as ml;
pub use ps2_ps as ps;
pub use ps2_simnet as simnet;

// The most-used names at the top level.
pub use ps2_core::{
    deploy, run_ps2, run_ps2_with, AggKind, ClusterSpec, Dcv, Deployment, ElemOp, InitKind,
    MetricsSnapshot, Partitioning, Ps2Context, PsConfig, RunReport, SimBuilder, SimCtx, SimReport,
    SimTime, ZipSegs,
};
pub use ps2_ml::TrainingTrace;
