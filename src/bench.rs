//! `ps2-bench` — a deterministic sweep harness with a regression gate.
//!
//! A *sweep* runs {preset × algorithm × seed} simulations, splits each run
//! into a setup and a training phase, aggregates min/median/max across
//! seeds, and serializes the result as JSON (hand-rolled, integers only, so
//! the file is byte-identical across runs and platforms — the same property
//! the flight-recorder report relies on). The *gate* compares a fresh sweep
//! (or a second file) against a committed baseline such as `BENCH_pr5.json`
//! and reports every median that regressed beyond a relative tolerance; CI
//! turns a non-empty report into a failing job.
//!
//! All times are virtual nanoseconds from the simulator, so the gate is
//! immune to host speed: a regression means the *modeled* cost changed, not
//! that the runner was busy.
//!
//! Committed baselines and the CI job that consumes each (the README's
//! "Committed baselines" table is the user-facing copy of this list):
//!
//! * `BENCH_pr4.json` — one `ps2-run lr --optimizer adam` report; the
//!   `metrics-smoke` job byte-compares it and checks envelope coalescing.
//! * `BENCH_pr5.json` — `sweep --out`; the `bench-gate` job runs the median
//!   regression gate plus byte-identity (`wall_seconds` stripped).
//! * `BENCH_pr6.json` — `modes --out`; `bench-gate` gates the consistency-
//!   mode sweep including final loss, plus byte-identity.
//! * `HOST_pr7.json` — `sweep --host-out`; `bench-gate` applies the
//!   wall-seconds soft gate via `ps2-trace host diff` (default +300%).
//! * `BENCH_pr9.json` — `serve --out`; the `serve-smoke` job gates the
//!   serving sweep plus byte-identity (`wall_seconds` stripped).

use std::fmt::Write as _;

use crate::data::presets;
use crate::ml::lbfgs::{train_lbfgs, LbfgsConfig};
use crate::ml::lr::{train_lr, LrBackend, LrConfig};
use crate::ml::modes::{run_mode, ModeAlgo, ModeConfig};
use crate::ml::optim::Optimizer;
use crate::ml::serve::{run_serve, serve_spec, SERVE_PRESETS};
use crate::ml::svm::{train_svm, SvmConfig};
use crate::ps::ConsistencyMode;
use crate::simnet::hostprof::{self, HostProfile};
use crate::simnet::{slo_json, SloObjective, Watchdog};
use crate::tracefile::{parse_json, render_json_string, JsonValue};
use crate::{run_ps2_with, ClusterSpec, SimBuilder, SimTime};

/// One cell of the sweep grid: a dataset preset trained by one algorithm.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Stable identifier, e.g. `kddb-lr` — the gate joins baseline and
    /// candidate on this.
    pub name: String,
    pub preset: String,
    pub algorithm: String,
    pub workers: usize,
    pub servers: usize,
    pub iters: usize,
}

/// Seeds every case is run under by default.
pub const DEFAULT_SEEDS: &[u64] = &[1, 2, 3];

/// The small grid CI sweeps: two sparse presets × three algorithms, sized
/// to finish in seconds per run. (CTR is deliberately absent — its 5.6M-nnz
/// generator is an interactive-scale dataset, not a gate-scale one.)
pub fn small_cases(workers: usize, servers: usize, iters: usize) -> Vec<BenchCase> {
    let case = |preset: &str, algorithm: &str| BenchCase {
        name: format!("{preset}-{algorithm}"),
        preset: preset.to_string(),
        algorithm: algorithm.to_string(),
        workers,
        servers,
        iters,
    };
    vec![
        case("kddb", "lr"),
        case("kddb", "svm"),
        case("kdd12", "lr"),
        case("kdd12", "lbfgs"),
    ]
}

/// The service-level objectives a preset's PS traffic is held to, evaluated
/// by [`Watchdog::evaluate_slo`](crate::simnet::Watchdog::evaluate_slo) over
/// the run's telemetry windows.
///
/// Latency targets are calibrated from healthy seed-42 runs of each preset
/// at gate scale (4 workers / 4 servers): the target sits ~2× above the
/// observed p999, so a healthy run never burns budget while a straggling
/// server or a saturated NIC trips the multi-window burn alert. Unknown
/// presets (including ad-hoc `--rows/--dim` shapes) get the generic tier.
pub fn preset_slos(preset: Option<&str>) -> Vec<SloObjective> {
    // Serving presets gate the pull path only (serving issues no pushes) and
    // carry the preset name in the objective, so a watchdog burn alert says
    // *which* serving SLO is burning, not just "some pull somewhere".
    if let Some(p @ ("serve-kddb" | "serve-kdd12")) = preset {
        // ~2× above the healthy seed-1/2 pull p999 of each serve preset
        // (observed: serve-kddb 213 µs, serve-kdd12 221 µs).
        let pull_ns = match p {
            "serve-kddb" => 450_000,
            _ => 500_000,
        };
        return vec![
            SloObjective::latency_p999(
                &format!("{p}.pull.p999"),
                "ps.client.op.pull.latency",
                SimTime(pull_ns),
            ),
            SloObjective::error_rate(
                &format!("{p}.timeouts"),
                "ps.client.timeouts",
                "ps.client.envelopes",
                10,
            ),
        ];
    }
    // (pull p999 target, push p999 target), nanoseconds of virtual time.
    // Healthy p999s observed: kddb lr/svm 226–318 µs, kdd12 lr 214 µs.
    let (pull_ns, push_ns) = match preset {
        Some("kddb") => (1_000_000, 1_000_000),
        Some("kdd12") => (1_000_000, 1_000_000),
        // ctr / gender are interactive-scale presets; keep a roomy bound.
        Some("ctr") | Some("gender") => (2_000_000, 2_000_000),
        _ => (2_000_000, 2_000_000),
    };
    vec![
        SloObjective::latency_p999(
            "ps.pull.p999",
            "ps.client.op.pull.latency",
            SimTime(pull_ns),
        ),
        SloObjective::latency_p999(
            "ps.push.p999",
            "ps.client.op.push.latency",
            SimTime(push_ns),
        ),
        // At most 1% of fabric envelopes may time out.
        SloObjective::error_rate(
            "ps.timeouts",
            "ps.client.timeouts",
            "ps.client.envelopes",
            10,
        ),
    ]
}

/// Measurements from a single seeded run of a case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseRun {
    pub seed: u64,
    /// Makespan of the whole simulation.
    pub virtual_ns: u64,
    /// Makespan minus the summed training-iteration spans: data generation,
    /// caching, DCV creation, and scheduling tails.
    pub setup_ns: u64,
    /// Sum of the `ml.iteration` histogram — time inside training
    /// iterations.
    pub train_ns: u64,
    pub iterations: u64,
    pub total_msgs: u64,
    pub total_bytes: u64,
    /// Host wall-clock nanoseconds the run took. Unlike every other field
    /// this is *not* deterministic; it is serialized on its own strippable
    /// line and gated only against order-of-magnitude blowups.
    pub wall_ns: u64,
}

/// Run one case under one seed and split its phases.
pub fn run_case(case: &BenchCase, seed: u64) -> Result<CaseRun, String> {
    run_case_profiled(case, seed, false).map(|(run, _)| run)
}

/// [`run_case`] with an optional host-profile capture. With `host` true the
/// builder also enables windowed telemetry (proven non-perturbing) so the
/// `scrape.roll` scope is represented, and the run's [`HostProfile`] is
/// returned alongside the virtual measurements. The caller owns the global
/// [`hostprof::set_enabled`] switch (see [`sweep_with_host`]); the *virtual*
/// numbers are identical either way — that is the profiler's contract.
pub fn run_case_profiled(
    case: &BenchCase,
    seed: u64,
    host: bool,
) -> Result<(CaseRun, Option<HostProfile>), String> {
    let builder = SimBuilder::new().seed(seed);
    // Profiled runs also scrape 1 ms telemetry windows, so the `scrape.roll`
    // scope is represented in the host sidecar. Scraping is non-yielding
    // (proven by the timeseries determinism tests), so the virtual-time
    // numbers stay identical to the unprofiled sweep's. The cases finish in
    // a few virtual ms, hence the small window.
    let builder = if host {
        builder.timeseries(SimTime::from_millis(1))
    } else {
        builder
    };
    let t0 = std::time::Instant::now();
    let report = run_case_report(case, seed, builder)?;
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let virtual_ns = report.virtual_time.as_nanos();
    let train_ns = report
        .metrics
        .hist("ml.iteration")
        .map(|h| h.sum_ns())
        .unwrap_or(0);
    Ok((
        CaseRun {
            seed,
            virtual_ns,
            setup_ns: virtual_ns.saturating_sub(train_ns),
            train_ns,
            iterations: report.metrics.counter("ml.iterations"),
            total_msgs: report.total_msgs,
            total_bytes: report.total_bytes,
            wall_ns,
        },
        report.host,
    ))
}

/// Run one case under one seed on the given builder and return the full
/// [`SimReport`] — the shared core of [`run_case_profiled`] and
/// [`run_case_slo`].
fn run_case_report(
    case: &BenchCase,
    seed: u64,
    builder: SimBuilder,
) -> Result<crate::SimReport, String> {
    let spec = ClusterSpec {
        workers: case.workers,
        servers: case.servers,
        ..ClusterSpec::default()
    };
    let workers = case.workers;
    let iters = case.iters;
    let gen = match case.preset.as_str() {
        "kddb" => presets::kddb(workers, seed).gen,
        "kdd12" => presets::kdd12(workers, seed).gen,
        "ctr" => presets::ctr(workers, seed).gen,
        other => return Err(format!("unknown bench preset '{other}'")),
    };
    let (_, report) = match case.algorithm.as_str() {
        "lr" => run_ps2_with(builder, spec, move |ctx, ps2| {
            train_lr(
                ctx,
                ps2,
                &LrConfig::new(gen, Optimizer::Sgd, iters),
                LrBackend::Ps2Dcv,
            );
        }),
        "svm" => run_ps2_with(builder, spec, move |ctx, ps2| {
            train_svm(ctx, ps2, &SvmConfig::new(gen, iters));
        }),
        "lbfgs" => run_ps2_with(builder, spec, move |ctx, ps2| {
            let mut cfg = LbfgsConfig::new(gen, iters);
            // Full-batch gradients would dominate the sweep's wall time;
            // a fixed fraction keeps the case cheap and still exercises
            // the server-side two-loop recursion.
            cfg.batch_fraction = 0.25;
            train_lbfgs(ctx, ps2, &cfg);
        }),
        other => return Err(format!("unknown bench algorithm '{other}'")),
    };
    Ok(report)
}

/// Headline numbers from one SLO-traced run of a case.
#[derive(Clone, Debug)]
pub struct SloCaseRun {
    pub name: String,
    pub seed: u64,
    /// `(op, p999_ns)` per PS op, in op order.
    pub p999_by_op: Vec<(String, u64)>,
    /// SLO burn alerts the run fired.
    pub burn_alerts: usize,
    /// The full `ps2-slo-v1` sidecar for this run.
    pub sidecar: String,
}

/// Run one case with request tracing and 1 ms telemetry windows and hold it
/// to [`preset_slos`]. Request tracing is non-yielding, so the virtual-time
/// numbers match the plain sweep's exactly.
pub fn run_case_slo(case: &BenchCase, seed: u64) -> Result<SloCaseRun, String> {
    let builder = SimBuilder::new()
        .seed(seed)
        .reqtrace(true)
        .timeseries(SimTime::from_millis(1));
    let report = run_case_report(case, seed, builder)?;
    let objectives = preset_slos(Some(case.preset.as_str()));
    let alerts = Watchdog::default().evaluate_slo(&report, &objectives);
    let reqs = report.reqs.as_ref().expect("request tracing was enabled");
    Ok(SloCaseRun {
        name: case.name.clone(),
        seed,
        p999_by_op: reqs
            .ops
            .iter()
            .filter(|o| o.completed > 0)
            .map(|o| (o.op.clone(), o.hist.quantile_ns(0.999)))
            .collect(),
        burn_alerts: alerts.len(),
        sidecar: slo_json(reqs, &objectives, &alerts),
    })
}

/// Run every case's SLO pass (first seed only — the tail profile is
/// seed-stable enough for surfacing) and render the combined
/// `ps2-slo-sweep-v1` document: `{"schema", "cases": [{"name", "seed",
/// "slo": <ps2-slo-v1>}]}`. Each embedded sidecar is the same document
/// `ps2-trace slo` reads.
pub fn slo_sweep(cases: &[BenchCase], seed: u64) -> Result<(Vec<SloCaseRun>, String), String> {
    let runs: Vec<SloCaseRun> = cases
        .iter()
        .map(|c| run_case_slo(c, seed))
        .collect::<Result<_, _>>()?;
    let mut s = String::from("{\n  \"schema\": \"ps2-slo-sweep-v1\",\n  \"cases\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"name\": \"{}\", \"seed\": {}, \"slo\": {}}}",
            if i == 0 { "" } else { "," },
            r.name,
            r.seed,
            r.sidecar.trim_end()
        );
    }
    s.push_str("\n  ]\n}\n");
    Ok((runs, s))
}

/// min/median/max of one measurement across seeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    pub min: u64,
    pub median: u64,
    pub max: u64,
}

impl Stat {
    /// Aggregate a non-empty sample; an even count takes the mean of the
    /// two central values (integer division — stays deterministic).
    pub fn of(mut vals: Vec<u64>) -> Stat {
        assert!(!vals.is_empty(), "Stat::of needs at least one sample");
        vals.sort_unstable();
        let n = vals.len();
        let median = if n % 2 == 1 {
            vals[n / 2]
        } else {
            (vals[n / 2 - 1] + vals[n / 2]) / 2
        };
        Stat {
            min: vals[0],
            median,
            max: vals[n - 1],
        }
    }
}

/// Append the strippable per-case wall-time line: `"wall_seconds": [..],`
/// on its own full line (one value per run, seconds at µs precision), so
/// `grep -v '"wall_seconds"'` restores the deterministic document byte for
/// byte. Shared by the training and serving sweep serializers.
fn push_wall_seconds_line(out: &mut String, walls: impl Iterator<Item = u64>) {
    out.push_str("\n      \"wall_seconds\": [");
    for (j, w) in walls.enumerate() {
        let _ = write!(
            out,
            "{}{:.6}",
            if j > 0 { ", " } else { "" },
            w as f64 / 1e9
        );
    }
    out.push_str("],");
}

/// Read a case's optional `wall_seconds` array back into per-run
/// nanoseconds. Reports written before the field existed (or hand-stripped
/// ones) parse as empty — callers default each run's wall to 0, which
/// disables the wall gate for that case.
fn parse_wall_seconds(case: &JsonValue) -> Vec<u64> {
    case.get("wall_seconds")
        .and_then(JsonValue::as_arr)
        .map(|a| {
            a.iter()
                .map(|v| match v {
                    JsonValue::Num(n) => (n * 1e9).round() as u64,
                    _ => 0,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// A case plus its per-seed runs and cross-seed aggregates.
#[derive(Clone, Debug)]
pub struct CaseSummary {
    pub case: BenchCase,
    pub runs: Vec<CaseRun>,
    pub virtual_ns: Stat,
    pub setup_ns: Stat,
    pub train_ns: Stat,
    pub total_msgs: Stat,
    pub total_bytes: Stat,
    /// Host wall time across seeds — noise, kept out of the summary block
    /// in the JSON and out of the hard gate.
    pub wall_ns: Stat,
}

impl CaseSummary {
    fn of(case: BenchCase, runs: Vec<CaseRun>) -> CaseSummary {
        let pick = |f: fn(&CaseRun) -> u64| Stat::of(runs.iter().map(f).collect());
        CaseSummary {
            virtual_ns: pick(|r| r.virtual_ns),
            setup_ns: pick(|r| r.setup_ns),
            train_ns: pick(|r| r.train_ns),
            total_msgs: pick(|r| r.total_msgs),
            total_bytes: pick(|r| r.total_bytes),
            wall_ns: pick(|r| r.wall_ns),
            case,
            runs,
        }
    }
}

/// A full sweep result — what `BENCH_pr5.json` holds.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    pub cases: Vec<CaseSummary>,
}

/// Run every case under every seed. Fails fast on an unknown preset or
/// algorithm so a typo cannot silently shrink coverage.
pub fn sweep(cases: &[BenchCase], seeds: &[u64]) -> Result<BenchReport, String> {
    let mut out = BenchReport::default();
    for case in cases {
        let mut runs = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            runs.push(run_case(case, seed)?);
        }
        out.cases.push(CaseSummary::of(case.clone(), runs));
    }
    Ok(out)
}

impl BenchReport {
    /// Serialize deterministically: cases in sweep order, integers only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ps2-bench-v1\",\n  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"name\": ");
            render_json_string(&c.case.name, &mut out);
            out.push_str(", \"preset\": ");
            render_json_string(&c.case.preset, &mut out);
            out.push_str(", \"algorithm\": ");
            render_json_string(&c.case.algorithm, &mut out);
            let _ = write!(
                out,
                ",\n      \"workers\": {}, \"servers\": {}, \"iters\": {},",
                c.case.workers, c.case.servers, c.case.iters
            );
            // Wall time is host noise, so it lives alone on one full line:
            // `grep -v '"wall_seconds"'` recovers the byte-exact deterministic
            // document (that is how CI diffs a fresh sweep against a baseline
            // written before this field existed).
            push_wall_seconds_line(&mut out, c.runs.iter().map(|r| r.wall_ns));
            out.push_str("\n      \"runs\": [");
            for (j, r) in c.runs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"seed\": {}, \"virtual_ns\": {}, \"setup_ns\": {}, \
                     \"train_ns\": {}, \"iterations\": {}, \"total_msgs\": {}, \
                     \"total_bytes\": {}}}",
                    r.seed,
                    r.virtual_ns,
                    r.setup_ns,
                    r.train_ns,
                    r.iterations,
                    r.total_msgs,
                    r.total_bytes
                );
            }
            out.push_str("\n      ],\n      \"summary\": {");
            let stat = |out: &mut String, name: &str, s: Stat, last: bool| {
                let _ = write!(
                    out,
                    "\n        \"{name}\": {{\"min\": {}, \"median\": {}, \"max\": {}}}{}",
                    s.min,
                    s.median,
                    s.max,
                    if last { "" } else { "," }
                );
            };
            stat(&mut out, "virtual_ns", c.virtual_ns, false);
            stat(&mut out, "setup_ns", c.setup_ns, false);
            stat(&mut out, "train_ns", c.train_ns, false);
            stat(&mut out, "total_msgs", c.total_msgs, false);
            stat(&mut out, "total_bytes", c.total_bytes, true);
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report written by [`BenchReport::to_json`] (via the same
    /// dependency-free parser `ps2-trace` uses).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("ps2-bench-v1") => {}
            other => return Err(format!("unsupported bench schema {other:?}")),
        }
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("bench report: missing/invalid \"{key}\""))
        };
        let str_field = |obj: &JsonValue, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench report: missing/invalid \"{key}\""))
        };
        let mut out = BenchReport::default();
        for c in doc
            .get("cases")
            .and_then(JsonValue::as_arr)
            .ok_or("bench report: missing \"cases\"")?
        {
            let case = BenchCase {
                name: str_field(c, "name")?,
                preset: str_field(c, "preset")?,
                algorithm: str_field(c, "algorithm")?,
                workers: u64_field(c, "workers")? as usize,
                servers: u64_field(c, "servers")? as usize,
                iters: u64_field(c, "iters")? as usize,
            };
            let walls = parse_wall_seconds(c);
            let runs = c
                .get("runs")
                .and_then(JsonValue::as_arr)
                .ok_or("bench report: case missing \"runs\"")?
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    Ok(CaseRun {
                        seed: u64_field(r, "seed")?,
                        virtual_ns: u64_field(r, "virtual_ns")?,
                        setup_ns: u64_field(r, "setup_ns")?,
                        train_ns: u64_field(r, "train_ns")?,
                        iterations: u64_field(r, "iterations")?,
                        total_msgs: u64_field(r, "total_msgs")?,
                        total_bytes: u64_field(r, "total_bytes")?,
                        wall_ns: walls.get(i).copied().unwrap_or(0),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if runs.is_empty() {
                return Err(format!("bench report: case {} has no runs", case.name));
            }
            // Aggregates are recomputed, not trusted: a hand-edited summary
            // cannot loosen the gate.
            out.cases.push(CaseSummary::of(case, runs));
        }
        Ok(out)
    }

    /// Human-readable sweep table (virtual seconds, median [min..max]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let secs = |ns: u64| ns as f64 / 1e9;
        out.push_str(
            "case            virtual median [min..max]        setup      train       msgs\n",
        );
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{:<15} {:>9.4}s [{:.4}..{:.4}] {:>9.4}s {:>9.4}s {:>10}",
                c.case.name,
                secs(c.virtual_ns.median),
                secs(c.virtual_ns.min),
                secs(c.virtual_ns.max),
                secs(c.setup_ns.median),
                secs(c.train_ns.median),
                c.total_msgs.median
            );
        }
        out
    }
}

/// True when `cand` exceeds `base` by more than `tolerance_milli`
/// parts-per-thousand (integer arithmetic; a zero baseline tolerates
/// nothing).
fn exceeds(base: u64, cand: u64, tolerance_milli: u64) -> bool {
    let limit = base + base / 1000 * tolerance_milli + base % 1000 * tolerance_milli / 1000;
    cand > limit
}

/// The regression gate: compare a candidate sweep against a baseline. A
/// violation is (a) a baseline case missing from the candidate — coverage
/// must not silently shrink — or (b) a median metric that grew beyond
/// `tolerance_milli` parts-per-thousand (50 = 5%). Returns one line per
/// violation; empty means the gate passes. Improvements never fail the
/// gate (regenerate the baseline to bank them).
pub fn compare(base: &BenchReport, cand: &BenchReport, tolerance_milli: u64) -> Vec<String> {
    let mut out = Vec::new();
    for b in &base.cases {
        let Some(c) = cand.cases.iter().find(|c| c.case.name == b.case.name) else {
            out.push(format!("case {} missing from candidate", b.case.name));
            continue;
        };
        let mut check = |metric: &str, a: Stat, v: Stat| {
            if exceeds(a.median, v.median, tolerance_milli) {
                let pct = if a.median == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (v.median as f64 - a.median as f64) / a.median as f64
                };
                out.push(format!(
                    "{} {metric}: median {} -> {} (+{pct:.1}%, tolerance {:.1}%)",
                    b.case.name,
                    a.median,
                    v.median,
                    tolerance_milli as f64 / 10.0
                ));
            }
        };
        check("virtual_ns", b.virtual_ns, c.virtual_ns);
        check("setup_ns", b.setup_ns, c.setup_ns);
        check("train_ns", b.train_ns, c.train_ns);
        check("total_msgs", b.total_msgs, c.total_msgs);
        check("total_bytes", b.total_bytes, c.total_bytes);
        check_wall(&mut out, &b.case.name, b.wall_ns, c.wall_ns);
    }
    out
}

/// The *soft* wall-clock gate shared by the training and serving sweeps:
/// wall time is host noise (different runners, caches, thermal state), so
/// only a >4× median blowup — the signature of an accidentally quadratic
/// host-side path, not of a busy machine — is a violation. A zero baseline
/// median (a report written before `wall_seconds` existed, or a stripped
/// one) disables the check for that case.
fn check_wall(out: &mut Vec<String>, name: &str, base: Stat, cand: Stat) {
    if base.median > 0 && cand.median > base.median.saturating_mul(4) {
        out.push(format!(
            "{name} wall_ns: median {} -> {} (more than 4x; host-side blowup)",
            base.median, cand.median
        ));
    }
}

// ---- the serving sweep ------------------------------------------------------

/// Seeds for the serve sweep. Two: each serve case is already 10k–20k
/// endpoints and a few hundred thousand pulls, and the runs are
/// deterministic — the second seed exists so one lucky arrival interleaving
/// cannot hide a tail regression.
pub const SERVE_SEEDS: &[u64] = &[1, 2];

/// Measurements from a single seeded run of a serving scenario. Everything
/// but `wall_ns` is virtual and deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeCaseRun {
    pub seed: u64,
    /// Makespan: model load + generation window + reply drain.
    pub virtual_ns: u64,
    /// Pulls completed (replies gathered) — the open-loop schedule fixes
    /// issues, so this equals issues in any healthy run.
    pub pulls: u64,
    /// Pull-latency tail, virtual nanoseconds.
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub total_msgs: u64,
    pub total_bytes: u64,
    /// Host wall-clock nanoseconds — noise; strippable line, soft gate.
    pub wall_ns: u64,
}

/// Run one serving preset under one seed.
pub fn run_serve_case(preset: &str, seed: u64) -> Result<ServeCaseRun, String> {
    let spec = serve_spec(preset).ok_or_else(|| {
        format!(
            "unknown serve preset '{preset}' (want {})",
            SERVE_PRESETS.join("|")
        )
    })?;
    let t0 = std::time::Instant::now();
    let (summary, report) = run_serve(SimBuilder::new().seed(seed), &spec);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    if summary.completed != summary.issued {
        return Err(format!(
            "serve case {preset} seed {seed}: {} of {} pulls unanswered",
            summary.issued - summary.completed,
            summary.issued
        ));
    }
    Ok(ServeCaseRun {
        seed,
        virtual_ns: summary.virtual_ns,
        pulls: summary.completed,
        p99_ns: summary.p99_ns,
        p999_ns: summary.p999_ns,
        total_msgs: report.total_msgs,
        total_bytes: report.total_bytes,
        wall_ns,
    })
}

/// A serving preset plus its per-seed runs and cross-seed aggregates.
#[derive(Clone, Debug)]
pub struct ServeCaseSummary {
    pub preset: String,
    pub endpoints: u64,
    pub runs: Vec<ServeCaseRun>,
    pub virtual_ns: Stat,
    pub pulls: Stat,
    pub p99_ns: Stat,
    pub p999_ns: Stat,
    pub total_msgs: Stat,
    pub total_bytes: Stat,
    pub wall_ns: Stat,
}

impl ServeCaseSummary {
    fn of(preset: String, endpoints: u64, runs: Vec<ServeCaseRun>) -> ServeCaseSummary {
        let pick = |f: fn(&ServeCaseRun) -> u64| Stat::of(runs.iter().map(f).collect());
        ServeCaseSummary {
            virtual_ns: pick(|r| r.virtual_ns),
            pulls: pick(|r| r.pulls),
            p99_ns: pick(|r| r.p99_ns),
            p999_ns: pick(|r| r.p999_ns),
            total_msgs: pick(|r| r.total_msgs),
            total_bytes: pick(|r| r.total_bytes),
            wall_ns: pick(|r| r.wall_ns),
            preset,
            endpoints,
            runs,
        }
    }
}

/// A full serving sweep — what `BENCH_pr9.json` holds.
#[derive(Clone, Debug, Default)]
pub struct ServeBenchReport {
    pub cases: Vec<ServeCaseSummary>,
}

/// Run every serving preset under every seed; fails fast on a typo'd preset
/// or an unhealthy run (unanswered pulls).
pub fn serve_sweep(presets: &[&str], seeds: &[u64]) -> Result<ServeBenchReport, String> {
    let mut out = ServeBenchReport::default();
    for &preset in presets {
        let endpoints = serve_spec(preset)
            .ok_or_else(|| format!("unknown serve preset '{preset}'"))?
            .endpoints();
        let mut runs = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            runs.push(run_serve_case(preset, seed)?);
        }
        out.cases
            .push(ServeCaseSummary::of(preset.to_string(), endpoints, runs));
    }
    Ok(out)
}

impl ServeBenchReport {
    /// Serialize deterministically, mirroring [`BenchReport::to_json`]:
    /// integers only, except the strippable per-case `wall_seconds` line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ps2-bench-serve-v1\",\n  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"preset\": ");
            render_json_string(&c.preset, &mut out);
            let _ = write!(out, ",\n      \"endpoints\": {},", c.endpoints);
            push_wall_seconds_line(&mut out, c.runs.iter().map(|r| r.wall_ns));
            out.push_str("\n      \"runs\": [");
            for (j, r) in c.runs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"seed\": {}, \"virtual_ns\": {}, \"pulls\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"total_msgs\": {}, \
                     \"total_bytes\": {}}}",
                    r.seed, r.virtual_ns, r.pulls, r.p99_ns, r.p999_ns, r.total_msgs, r.total_bytes
                );
            }
            out.push_str("\n      ],\n      \"summary\": {");
            let stat = |out: &mut String, name: &str, s: Stat, last: bool| {
                let _ = write!(
                    out,
                    "\n        \"{name}\": {{\"min\": {}, \"median\": {}, \"max\": {}}}{}",
                    s.min,
                    s.median,
                    s.max,
                    if last { "" } else { "," }
                );
            };
            stat(&mut out, "virtual_ns", c.virtual_ns, false);
            stat(&mut out, "pulls", c.pulls, false);
            stat(&mut out, "p99_ns", c.p99_ns, false);
            stat(&mut out, "p999_ns", c.p999_ns, false);
            stat(&mut out, "total_msgs", c.total_msgs, false);
            stat(&mut out, "total_bytes", c.total_bytes, true);
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report written by [`ServeBenchReport::to_json`]; aggregates
    /// are recomputed, not trusted.
    pub fn from_json(text: &str) -> Result<ServeBenchReport, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("ps2-bench-serve-v1") => {}
            other => return Err(format!("unsupported serve bench schema {other:?}")),
        }
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("serve bench report: missing/invalid \"{key}\""))
        };
        let mut out = ServeBenchReport::default();
        for c in doc
            .get("cases")
            .and_then(JsonValue::as_arr)
            .ok_or("serve bench report: missing \"cases\"")?
        {
            let preset = c
                .get("preset")
                .and_then(JsonValue::as_str)
                .ok_or("serve bench report: case missing \"preset\"")?
                .to_string();
            let endpoints = u64_field(c, "endpoints")?;
            let walls = parse_wall_seconds(c);
            let runs = c
                .get("runs")
                .and_then(JsonValue::as_arr)
                .ok_or("serve bench report: case missing \"runs\"")?
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    Ok(ServeCaseRun {
                        seed: u64_field(r, "seed")?,
                        virtual_ns: u64_field(r, "virtual_ns")?,
                        pulls: u64_field(r, "pulls")?,
                        p99_ns: u64_field(r, "p99_ns")?,
                        p999_ns: u64_field(r, "p999_ns")?,
                        total_msgs: u64_field(r, "total_msgs")?,
                        total_bytes: u64_field(r, "total_bytes")?,
                        wall_ns: walls.get(i).copied().unwrap_or(0),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if runs.is_empty() {
                return Err(format!("serve bench report: case {preset} has no runs"));
            }
            out.cases
                .push(ServeCaseSummary::of(preset, endpoints, runs));
        }
        Ok(out)
    }

    /// Human-readable sweep table: tail latency in virtual microseconds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "case          endpoints     pulls   p99 median [min..max] µs     p999 µs    virtual\n",
        );
        for c in &self.cases {
            let us = |ns: u64| ns as f64 / 1e3;
            let _ = writeln!(
                out,
                "{:<13} {:>9} {:>9} {:>9.1} [{:.1}..{:.1}] {:>12.1} {:>9.4}s",
                c.preset,
                c.endpoints,
                c.pulls.median,
                us(c.p99_ns.median),
                us(c.p99_ns.min),
                us(c.p99_ns.max),
                us(c.p999_ns.median),
                c.virtual_ns.median as f64 / 1e9
            );
        }
        out
    }
}

/// The serving regression gate, mirroring [`compare`]: missing cases and
/// median growth beyond tolerance fail; `pulls` additionally fails on *any*
/// change (the open-loop schedule fixes the count — a different number means
/// the generator itself changed); wall time gets the soft 4× gate.
pub fn compare_serve(
    base: &ServeBenchReport,
    cand: &ServeBenchReport,
    tolerance_milli: u64,
) -> Vec<String> {
    let mut out = Vec::new();
    for b in &base.cases {
        let Some(c) = cand.cases.iter().find(|c| c.preset == b.preset) else {
            out.push(format!("serve case {} missing from candidate", b.preset));
            continue;
        };
        if c.pulls != b.pulls {
            out.push(format!(
                "{} pulls: {} -> {} (open-loop count must not change)",
                b.preset, b.pulls.median, c.pulls.median
            ));
        }
        let mut check = |metric: &str, a: Stat, v: Stat| {
            if exceeds(a.median, v.median, tolerance_milli) {
                let pct = if a.median == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (v.median as f64 - a.median as f64) / a.median as f64
                };
                out.push(format!(
                    "{} {metric}: median {} -> {} (+{pct:.1}%, tolerance {:.1}%)",
                    b.preset,
                    a.median,
                    v.median,
                    tolerance_milli as f64 / 10.0
                ));
            }
        };
        check("virtual_ns", b.virtual_ns, c.virtual_ns);
        check("p99_ns", b.p99_ns, c.p99_ns);
        check("p999_ns", b.p999_ns, c.p999_ns);
        check("total_msgs", b.total_msgs, c.total_msgs);
        check("total_bytes", b.total_bytes, c.total_bytes);
        check_wall(&mut out, &b.preset, b.wall_ns, c.wall_ns);
    }
    out
}

// ---- the consistency-mode sweep ---------------------------------------------

/// One cell of the consistency-mode grid: preset × algorithm × mode. Unlike
/// [`BenchCase`] this sweep measures *convergence vs. virtual time*, not
/// makespan: every run carries its full loss curve.
#[derive(Clone, Debug)]
pub struct ModeCase {
    /// Stable identifier, e.g. `kddb-lr-ssp2`.
    pub name: String,
    pub preset: String,
    pub algorithm: String,
    /// CLI spelling of the mode (`bsp`, `ssp:2`, `async`), parsed at run
    /// time.
    pub mode: String,
    pub workers: usize,
    pub servers: usize,
    pub iters: u32,
}

/// Seeds for the mode sweep. Two, not three: each cell already runs 3 modes
/// × 2 algorithms × 2 presets, and the runs are deterministic anyway — the
/// seeds exist to keep one lucky dataset from hiding a regression.
pub const MODE_SEEDS: &[u64] = &[1, 2];

/// The grid CI sweeps: {kddb, kdd12} × {lr, svm} × {bsp, ssp:2, async}.
pub fn mode_cases(workers: usize, servers: usize, iters: u32) -> Vec<ModeCase> {
    let mut out = Vec::new();
    for preset in ["kddb", "kdd12"] {
        for algorithm in ["lr", "svm"] {
            for mode in ["bsp", "ssp:2", "async"] {
                let label = ConsistencyMode::parse(mode).expect("static mode").label();
                out.push(ModeCase {
                    name: format!("{preset}-{algorithm}-{label}"),
                    preset: preset.to_string(),
                    algorithm: algorithm.to_string(),
                    mode: mode.to_string(),
                    workers,
                    servers,
                    iters,
                });
            }
        }
    }
    out
}

/// Measurements from a single seeded run of a mode case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeRun {
    pub seed: u64,
    pub virtual_ns: u64,
    /// Mean batch loss of the last iteration, in micros.
    pub final_loss_micro: i64,
    pub iterations: u64,
    pub total_msgs: u64,
    pub total_bytes: u64,
    /// The convergence curve: `(virtual ns, mean batch loss in micros)`
    /// per iteration, in iteration order.
    pub curve: Vec<(u64, i64)>,
}

/// Run one mode case under one seed.
pub fn run_mode_case(case: &ModeCase, seed: u64) -> Result<ModeRun, String> {
    let gen = match case.preset.as_str() {
        "kddb" => presets::kddb(case.workers, seed).gen,
        "kdd12" => presets::kdd12(case.workers, seed).gen,
        "ctr" => presets::ctr(case.workers, seed).gen,
        other => return Err(format!("unknown bench preset '{other}'")),
    };
    let mode = ConsistencyMode::parse(&case.mode)?;
    let algo = ModeAlgo::parse(&case.algorithm)?;
    let mut cfg = ModeConfig::new(gen, case.workers, case.servers, mode);
    cfg.iterations = case.iters;
    cfg.learning_rate = 1.0;
    cfg.seed = seed;
    // A mild fixed straggler, so the three modes actually differ in pacing
    // and the curves show the tradeoff the sweep exists to watch.
    cfg.straggler_slowdown = SimTime::from_millis(20);
    let (trace, report) = run_mode(&cfg, algo);
    let curve: Vec<(u64, i64)> = trace
        .points
        .iter()
        .map(|&(s, l)| ((s * 1e9).round() as u64, (l * 1e6).round() as i64))
        .collect();
    Ok(ModeRun {
        seed,
        virtual_ns: report.virtual_time.as_nanos(),
        final_loss_micro: curve.last().map(|&(_, l)| l).unwrap_or(0),
        iterations: report.metrics.counter("ml.iterations"),
        total_msgs: report.total_msgs,
        total_bytes: report.total_bytes,
        curve,
    })
}

/// A mode case plus its per-seed runs and cross-seed aggregates.
#[derive(Clone, Debug)]
pub struct ModeCaseSummary {
    pub case: ModeCase,
    pub runs: Vec<ModeRun>,
    pub virtual_ns: Stat,
    /// Aggregated after clamping at zero — log/hinge losses are never
    /// negative, and `Stat` is unsigned.
    pub final_loss_micro: Stat,
    pub total_msgs: Stat,
    pub total_bytes: Stat,
}

impl ModeCaseSummary {
    fn of(case: ModeCase, runs: Vec<ModeRun>) -> ModeCaseSummary {
        let pick = |f: fn(&ModeRun) -> u64| Stat::of(runs.iter().map(f).collect());
        ModeCaseSummary {
            virtual_ns: pick(|r| r.virtual_ns),
            final_loss_micro: pick(|r| r.final_loss_micro.max(0) as u64),
            total_msgs: pick(|r| r.total_msgs),
            total_bytes: pick(|r| r.total_bytes),
            case,
            runs,
        }
    }
}

/// A full mode-sweep result — what `BENCH_pr6.json` holds.
#[derive(Clone, Debug, Default)]
pub struct ModeBenchReport {
    pub cases: Vec<ModeCaseSummary>,
}

/// Run every mode case under every seed.
pub fn mode_sweep(cases: &[ModeCase], seeds: &[u64]) -> Result<ModeBenchReport, String> {
    let mut out = ModeBenchReport::default();
    for case in cases {
        let mut runs = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            runs.push(run_mode_case(case, seed)?);
        }
        out.cases.push(ModeCaseSummary::of(case.clone(), runs));
    }
    Ok(out)
}

impl ModeBenchReport {
    /// Serialize deterministically: cases in sweep order, integers only,
    /// curves as `[ns, loss_micro]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ps2-bench-modes-v1\",\n  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"name\": ");
            render_json_string(&c.case.name, &mut out);
            out.push_str(", \"preset\": ");
            render_json_string(&c.case.preset, &mut out);
            out.push_str(", \"algorithm\": ");
            render_json_string(&c.case.algorithm, &mut out);
            out.push_str(", \"mode\": ");
            render_json_string(&c.case.mode, &mut out);
            let _ = write!(
                out,
                ",\n      \"workers\": {}, \"servers\": {}, \"iters\": {},\n      \"runs\": [",
                c.case.workers, c.case.servers, c.case.iters
            );
            for (j, r) in c.runs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"seed\": {}, \"virtual_ns\": {}, \"final_loss_micro\": {}, \
                     \"iterations\": {}, \"total_msgs\": {}, \"total_bytes\": {},\n         \
                     \"curve\": [",
                    r.seed,
                    r.virtual_ns,
                    r.final_loss_micro,
                    r.iterations,
                    r.total_msgs,
                    r.total_bytes
                );
                for (k, &(ns, loss)) in r.curve.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{ns}, {loss}]");
                }
                out.push_str("]}");
            }
            out.push_str("\n      ],\n      \"summary\": {");
            let stat = |out: &mut String, name: &str, s: Stat, last: bool| {
                let _ = write!(
                    out,
                    "\n        \"{name}\": {{\"min\": {}, \"median\": {}, \"max\": {}}}{}",
                    s.min,
                    s.median,
                    s.max,
                    if last { "" } else { "," }
                );
            };
            stat(&mut out, "virtual_ns", c.virtual_ns, false);
            stat(&mut out, "final_loss_micro", c.final_loss_micro, false);
            stat(&mut out, "total_msgs", c.total_msgs, false);
            stat(&mut out, "total_bytes", c.total_bytes, true);
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report written by [`ModeBenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<ModeBenchReport, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("ps2-bench-modes-v1") => {}
            other => return Err(format!("unsupported mode-bench schema {other:?}")),
        }
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("mode bench report: missing/invalid \"{key}\""))
        };
        let str_field = |obj: &JsonValue, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("mode bench report: missing/invalid \"{key}\""))
        };
        let mut out = ModeBenchReport::default();
        for c in doc
            .get("cases")
            .and_then(JsonValue::as_arr)
            .ok_or("mode bench report: missing \"cases\"")?
        {
            let case = ModeCase {
                name: str_field(c, "name")?,
                preset: str_field(c, "preset")?,
                algorithm: str_field(c, "algorithm")?,
                mode: str_field(c, "mode")?,
                workers: u64_field(c, "workers")? as usize,
                servers: u64_field(c, "servers")? as usize,
                iters: u64_field(c, "iters")? as u32,
            };
            let runs = c
                .get("runs")
                .and_then(JsonValue::as_arr)
                .ok_or("mode bench report: case missing \"runs\"")?
                .iter()
                .map(|r| {
                    let curve = r
                        .get("curve")
                        .and_then(JsonValue::as_arr)
                        .ok_or("mode bench report: run missing \"curve\"")?
                        .iter()
                        .map(|p| {
                            let pair = p
                                .as_arr()
                                .filter(|a| a.len() == 2)
                                .ok_or("mode bench report: curve point is not a pair")?;
                            Ok((
                                pair[0]
                                    .as_u64()
                                    .ok_or("mode bench report: bad curve time")?,
                                pair[1]
                                    .as_i64()
                                    .ok_or("mode bench report: bad curve loss")?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    Ok(ModeRun {
                        seed: u64_field(r, "seed")?,
                        virtual_ns: u64_field(r, "virtual_ns")?,
                        final_loss_micro: r
                            .get("final_loss_micro")
                            .and_then(JsonValue::as_i64)
                            .ok_or("mode bench report: missing \"final_loss_micro\"")?,
                        iterations: u64_field(r, "iterations")?,
                        total_msgs: u64_field(r, "total_msgs")?,
                        total_bytes: u64_field(r, "total_bytes")?,
                        curve,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if runs.is_empty() {
                return Err(format!("mode bench report: case {} has no runs", case.name));
            }
            // Aggregates are recomputed, not trusted.
            out.cases.push(ModeCaseSummary::of(case, runs));
        }
        Ok(out)
    }

    /// Human-readable sweep table: per case, the median makespan and final
    /// loss — the convergence-vs-virtual-time tradeoff at a glance.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let secs = |ns: u64| ns as f64 / 1e9;
        out.push_str("case                 virtual median [min..max]   final loss       msgs\n");
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{:<20} {:>9.4}s [{:.4}..{:.4}] {:>12} {:>10}",
                c.case.name,
                secs(c.virtual_ns.median),
                secs(c.virtual_ns.min),
                secs(c.virtual_ns.max),
                c.final_loss_micro.median,
                c.total_msgs.median
            );
        }
        out
    }
}

/// The mode-sweep regression gate: like [`compare`], plus a convergence
/// check — a candidate whose median *final loss* grew beyond tolerance is a
/// regression even if it got faster, because trading convergence for speed
/// is exactly the failure mode a staleness bug produces.
pub fn compare_modes(
    base: &ModeBenchReport,
    cand: &ModeBenchReport,
    tolerance_milli: u64,
) -> Vec<String> {
    let mut out = Vec::new();
    for b in &base.cases {
        let Some(c) = cand.cases.iter().find(|c| c.case.name == b.case.name) else {
            out.push(format!("mode case {} missing from candidate", b.case.name));
            continue;
        };
        let mut check = |metric: &str, a: Stat, v: Stat| {
            if exceeds(a.median, v.median, tolerance_milli) {
                let pct = if a.median == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (v.median as f64 - a.median as f64) / a.median as f64
                };
                out.push(format!(
                    "{} {metric}: median {} -> {} (+{pct:.1}%, tolerance {:.1}%)",
                    b.case.name,
                    a.median,
                    v.median,
                    tolerance_milli as f64 / 10.0
                ));
            }
        };
        check("virtual_ns", b.virtual_ns, c.virtual_ns);
        check("final_loss_micro", b.final_loss_micro, c.final_loss_micro);
        check("total_msgs", b.total_msgs, c.total_msgs);
        check("total_bytes", b.total_bytes, c.total_bytes);
    }
    out
}

// ---- the host-side (wall-clock) sidecar -------------------------------------
//
// Everything above is virtual-time and byte-identical across hosts; this
// section is the deliberate exception. `sweep_with_host` runs the same
// cases with the hostprof timers (and counting allocator) on and collects
// real wall-seconds plus the per-scope cost table into a *sidecar* report
// (`HOST_pr7.json`) — sidecar, because wall time is host noise and must
// never contaminate the byte-compared BENCH files. Its gate
// (`compare_host`) is correspondingly soft: median wall only, generous
// multiplicative tolerance.

/// One scope row of a host report. Mirrors [`hostprof::ScopeStat`] but owns
/// its name, since parsed sidecar files outlive the static name table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostScopeRow {
    pub scope: String,
    pub calls: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// Per-case host cost: wall stats across seeds, scope table summed across
/// seeds (sorted by `self_ns` descending, name as tiebreak).
#[derive(Clone, Debug, PartialEq)]
pub struct HostCase {
    pub name: String,
    pub wall_ns: Stat,
    pub scopes: Vec<HostScopeRow>,
}

impl HostCase {
    /// Aggregate one case's per-seed profiles.
    pub fn of(name: String, profiles: &[HostProfile]) -> HostCase {
        assert!(!profiles.is_empty(), "HostCase::of needs at least one run");
        let wall_ns = Stat::of(profiles.iter().map(|p| p.wall_ns).collect());
        let mut scopes: Vec<HostScopeRow> = Vec::new();
        for p in profiles {
            for s in &p.scopes {
                match scopes.iter_mut().find(|r| r.scope == s.name) {
                    Some(r) => {
                        r.calls += s.calls;
                        r.total_ns += s.total_ns;
                        r.self_ns += s.self_ns;
                        r.allocs += s.allocs;
                        r.alloc_bytes += s.alloc_bytes;
                    }
                    None => scopes.push(HostScopeRow {
                        scope: s.name.to_string(),
                        calls: s.calls,
                        total_ns: s.total_ns,
                        self_ns: s.self_ns,
                        allocs: s.allocs,
                        alloc_bytes: s.alloc_bytes,
                    }),
                }
            }
        }
        scopes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.scope.cmp(&b.scope)));
        HostCase {
            name,
            wall_ns,
            scopes,
        }
    }

    /// Median wall time in seconds — the headline number per case.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_ns.median as f64 / 1e9
    }
}

/// A host-cost sidecar report — what `HOST_pr7.json` holds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostReport {
    /// Whether the counting allocator was on (alloc columns meaningful).
    pub alloc_counted: bool,
    pub cases: Vec<HostCase>,
}

/// How many scope rows the sidecar keeps per case. There are only
/// [`crate::simnet::hostprof::SCOPE_COUNT`] scopes today, so nothing is
/// dropped; the cap documents intent for a future richer taxonomy.
pub const HOST_TOP_N: usize = 16;

/// [`sweep`], but with the host profiler (timers + counting allocator) on:
/// returns the usual virtual-time report **plus** the host sidecar. The
/// virtual report is byte-identical to an unprofiled sweep's — CI compares
/// exactly that.
pub fn sweep_with_host(
    cases: &[BenchCase],
    seeds: &[u64],
) -> Result<(BenchReport, HostReport), String> {
    hostprof::set_enabled(true);
    hostprof::set_alloc_counting(true);
    let result = (|| {
        let mut bench = BenchReport::default();
        let mut host = HostReport {
            alloc_counted: true,
            cases: Vec::new(),
        };
        for case in cases {
            let mut runs = Vec::with_capacity(seeds.len());
            let mut profiles = Vec::with_capacity(seeds.len());
            for &seed in seeds {
                let (run, profile) = run_case_profiled(case, seed, true)?;
                runs.push(run);
                profiles.push(profile.ok_or_else(|| {
                    format!(
                        "case {} seed {seed}: profiled run returned no host profile",
                        case.name
                    )
                })?);
            }
            bench.cases.push(CaseSummary::of(case.clone(), runs));
            let mut hc = HostCase::of(case.name.clone(), &profiles);
            hc.scopes.truncate(HOST_TOP_N);
            host.cases.push(hc);
        }
        Ok((bench, host))
    })();
    hostprof::set_alloc_counting(false);
    hostprof::set_enabled(false);
    result
}

impl HostReport {
    /// Wrap a single run's profile as a one-case report, so `ps2-run
    /// --host-prof-json` output and the bench sidecar share one schema (and
    /// one `ps2-trace host` reader).
    pub fn single(name: &str, profile: &HostProfile) -> HostReport {
        HostReport {
            alloc_counted: profile.alloc_counted,
            cases: vec![HostCase::of(
                name.to_string(),
                std::slice::from_ref(profile),
            )],
        }
    }

    /// Serialize. Deterministic *given the measurements* (fixed key order,
    /// fixed float formatting) — but the measurements are wall-clock, so
    /// two runs produce different bytes. Never byte-compare HOST files;
    /// that is what [`compare_host`]'s tolerance is for.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ps2-hostprof-v1\",\n");
        let _ = write!(
            out,
            "  \"alloc_counted\": {},\n  \"cases\": [",
            self.alloc_counted
        );
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"name\": ");
            render_json_string(&c.name, &mut out);
            let _ = write!(
                out,
                ",\n      \"wall_seconds\": {:.6},\n      \"wall_ns\": {{\"min\": {}, \"median\": {}, \"max\": {}}},\n      \"scopes\": [",
                c.wall_seconds(),
                c.wall_ns.min,
                c.wall_ns.median,
                c.wall_ns.max
            );
            for (j, s) in c.scopes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"scope\": ");
                render_json_string(&s.scope, &mut out);
                let _ = write!(
                    out,
                    ", \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}",
                    s.calls, s.total_ns, s.self_ns, s.allocs, s.alloc_bytes
                );
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report written by [`HostReport::to_json`]. `wall_seconds` is
    /// derived from the median on render, so it is not read back.
    pub fn from_json(text: &str) -> Result<HostReport, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some("ps2-hostprof-v1") => {}
            other => return Err(format!("unsupported hostprof schema {other:?}")),
        }
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("host report: missing/invalid \"{key}\""))
        };
        let mut out = HostReport {
            alloc_counted: doc
                .get("alloc_counted")
                .and_then(JsonValue::as_bool)
                .ok_or("host report: missing \"alloc_counted\"")?,
            cases: Vec::new(),
        };
        for c in doc
            .get("cases")
            .and_then(JsonValue::as_arr)
            .ok_or("host report: missing \"cases\"")?
        {
            let name = c
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("host report: case missing \"name\"")?
                .to_string();
            let wall = c
                .get("wall_ns")
                .ok_or("host report: case missing \"wall_ns\"")?;
            let wall_ns = Stat {
                min: u64_field(wall, "min")?,
                median: u64_field(wall, "median")?,
                max: u64_field(wall, "max")?,
            };
            let scopes = c
                .get("scopes")
                .and_then(JsonValue::as_arr)
                .ok_or("host report: case missing \"scopes\"")?
                .iter()
                .map(|s| {
                    Ok(HostScopeRow {
                        scope: s
                            .get("scope")
                            .and_then(JsonValue::as_str)
                            .ok_or("host report: scope row missing \"scope\"")?
                            .to_string(),
                        calls: u64_field(s, "calls")?,
                        total_ns: u64_field(s, "total_ns")?,
                        self_ns: u64_field(s, "self_ns")?,
                        allocs: u64_field(s, "allocs")?,
                        alloc_bytes: u64_field(s, "alloc_bytes")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            out.cases.push(HostCase {
                name,
                wall_ns,
                scopes,
            });
        }
        Ok(out)
    }

    /// Human-readable report: per case, wall seconds and the top-cost
    /// scope table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host cost (wall-clock; alloc counting {})",
            if self.alloc_counted { "on" } else { "off" }
        );
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{}: wall {:.3}s median [{:.3}..{:.3}]",
                c.name,
                c.wall_seconds(),
                c.wall_ns.min as f64 / 1e9,
                c.wall_ns.max as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>12} {:>12} {:>12} {:>14}",
                "scope", "calls", "total_ms", "self_ms", "allocs", "alloc_bytes"
            );
            for s in &c.scopes {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} {:>12.3} {:>12.3} {:>12} {:>14}",
                    s.scope,
                    s.calls,
                    s.total_ns as f64 / 1e6,
                    s.self_ns as f64 / 1e6,
                    s.allocs,
                    s.alloc_bytes
                );
            }
        }
        out
    }
}

/// The simulator-speed soft gate: flag a baseline case that is missing from
/// the candidate, or whose median wall time grew beyond `tolerance_milli`
/// parts-per-thousand (1000 = +100%, i.e. 2× — deliberately generous,
/// because CI wall time is noisy). Scope rows are reported by [`HostReport::render`]
/// but never gated: only the headline wall regression fails a build.
pub fn compare_host(base: &HostReport, cand: &HostReport, tolerance_milli: u64) -> Vec<String> {
    let mut out = Vec::new();
    for b in &base.cases {
        let Some(c) = cand.cases.iter().find(|c| c.name == b.name) else {
            out.push(format!("host case {} missing from candidate", b.name));
            continue;
        };
        if exceeds(b.wall_ns.median, c.wall_ns.median, tolerance_milli) {
            let pct = if b.wall_ns.median == 0 {
                f64::INFINITY
            } else {
                100.0 * (c.wall_ns.median as f64 - b.wall_ns.median as f64)
                    / b.wall_ns.median as f64
            };
            out.push(format!(
                "{} wall_ns: median {} -> {} (+{pct:.1}%, tolerance {:.1}%)",
                b.name,
                b.wall_ns.median,
                c.wall_ns.median,
                tolerance_milli as f64 / 10.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str, virtual_ns: u64) -> CaseSummary {
        let case = BenchCase {
            name: name.to_string(),
            preset: "kddb".to_string(),
            algorithm: "lr".to_string(),
            workers: 4,
            servers: 4,
            iters: 4,
        };
        let runs = vec![CaseRun {
            seed: 1,
            virtual_ns,
            setup_ns: virtual_ns / 4,
            train_ns: virtual_ns - virtual_ns / 4,
            iterations: 4,
            total_msgs: 100,
            total_bytes: 1_000,
            // Whole microseconds, so the %.6f wall_seconds line round-trips.
            wall_ns: 42_000_000,
        }];
        CaseSummary::of(case, runs)
    }

    #[test]
    fn stat_median_odd_and_even() {
        assert_eq!(
            Stat::of(vec![3, 1, 2]),
            Stat {
                min: 1,
                median: 2,
                max: 3
            }
        );
        assert_eq!(
            Stat::of(vec![4, 1, 2, 3]),
            Stat {
                min: 1,
                median: 2,
                max: 4
            }
        );
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = BenchReport {
            cases: vec![summary("kddb-lr", 1_000_000)],
        };
        let ok = BenchReport {
            cases: vec![summary("kddb-lr", 1_049_000)],
        };
        let bad = BenchReport {
            cases: vec![summary("kddb-lr", 1_051_000)],
        };
        assert!(compare(&base, &ok, 50).is_empty());
        let v = compare(&base, &bad, 50);
        assert!(!v.is_empty(), "5.1% over a 5% gate must fail");
        assert!(v[0].contains("virtual_ns"), "got: {}", v[0]);
    }

    #[test]
    fn gate_flags_missing_cases_but_not_improvements() {
        let base = BenchReport {
            cases: vec![summary("kddb-lr", 1_000_000), summary("kdd12-lr", 500_000)],
        };
        let cand = BenchReport {
            cases: vec![summary("kddb-lr", 900_000)],
        };
        let v = compare(&base, &cand, 50);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].contains("kdd12-lr missing"), "got: {}", v[0]);
    }

    #[test]
    fn json_round_trip_preserves_runs_and_aggregates() {
        let report = BenchReport {
            cases: vec![summary("kddb-lr", 1_000_000), summary("kdd12-lbfgs", 123)],
        };
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.cases.len(), 2);
        for (a, b) in report.cases.iter().zip(&parsed.cases) {
            assert_eq!(a.case.name, b.case.name);
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.virtual_ns, b.virtual_ns);
            assert_eq!(a.total_bytes, b.total_bytes);
        }
        // Serialization itself is stable.
        assert_eq!(report.to_json(), parsed.to_json());
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(BenchReport::from_json(r#"{"schema": "nope", "cases": []}"#).is_err());
        assert!(BenchReport::from_json("[]").is_err());
    }

    #[test]
    fn wall_seconds_lives_on_its_own_strippable_line() {
        let report = BenchReport {
            cases: vec![summary("kddb-lr", 1_000_000)],
        };
        let text = report.to_json();
        let wall_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"wall_seconds\""))
            .collect();
        assert_eq!(wall_lines, ["      \"wall_seconds\": [0.042000],"]);
        // Stripping the line leaves valid JSON — the pre-wall document.
        let stripped: String = text
            .lines()
            .filter(|l| !l.contains("\"wall_seconds\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = BenchReport::from_json(&stripped).unwrap();
        assert_eq!(parsed.cases[0].runs[0].wall_ns, 0, "stripped wall reads 0");
        assert_eq!(parsed.cases[0].virtual_ns, report.cases[0].virtual_ns);
    }

    #[test]
    fn wall_gate_is_soft_until_4x() {
        let base = BenchReport {
            cases: vec![summary("kddb-lr", 1_000_000)],
        };
        let mut slow = base.clone();
        // 3.9x the baseline wall: host noise, not a violation.
        slow.cases[0].wall_ns.median = base.cases[0].wall_ns.median * 39 / 10;
        assert!(compare(&base, &slow, 50).is_empty());
        slow.cases[0].wall_ns.median = base.cases[0].wall_ns.median * 5;
        let v = compare(&base, &slow, 50);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].contains("wall_ns"), "got: {}", v[0]);
    }

    fn serve_summary(preset: &str, p99: u64, pulls: u64) -> ServeCaseSummary {
        let runs = vec![ServeCaseRun {
            seed: 1,
            virtual_ns: 400_000_000,
            pulls,
            p99_ns: p99,
            p999_ns: p99 * 2,
            total_msgs: 2 * pulls,
            total_bytes: 600 * pulls,
            wall_ns: 1_500_000_000,
        }];
        ServeCaseSummary::of(preset.to_string(), 10_000, runs)
    }

    #[test]
    fn serve_json_round_trip_preserves_runs() {
        let report = ServeBenchReport {
            cases: vec![
                serve_summary("serve-kddb", 210_000, 200_000),
                serve_summary("serve-kdd12", 220_000, 320_000),
            ],
        };
        let parsed = ServeBenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.cases.len(), 2);
        for (a, b) in report.cases.iter().zip(&parsed.cases) {
            assert_eq!(a.preset, b.preset);
            assert_eq!(a.endpoints, b.endpoints);
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.p99_ns, b.p99_ns);
        }
        assert_eq!(report.to_json(), parsed.to_json());
    }

    #[test]
    fn serve_gate_flags_tail_regressions_and_pull_count_changes() {
        let base = ServeBenchReport {
            cases: vec![serve_summary("serve-kddb", 210_000, 200_000)],
        };
        // Within tolerance: clean.
        let ok = ServeBenchReport {
            cases: vec![serve_summary("serve-kddb", 215_000, 200_000)],
        };
        assert!(compare_serve(&base, &ok, 50).is_empty());
        // p999 regression past tolerance: flagged.
        let slow = ServeBenchReport {
            cases: vec![serve_summary("serve-kddb", 260_000, 200_000)],
        };
        let v = compare_serve(&base, &slow, 50);
        assert!(v.iter().any(|l| l.contains("p99")), "got: {v:?}");
        // Any change in the open-loop pull count: flagged even if "better".
        let fewer = ServeBenchReport {
            cases: vec![serve_summary("serve-kddb", 210_000, 199_999)],
        };
        let v = compare_serve(&base, &fewer, 50);
        assert!(v.iter().any(|l| l.contains("pulls")), "got: {v:?}");
        // Missing case: coverage must not shrink.
        let v = compare_serve(&base, &ServeBenchReport::default(), 50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
    }

    #[test]
    fn serve_presets_have_named_slos() {
        for preset in SERVE_PRESETS {
            let objectives = preset_slos(Some(preset));
            assert!(
                objectives.iter().any(|o| o.name.contains(preset)),
                "{preset}: objectives must carry the preset name"
            );
        }
    }

    fn mode_summary(name: &str, mode: &str, virtual_ns: u64, loss: i64) -> ModeCaseSummary {
        let case = ModeCase {
            name: name.to_string(),
            preset: "kddb".to_string(),
            algorithm: "lr".to_string(),
            mode: mode.to_string(),
            workers: 4,
            servers: 3,
            iters: 6,
        };
        let runs = vec![ModeRun {
            seed: 1,
            virtual_ns,
            final_loss_micro: loss,
            iterations: 24,
            total_msgs: 200,
            total_bytes: 4_000,
            curve: vec![(virtual_ns / 2, loss * 2), (virtual_ns, loss)],
        }];
        ModeCaseSummary::of(case, runs)
    }

    #[test]
    fn mode_grid_covers_presets_algorithms_and_modes() {
        let cases = mode_cases(4, 3, 6);
        assert_eq!(cases.len(), 12);
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"kddb-lr-bsp"));
        assert!(names.contains(&"kddb-svm-ssp2"));
        assert!(names.contains(&"kdd12-svm-async"));
        // Every spelled mode parses.
        for c in &cases {
            ConsistencyMode::parse(&c.mode).unwrap();
        }
    }

    #[test]
    fn mode_json_round_trip_preserves_curves() {
        let report = ModeBenchReport {
            cases: vec![
                mode_summary("kddb-lr-bsp", "bsp", 1_000_000, 650_000),
                mode_summary("kddb-lr-ssp2", "ssp:2", 700_000, 655_000),
            ],
        };
        let parsed = ModeBenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.cases.len(), 2);
        for (a, b) in report.cases.iter().zip(&parsed.cases) {
            assert_eq!(a.case.name, b.case.name);
            assert_eq!(a.case.mode, b.case.mode);
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.virtual_ns, b.virtual_ns);
            assert_eq!(a.final_loss_micro, b.final_loss_micro);
        }
        assert_eq!(report.to_json(), parsed.to_json());
    }

    #[test]
    fn mode_gate_flags_convergence_regressions() {
        let base = ModeBenchReport {
            cases: vec![mode_summary("kddb-lr-async", "async", 1_000_000, 600_000)],
        };
        // Faster but converging visibly worse: still a violation.
        let worse_loss = ModeBenchReport {
            cases: vec![mode_summary("kddb-lr-async", "async", 800_000, 700_000)],
        };
        let v = compare_modes(&base, &worse_loss, 50);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].contains("final_loss_micro"), "got: {}", v[0]);
        // Within tolerance on every axis: clean.
        let ok = ModeBenchReport {
            cases: vec![mode_summary("kddb-lr-async", "async", 1_020_000, 610_000)],
        };
        assert!(compare_modes(&base, &ok, 50).is_empty());
        // Missing case: coverage must not shrink.
        let v = compare_modes(&base, &ModeBenchReport::default(), 50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
    }

    fn host_case(name: &str, wall_median: u64) -> HostCase {
        HostCase {
            name: name.to_string(),
            wall_ns: Stat {
                min: wall_median / 2,
                median: wall_median,
                max: wall_median * 2,
            },
            scopes: vec![
                HostScopeRow {
                    scope: "sched.dispatch".to_string(),
                    calls: 100,
                    total_ns: 9_000_000,
                    self_ns: 4_000_000,
                    allocs: 12,
                    alloc_bytes: 4096,
                },
                HostScopeRow {
                    scope: "codec.encode".to_string(),
                    calls: 50,
                    total_ns: 2_000_000,
                    self_ns: 2_000_000,
                    allocs: 0,
                    alloc_bytes: 0,
                },
            ],
        }
    }

    #[test]
    fn host_json_round_trip_preserves_scope_tables() {
        let report = HostReport {
            alloc_counted: true,
            cases: vec![
                host_case("lr-sgd \"quoted\"", 42_000_000),
                host_case("svm", 7),
            ],
        };
        let text = report.to_json();
        assert!(text.contains("\"schema\": \"ps2-hostprof-v1\""));
        // wall_seconds is the derived headline: median/1e9 at 6 decimals.
        assert!(text.contains("\"wall_seconds\": 0.042000"), "{text}");
        let parsed = HostReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
        // Render → parse → render is a fixed point.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn host_case_aggregates_profiles_across_seeds() {
        use crate::simnet::ScopeStat;
        let p1 = HostProfile {
            wall_ns: 10,
            alloc_counted: true,
            scopes: vec![ScopeStat {
                name: "codec.encode",
                calls: 1,
                total_ns: 5,
                self_ns: 5,
                allocs: 2,
                alloc_bytes: 64,
            }],
        };
        let p2 = HostProfile {
            wall_ns: 30,
            alloc_counted: true,
            scopes: vec![
                ScopeStat {
                    name: "codec.encode",
                    calls: 3,
                    total_ns: 10,
                    self_ns: 7,
                    allocs: 1,
                    alloc_bytes: 32,
                },
                ScopeStat {
                    name: "sched.dispatch",
                    calls: 9,
                    total_ns: 100,
                    self_ns: 90,
                    allocs: 0,
                    alloc_bytes: 0,
                },
            ],
        };
        let c = HostCase::of("x".to_string(), &[p1, p2]);
        assert_eq!(
            c.wall_ns,
            Stat {
                min: 10,
                median: 20,
                max: 30
            }
        );
        // Rows summed by scope name, sorted by self_ns descending.
        assert_eq!(c.scopes.len(), 2);
        assert_eq!(c.scopes[0].scope, "sched.dispatch");
        assert_eq!(c.scopes[1].scope, "codec.encode");
        assert_eq!(c.scopes[1].calls, 4);
        assert_eq!(c.scopes[1].total_ns, 15);
        assert_eq!(c.scopes[1].self_ns, 12);
        assert_eq!(c.scopes[1].allocs, 3);
        assert_eq!(c.scopes[1].alloc_bytes, 96);
    }

    #[test]
    fn host_gate_flags_wall_slowdowns_only() {
        let base = HostReport {
            alloc_counted: true,
            cases: vec![host_case("lr", 100_000_000)],
        };
        // 2x wall at 300% tolerance (the CI default): fine.
        let double = HostReport {
            alloc_counted: true,
            cases: vec![host_case("lr", 200_000_000)],
        };
        assert!(compare_host(&base, &double, 3000).is_empty());
        // 5x wall: flagged.
        let blowup = HostReport {
            alloc_counted: true,
            cases: vec![host_case("lr", 500_000_000)],
        };
        let v = compare_host(&base, &blowup, 3000);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].contains("wall_ns"), "got: {}", v[0]);
        // Scope-table drift alone never gates.
        let mut shuffled = base.clone();
        shuffled.cases[0].scopes[0].self_ns *= 100;
        assert!(compare_host(&base, &shuffled, 3000).is_empty());
        // Missing case: coverage must not shrink.
        let v = compare_host(&base, &HostReport::default(), 3000);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
    }
}
