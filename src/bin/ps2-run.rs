//! `ps2-run` — run any PS2 workload from the command line.
//!
//! ```text
//! ps2-run <workload> [flags]
//!
//! workloads: lr | deepwalk | gbdt | lda | svm | lbfgs | fm | serve
//!
//! `serve` is the serving scenario: a trained model table on a fleet of
//! steppable PS-server agents absorbing open-loop pull traffic from tens of
//! thousands of endpoints (aggregate client agents, Zipf row skew). A
//! `--preset serve-*` implies it, so `ps2-run --preset serve-kddb` works
//! without the workload word.
//!
//! common flags:
//!   --workers N        executors (default 20)
//!   --servers N        PS-servers (default 20)
//!   --seed N           simulation seed (default 42)
//!   --iters N          training iterations (default 30)
//!   --backend NAME     ps2 | ps | spark | petuum | distml | xgboost |
//!                      glint | mllib-star      (default ps2)
//!   --preset NAME      named dataset preset: kddb|kdd12|ctr|gender (sparse),
//!                      pubmed|app (lda), graph1|graph2 (deepwalk),
//!                      serve-kddb|serve-kdd12 (serving)
//!   --mode NAME        consistency mode for lr/svm: bsp | ssp:<s> | async
//!                      (mode-gated Spark-free loop instead of the dataflow
//!                      backend; see also --mini-batch, --straggler-ms)
//!   --csv PATH         also write the (seconds, loss) trace as CSV
//!   --metrics-json PATH  write the flight-recorder run report as JSON and
//!                        print the per-op breakdown table
//!   --trace-json PATH  record the full event trace, print the critical-path
//!                      breakdown, and write a Perfetto/Chrome trace-event
//!                      JSON file (open in https://ui.perfetto.dev, or feed
//!                      to `ps2-trace` for offline analysis); watchdog alerts
//!                      show up as instant events on the offending proc
//!   --timeseries-json PATH  scrape the metrics registry every --window-ms of
//!                           virtual time and write the windowed series plus
//!                           watchdog alerts; scraping never perturbs the run
//!   --window-ms N      time-series window width in virtual ms (default 100)
//!   --slo-json PATH    trace every PS request end to end (issue → retries →
//!                      server queue → service → reply → cache fill), hold the
//!                      run to the preset's SLOs with multi-window burn-rate
//!                      alerting, and write the `ps2-slo-v1` sidecar (per-op
//!                      p999 + the K slowest requests with stage breakdowns;
//!                      inspect with `ps2-trace slo`). Request tracing is
//!                      non-yielding: the run is bit-identical either way.
//!   --whatif-json PATH run the what-if sensitivity battery over the run's
//!                      retained causal DAG: replay counterfactual speedups
//!                      (network 2× faster, a server's queueing zeroed, the
//!                      hottest op halved, …), rank them by estimated
//!                      makespan/p999 improvement, annotate any watchdog
//!                      alerts with the matching experiment's payoff, and
//!                      write the `ps2-whatif-v1` sidecar (offline variant:
//!                      `ps2-trace whatif <trace>`)
//!   --host-prof-json PATH  turn on the host-side self-profiler (wall-clock
//!                          timers + counting allocator), print the per-scope
//!                          cost table, and write it as a hostprof sidecar
//!                          (readable with `ps2-trace host`); the simulated
//!                          run itself is bit-identical with or without this
//!                          flag. `PS2_HOSTPROF=1|time|alloc` enables the
//!                          profiler without writing a file.
//!
//! dataset flags (lr/svm/lbfgs/fm):
//!   --rows N --dim N --nnz N   (defaults 20000 / 100000 / 20)
//! lr flags:
//!   --optimizer NAME   sgd | adam | adagrad | rmsprop | ftrl (default sgd)
//!   --lr X             learning rate (default 1.0)
//!   --fraction X       mini-batch fraction (default 0.01)
//! deepwalk flags:
//!   --vertices N --walks N --embedding-dim N
//! gbdt flags:
//!   --trees N --depth N --bins N
//! lda flags:
//!   --docs N --vocab N --topics N
//! serving flags (serve):
//!   --agents N --users-per-agent N --duration-ms N
//! ```
//!
//! Example:
//! ```text
//! ps2-run lr --backend petuum --dim 500000 --iters 50 --csv /tmp/petuum.csv
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::process::exit;

use ps2::bench::{preset_slos, HostReport};
use ps2::ml::deepwalk::{train_deepwalk, DeepWalkBackend, DeepWalkConfig};
use ps2::ml::fm::{train_fm, FmConfig};
use ps2::ml::gbdt::{train_gbdt, GbdtBackend, GbdtConfig};
use ps2::ml::hyper::{DeepWalkHyper, GbdtHyper, LdaHyper};
use ps2::ml::lbfgs::{train_lbfgs, LbfgsConfig};
use ps2::ml::lda::{train_lda, LdaBackend, LdaConfig};
use ps2::ml::lr::{train_lr, train_lr_mllib_star, LrBackend, LrConfig};
use ps2::ml::modes::{run_mode_with, ModeAlgo, ModeConfig};
use ps2::ml::optim::Optimizer;
use ps2::ml::serve::{run_serve, serve_spec, SERVE_PRESETS};
use ps2::ml::svm::{train_svm, SvmConfig};
use ps2::ml::TrainingTrace;
use ps2::ps::ConsistencyMode;
use ps2::simnet::{
    export_trace_full, hostprof, run_battery, slo_json, standard_battery, AlertKind,
    CausalAnalysis, CausalDag, OpTails, SimTime, Watchdog,
};
use ps2::{run_ps2_with, ClusterSpec, RunReport, SimBuilder};
use ps2_data::{presets, CorpusGen, GraphGen, RandomWalks, SparseDatasetGen};

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    die(&format!("flag --{name} needs a value"));
                });
                flags.insert(name.to_string(), value);
                i += 2;
            } else {
                die(&format!("unexpected argument '{a}'"));
            }
        }
        Args { flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for --{name}: '{v}'"))),
        }
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn die(msg: &str) -> ! {
    eprintln!("ps2-run: {msg}\nrun with no arguments for usage");
    exit(2)
}

fn usage() -> ! {
    eprintln!(
        "\
usage: ps2-run <lr|deepwalk|gbdt|lda|svm|lbfgs|fm|serve> [flags]

common flags:
  --workers N            executors (default 20)
  --servers N            PS-servers (default 20)
  --seed N               simulation seed (default 42)
  --iters N              training iterations (default 30)
  --backend NAME         ps2|ps|spark|petuum|distml|xgboost|glint|mllib-star (default ps2)
  --preset NAME          named dataset preset (overrides the shape flags below):
                           lr/svm/lbfgs/fm: kddb|kdd12|ctr|gender
                           lda:             pubmed|app
                           deepwalk:        graph1|graph2
                           serve:           serve-kddb|serve-kdd12
                                            (a serve-* preset implies the serve
                                            workload, so the word is optional)
  --mode NAME            consistency mode for lr/svm: bsp|ssp:<s>|async;
                         runs the Spark-free mode-gated worker loop instead
                         of the dataflow backend
  --mini-batch N         mode-path mini-batch rows per worker (default 64)
  --straggler-ms N       mode-path straggler slowdown for worker 0 (default 0)

outputs:
  --csv PATH             write the (seconds, loss) trace as CSV
  --metrics-json PATH    write the flight-recorder run report as JSON and
                         print the per-op breakdown table
  --trace-json PATH      record the full event trace, print the critical-path
                         breakdown, and write a Perfetto/Chrome trace-event
                         JSON (open in ui.perfetto.dev or feed to ps2-trace);
                         watchdog alerts appear as instant events
  --timeseries-json PATH scrape the metrics registry every --window-ms of
                         virtual time, run the skew/straggler watchdog over
                         the windows, and write the windowed series as JSON
  --window-ms N          time-series window width in virtual ms (default 100)
  --slo-json PATH        trace every PS request end to end, evaluate the
                         preset's SLOs with burn-rate alerting, and write the
                         ps2-slo-v1 sidecar (see ps2-trace slo); the traced
                         run is bit-identical to an untraced one
  --whatif-json PATH     replay the run's causal DAG under counterfactual
                         speedups, print experiments ranked by estimated
                         makespan/p999 improvement (with alert payoffs), and
                         write the ps2-whatif-v1 sidecar
  --host-prof-json PATH  profile the host cost (wall-clock + allocations) of
                         running the simulator itself and write the sidecar
                         (never changes the simulated run; see ps2-trace host)

dataset shape flags (lr/svm/lbfgs/fm):
  --rows N --dim N --nnz N   (defaults 20000 / 100000 / 20)
lr flags:
  --optimizer NAME       sgd|adam|adagrad|rmsprop|ftrl (default sgd)
  --lr X                 learning rate (default 1.0)
  --fraction X           mini-batch fraction (default 0.01)
deepwalk flags:
  --vertices N --walks N --embedding-dim N
gbdt flags:
  --trees N --depth N --bins N
lda flags:
  --docs N --vocab N --topics N
fm flags:
  --factors N            latent factors (default 8)
serving flags (serve; defaults come from the preset):
  --agents N             aggregate client agents (each models thousands of users)
  --users-per-agent N    simulated users per agent
  --duration-ms N        open-loop generation window, virtual ms
  --servers N            PS-server fleet size"
    );
    exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    // `ps2-run --preset serve-kddb …` works without a workload word: when
    // the first token is already a flag, serving is the implied workload
    // (the only one whose preset names are self-identifying).
    let (workload, rest): (String, &[String]) = if argv[0].starts_with("--") {
        ("serve".to_string(), &argv[..])
    } else {
        (argv[0].clone(), &argv[1..])
    };
    let args = Args::parse(rest);

    // Host profiling must be armed before the sim is built so the run's
    // reset/collect cycle sees it. The flag implies full profiling (timers +
    // allocator); PS2_HOSTPROF alone can also arm it for ad-hoc use.
    hostprof::init_from_env();
    let host_path = args.flags.get("host-prof-json").cloned();
    if host_path.is_some() {
        hostprof::set_enabled(true);
        hostprof::set_alloc_counting(true);
    }

    let spec = ClusterSpec {
        workers: args.get("workers", 20usize),
        servers: args.get("servers", 20usize),
        ..ClusterSpec::default()
    };
    let seed: u64 = args.get("seed", 42u64);
    let iters: usize = args.get("iters", 30usize);
    let backend = args.get_str("backend", "ps2");
    // Tracing is off unless a trace is actually wanted: recording is
    // timing-neutral but costs memory proportional to event count. What-if
    // replay needs the recorded event DAG, so --whatif-json implies it.
    let want_whatif = args.flags.contains_key("whatif-json");
    let want_trace = args.flags.contains_key("trace-json") || want_whatif;
    let want_slo = args.flags.contains_key("slo-json");
    // Request tracing rides along with any sink that can show it; like
    // event tracing it is non-yielding, so enabling it never moves a clock.
    // What-if tail estimates come from the reqtrace stage decomposition.
    let want_reqtrace = want_trace || want_slo;
    // Time-series scraping is likewise opt-in; it is non-yielding, so the
    // run itself is unaffected either way. SLO burn rates are evaluated
    // over telemetry windows, so --slo-json without an explicit window
    // still scrapes — at 1 ms, matching the gate presets' scale.
    let ts_window = if args.flags.contains_key("timeseries-json") {
        Some(SimTime::from_millis(args.get("window-ms", 100u64)))
    } else if want_slo {
        Some(SimTime::from_millis(args.get("window-ms", 1u64)))
    } else {
        None
    };
    let mk_builder = move || {
        let b = SimBuilder::new()
            .seed(seed)
            .trace(want_trace)
            .reqtrace(want_reqtrace);
        match ts_window {
            Some(w) => b.timeseries(w),
            None => b,
        }
    };

    let preset = args.flags.get("preset").cloned();
    let sparse_gen = |parts: usize| match preset.as_deref() {
        None => SparseDatasetGen::new(
            args.get("rows", 20_000u64),
            args.get("dim", 100_000u64),
            args.get("nnz", 20u32),
            parts,
            seed,
        ),
        Some("kddb") => presets::kddb(parts, seed).gen,
        Some("kdd12") => presets::kdd12(parts, seed).gen,
        Some("ctr") => presets::ctr(parts, seed).gen,
        Some("gender") => presets::gender(parts, seed).gen,
        Some(other) => die(&format!(
            "unknown sparse preset '{other}' (want kddb|kdd12|ctr|gender; \
             serving presets: {})",
            SERVE_PRESETS.join("|")
        )),
    };

    let workers = spec.workers;
    // The consistency-mode path bypasses the dataflow engine entirely: a
    // Spark-free pull → gradient → push topology gated by the chosen mode
    // (BSP barrier, SSP staleness bound, or free-running async).
    let (trace, mut report) =
        if workload == "serve" || preset.as_deref().is_some_and(|p| p.starts_with("serve-")) {
            // The serving scenario: geometry comes from the serve preset, with
            // load-shape flags as overrides. The training-trace slot carries
            // only a label — serving has no loss curve.
            let pname = preset.clone().unwrap_or_else(|| {
                die(&format!(
                    "serving needs --preset ({})",
                    SERVE_PRESETS.join("|")
                ))
            });
            let mut sspec = serve_spec(&pname).unwrap_or_else(|| {
                die(&format!(
                    "unknown serve preset '{pname}' (want {})",
                    SERVE_PRESETS.join("|")
                ))
            });
            sspec.servers = args.get("servers", sspec.servers);
            sspec.agents = args.get("agents", sspec.agents);
            sspec.users_per_agent = args.get("users-per-agent", sspec.users_per_agent);
            if args.flags.contains_key("duration-ms") {
                sspec.duration = SimTime::from_millis(args.get("duration-ms", 0u64));
            }
            let (summary, report) = run_serve(mk_builder(), &sspec);
            let us = |ns: u64| format!("{}.{:03}us", ns / 1_000, ns % 1_000);
            println!(
                "serving {}: {} endpoints on {} servers — {} pulls completed of {} issued\n\
             pull latency p99 {}  p999 {}",
                sspec.name,
                summary.endpoints,
                sspec.servers,
                summary.completed,
                summary.issued,
                us(summary.p99_ns),
                us(summary.p999_ns),
            );
            (
                TrainingTrace::new(format!("{} serving", sspec.name)),
                report,
            )
        } else if let Some(spelling) = args.flags.get("mode").cloned() {
            let mode = ConsistencyMode::parse(&spelling).unwrap_or_else(|e| die(&e));
            let algo = match workload.as_str() {
                "lr" => ModeAlgo::Lr,
                "svm" => ModeAlgo::Svm,
                other => die(&format!("--mode supports lr|svm, not '{other}'")),
            };
            let mut cfg = ModeConfig::new(sparse_gen(workers), spec.workers, spec.servers, mode);
            cfg.iterations = iters as u32;
            cfg.learning_rate = args.get("lr", 1.0f64);
            cfg.mini_batch = args.get("mini-batch", 64usize);
            cfg.straggler_slowdown = SimTime::from_millis(args.get("straggler-ms", 0u64));
            cfg.seed = seed;
            run_mode_with(mk_builder(), &cfg, algo)
        } else {
            match workload.as_str() {
                "lr" => {
                    let optimizer = match args.get_str("optimizer", "sgd").as_str() {
                        "sgd" => Optimizer::Sgd,
                        "adam" => Optimizer::Adam {
                            beta1: 0.9,
                            beta2: 0.999,
                            epsilon: 1e-8,
                        },
                        "adagrad" => Optimizer::Adagrad { epsilon: 1e-8 },
                        "rmsprop" => Optimizer::RmsProp {
                            decay: 0.9,
                            epsilon: 1e-8,
                        },
                        "ftrl" => Optimizer::Ftrl {
                            alpha: 0.3,
                            beta: 1.0,
                            l1: 1e-3,
                            l2: 1e-4,
                        },
                        other => die(&format!("unknown optimizer '{other}'")),
                    };
                    let lr_backend = match backend.as_str() {
                        "ps2" => Some(LrBackend::Ps2Dcv),
                        "ps" => Some(LrBackend::PsPullPush),
                        "spark" => Some(LrBackend::SparkDriver),
                        "petuum" => Some(LrBackend::PetuumStyle),
                        "distml" => Some(LrBackend::DistmlStyle),
                        "mllib-star" => None,
                        other => die(&format!("unknown LR backend '{other}'")),
                    };
                    let gen = sparse_gen(workers);
                    let lrate: f64 = args.get("lr", 1.0f64);
                    let fraction: f64 = args.get("fraction", 0.01f64);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let mut cfg = LrConfig::new(gen, optimizer, iters);
                        cfg.hyper.learning_rate = lrate;
                        cfg.hyper.mini_batch_fraction = fraction;
                        match lr_backend {
                            Some(b) => train_lr(ctx, ps2, &cfg, b),
                            None => train_lr_mllib_star(ctx, ps2, &cfg),
                        }
                    })
                }
                "deepwalk" => {
                    let dw_backend = match backend.as_str() {
                        "ps2" => DeepWalkBackend::Ps2Dcv,
                        "ps" => DeepWalkBackend::PsPullPush,
                        other => die(&format!("unknown DeepWalk backend '{other}'")),
                    };
                    let (graph_gen, walks_n, walk_len) = match preset.as_deref() {
                        None => (
                            GraphGen {
                                vertices: args.get("vertices", 2_000u32),
                                edges_per_vertex: 4,
                                seed,
                            },
                            args.get("walks", 4_000usize),
                            8usize,
                        ),
                        Some("graph1") => {
                            let p = presets::graph1(seed);
                            (p.gen, p.num_walks, p.walk_len)
                        }
                        Some("graph2") => {
                            let p = presets::graph2(seed);
                            (p.gen, p.num_walks, p.walk_len)
                        }
                        Some(other) => die(&format!(
                            "unknown graph preset '{other}' (want graph1|graph2)"
                        )),
                    };
                    let dim: u64 = args.get("embedding-dim", 100u64);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let g = graph_gen.generate();
                        let walks = RandomWalks::sample(&g, walks_n, walk_len, seed ^ 1);
                        let cfg = DeepWalkConfig {
                            vertices: graph_gen.vertices,
                            hyper: DeepWalkHyper {
                                embedding_dim: dim,
                                ..DeepWalkHyper::default()
                            },
                            batch_per_worker: 128,
                            iterations: iters,
                            seed,
                        };
                        train_deepwalk(ctx, ps2, &cfg, &walks, dw_backend)
                    })
                }
                "gbdt" => {
                    let gb_backend = match backend.as_str() {
                        "ps2" => GbdtBackend::Ps2Dcv,
                        "xgboost" => GbdtBackend::XgboostStyle,
                        other => die(&format!("unknown GBDT backend '{other}'")),
                    };
                    let gen = SparseDatasetGen::new(
                        args.get("rows", 10_000u64),
                        args.get("dim", 500u64),
                        args.get("nnz", 20u32),
                        workers,
                        seed,
                    )
                    .continuous();
                    let hyper = GbdtHyper {
                        num_trees: args.get("trees", 10usize),
                        max_depth: args.get("depth", 5usize),
                        histogram_bins: args.get("bins", 50usize),
                        ..GbdtHyper::default()
                    };
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let cfg = GbdtConfig {
                            dataset: gen,
                            hyper,
                        };
                        train_gbdt(ctx, ps2, &cfg, gb_backend).0
                    })
                }
                "lda" => {
                    let lda_backend = match backend.as_str() {
                        "ps2" => LdaBackend::Ps2Dcv,
                        "petuum" => LdaBackend::PetuumStyle,
                        "glint" => LdaBackend::GlintStyle,
                        "spark" => LdaBackend::SparkDriver,
                        other => die(&format!("unknown LDA backend '{other}'")),
                    };
                    let corpus = match preset.as_deref() {
                        None => CorpusGen::new(
                            args.get("docs", 4_000u64),
                            args.get("vocab", 8_000u32),
                            16,
                            60,
                            workers,
                            seed,
                        ),
                        Some("pubmed") => presets::pubmed(workers, seed).gen,
                        Some("app") => presets::app(workers, seed).gen,
                        Some(other) => die(&format!(
                            "unknown corpus preset '{other}' (want pubmed|app)"
                        )),
                    };
                    let topics: u32 = args.get("topics", 50u32);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let cfg = LdaConfig {
                            corpus,
                            hyper: LdaHyper {
                                topics,
                                ..LdaHyper::default()
                            },
                            iterations: iters,
                        };
                        train_lda(ctx, ps2, &cfg, lda_backend)
                    })
                }
                "svm" => {
                    let gen = sparse_gen(workers);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let mut cfg = SvmConfig::new(gen, iters);
                        cfg.learning_rate = 1.0;
                        train_svm(ctx, ps2, &cfg)
                    })
                }
                "lbfgs" => {
                    let gen = sparse_gen(workers);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        train_lbfgs(ctx, ps2, &LbfgsConfig::new(gen, iters))
                    })
                }
                "fm" => {
                    let gen = sparse_gen(workers);
                    let factors: u32 = args.get("factors", 8u32);
                    run_ps2_with(mk_builder(), spec, move |ctx, ps2| {
                        let mut cfg = FmConfig::new(gen, factors, iters);
                        cfg.learning_rate = 1.0;
                        train_fm(ctx, ps2, &cfg)
                    })
                }
                other => die(&format!("unknown workload '{other}'")),
            }
        };

    // Retain the causal DAG *before* watchdog annotation: the alert marks
    // injected into the trace below are presentation, and must not enter
    // counterfactual replay as fixed program-order points. Retained for
    // every traced run so the exported trace file carries the "ps2"."dag"
    // section ps2-trace whatif replays offline.
    let whatif_dag = if want_trace {
        Some(
            CausalDag::from_report(&report)
                .unwrap_or_else(|e| die(&format!("causal DAG retention failed: {e}"))),
        )
    } else {
        None
    };

    // The watchdog is a pure pass over the windowed series; alerts land in
    // the event trace (as instant marks) and in the console summary below.
    // SLO objectives are evaluated in the same pass when --slo-json asked
    // for them.
    let objectives = if want_slo {
        preset_slos(preset.as_deref())
    } else {
        Vec::new()
    };
    let alerts = if report.timeseries.is_some() {
        let wd = Watchdog::default();
        let mut alerts = wd.evaluate(&report);
        alerts.extend(wd.evaluate_slo(&report, &objectives));
        if want_trace {
            Watchdog::annotate(&mut report, &alerts);
        }
        alerts
    } else {
        Vec::new()
    };
    // The machine-readable SLO sidecar: per-op request summaries with
    // exemplars, the objectives, and any burn alerts. Also embedded in the
    // event trace so one file carries everything.
    let slo_sidecar = report
        .reqs
        .as_ref()
        .map(|r| slo_json(r, &objectives, &alerts));

    print_trace(&trace);
    // Wall time in fixed human units (ms, one decimal) — `{:?}` on a
    // Duration flips between ns/µs/ms/s with the magnitude, which makes
    // console output diff-unstable across hosts.
    println!(
        "\ncluster time {}   wall {:.1} ms   {} msgs   {:.1} MB",
        report.virtual_time,
        report.wall_time.as_secs_f64() * 1e3,
        report.total_msgs,
        report.total_bytes as f64 / 1e6
    );
    if let Some(path) = args.flags.get("csv") {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        writeln!(f, "iteration,seconds,loss")
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        for (i, (s, l)) in trace.points.iter().enumerate() {
            writeln!(f, "{i},{s:.6},{l:.6}")
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        }
        println!("trace written to {path}");
    }
    if let Some(path) = args.flags.get("metrics-json") {
        let run = RunReport::from_sim(&report);
        println!("\n{}", run.render_table());
        std::fs::write(path, run.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("metrics written to {path}");
    }
    if let Some(path) = args.flags.get("trace-json") {
        let analysis = CausalAnalysis::from_report(&report)
            .unwrap_or_else(|e| die(&format!("critical-path analysis failed: {e}")));
        println!("\n{}", analysis.render());
        let slo = slo_sidecar.as_deref().map(str::trim_end);
        std::fs::write(
            path,
            export_trace_full(&report, Some(&analysis), &alerts, slo, whatif_dag.as_ref()),
        )
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("trace written to {path}  (open in ui.perfetto.dev, or: ps2-trace {path})");
    }
    if let Some(path) = args.flags.get("timeseries-json") {
        let ts = report.timeseries.as_ref().expect("timeseries was enabled");
        std::fs::write(path, ts.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!(
            "\ntime series written to {path}  ({} windows of {}, {} evicted)",
            ts.windows.len(),
            SimTime(ts.window_ns),
            ts.dropped_windows
        );
        if alerts.is_empty() {
            println!("watchdog: no alerts");
        } else {
            for a in &alerts {
                let proc = a.proc.map(|p| format!(" proc {p}")).unwrap_or_default();
                println!(
                    "watchdog: {} at {} (window {}{}, {}, value {}.{:03})",
                    a.kind.label(),
                    a.at,
                    a.window,
                    proc,
                    a.subject,
                    a.value_milli / 1000,
                    (a.value_milli % 1000).unsigned_abs(),
                );
            }
        }
    }
    if let Some(path) = args.flags.get("slo-json") {
        let reqs = report.reqs.as_ref().expect("request tracing was enabled");
        println!();
        for o in &reqs.ops {
            if o.completed == 0 {
                continue;
            }
            // Request latencies live at µs scale; SimTime's second-based
            // Display would flatten them all to 0.000s.
            let us = |ns: u64| format!("{}.{:03}us", ns / 1_000, ns % 1_000);
            println!(
                "slo: op {:<12} n={:<8} p99 {}  p999 {}  max {}",
                o.op,
                o.completed,
                us(o.hist.quantile_ns(0.99)),
                us(o.hist.quantile_ns(0.999)),
                us(o.hist.max_ns()),
            );
        }
        let burns: Vec<_> = alerts
            .iter()
            .filter(|a| a.kind == AlertKind::SloBurn)
            .collect();
        if burns.is_empty() {
            println!("slo: all {} objectives within budget", objectives.len());
        } else {
            for a in &burns {
                println!(
                    "slo: BURN {} at {} (window {}, {}x budget)",
                    a.subject,
                    a.at,
                    a.window,
                    a.value_milli / 1000,
                );
            }
        }
        std::fs::write(path, slo_sidecar.as_deref().expect("reqtrace was enabled"))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("slo report written to {path}  (inspect with: ps2-trace slo {path})");
    }
    if let Some(path) = args.flags.get("whatif-json") {
        let dag = whatif_dag.as_ref().expect("tracing was enabled");
        let tails = report
            .reqs
            .as_ref()
            .map(OpTails::from_reqs)
            .unwrap_or_default();
        let mut specs = standard_battery(dag);
        // Fold the alerts' matching counterfactuals into the battery so each
        // payoff annotation below cites a measured replay, not a guess.
        let proc_names: Vec<String> = report.procs.iter().map(|p| p.name.clone()).collect();
        for a in &alerts {
            if let Some(spec) = a.whatif_spec(&proc_names) {
                if !specs.iter().any(|(_, s)| *s == spec) {
                    specs.push((format!("fix-{}", a.subject), spec));
                }
            }
        }
        let wr = run_battery(dag, &tails, &specs)
            .unwrap_or_else(|e| die(&format!("what-if replay failed: {e}")));
        println!("\n{}", wr.render());
        for a in &alerts {
            let exp = match a.whatif_spec(&proc_names) {
                Some(spec) => wr.experiments.iter().find(|e| e.spec == spec),
                // An SLO burn has no single counterfactual; cite the best one.
                None if a.kind == AlertKind::SloBurn => wr.experiments.first(),
                None => None,
            };
            if let Some(e) = exp {
                println!(
                    "whatif: alert {} ({}) -> {} would save {:.6}s ({}.{}%)",
                    a.kind.label(),
                    a.subject,
                    e.name,
                    e.delta_ns as f64 / 1e9,
                    e.improvement_milli / 10,
                    (e.improvement_milli % 10).abs(),
                );
            }
        }
        std::fs::write(path, wr.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!(
            "what-if report written to {path}  (replay offline with: ps2-trace whatif <trace>)"
        );
    }
    // Last, after every export above, so post-run work done on this thread
    // (perfetto rendering, metrics serialization) is folded into the profile
    // rather than lost between run-end and process exit.
    if let Some(mut profile) = report.host.take() {
        hostprof::flush_thread();
        profile.merge(&hostprof::take_profile(0));
        println!("\n{}", profile.render());
        if let Some(path) = host_path {
            let sidecar = HostReport::single(&workload, &profile);
            std::fs::write(&path, sidecar.to_json())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("host profile written to {path}  (inspect with: ps2-trace host {path})");
        }
    }
}

fn print_trace(trace: &TrainingTrace) {
    println!("{} — {} iterations", trace.label, trace.points.len());
    let stride = (trace.points.len() / 15).max(1);
    for (i, (secs, loss)) in trace.points.iter().enumerate() {
        if i % stride == 0 || i + 1 == trace.points.len() {
            println!("  iter {i:>4}: loss {loss:.5}   {secs:>9.3}s");
        }
    }
}
