//! `ps2-bench` — sweep the {preset × algorithm × seed} grid and gate CI on
//! regressions against a committed baseline.
//!
//! ```text
//! ps2-bench sweep [--out PATH] [--host-out PATH] [--slo-out PATH]
//!                 [--seeds a,b,c] [--workers N] [--servers N] [--iters N]
//!     run the small case grid, print the summary table, optionally write
//!     the JSON report (this is how BENCH_pr5.json is generated);
//!     --host-out additionally runs with the host profiler on and writes a
//!     wall-clock sidecar (this is how HOST_pr7.json is generated — the
//!     virtual-time report stays byte-identical either way);
//!     --slo-out re-runs each case with request tracing on (non-yielding,
//!     same virtual times), prints per-op p999 + burn-alert headlines, and
//!     writes the combined ps2-slo-sweep-v1 sidecar
//!
//! ps2-bench diff <BASE> <CAND> [--tolerance FRAC] [--gate]
//!     compare two report files; with --gate, exit 1 when any median
//!     regressed beyond FRAC (default 0.05 = 5%)
//!
//! ps2-bench --gate <BASE> [--tolerance FRAC] [--out PATH] [flags as sweep]
//!     sweep fresh, compare against the committed baseline, exit 1 on
//!     regression — the CI entry point
//!
//! ps2-bench modes [--out PATH] [--seeds a,b] [--workers N] [--servers N]
//!                 [--iters N] [--gate BASE] [--tolerance FRAC]
//!     run the consistency-mode grid ({kddb,kdd12} × {lr,svm} ×
//!     {bsp,ssp:2,async}) emitting convergence-vs-virtual-time curves
//!     (this is how BENCH_pr6.json is generated); with --gate, compare
//!     against the committed baseline and exit 1 on regression
//!
//! ps2-bench serve [--out PATH] [--seeds a,b] [--presets p,q]
//!                 [--gate BASE] [--tolerance FRAC]
//!     run the serving sweep (serve-kddb, serve-kdd12: steppable PS fleets
//!     under open-loop pull traffic from 10k–20k endpoints) emitting pull
//!     p99/p999 tail latency per case (this is how BENCH_pr9.json is
//!     generated); with --gate, compare against the committed baseline and
//!     exit 1 on regression
//! ```
//!
//! All numbers in the main reports are virtual-time integers from the
//! simulator, so they are byte-identical across runs and hosts; the gate
//! detects modeled-cost changes, never host noise. Wall-clock lives only in
//! the `--host-out` sidecar, which gets its own soft gate (`ps2-trace host
//! diff`) with a deliberately loose tolerance.

use std::process::exit;

use ps2::bench::{
    compare, compare_modes, compare_serve, mode_cases, mode_sweep, serve_sweep, slo_sweep,
    small_cases, sweep, sweep_with_host, BenchReport, HostReport, ModeBenchReport,
    ServeBenchReport, DEFAULT_SEEDS, MODE_SEEDS, SERVE_SEEDS,
};
use ps2::ml::serve::SERVE_PRESETS;

fn die(msg: &str) -> ! {
    eprintln!("ps2-bench: {msg}");
    exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage: ps2-bench sweep [--out PATH] [--host-out PATH] [--slo-out PATH] [--seeds a,b,c] [--workers N] [--servers N] [--iters N]\n\
        \x20      ps2-bench diff <BASE> <CAND> [--tolerance FRAC] [--gate]\n\
        \x20      ps2-bench --gate <BASE> [--tolerance FRAC] [--out PATH] [--host-out PATH] [sweep flags]\n\
        \x20      ps2-bench modes [--out PATH] [--seeds a,b] [--workers N] [--servers N] [--iters N] [--gate BASE] [--tolerance FRAC]\n\
        \x20      ps2-bench serve [--out PATH] [--seeds a,b] [--presets p,q] [--gate BASE] [--tolerance FRAC]"
    );
    exit(2)
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(argv: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(name) = argv[i].strip_prefix("--") else {
                die(&format!("unexpected argument '{}'", argv[i]));
            };
            if name == "gate" {
                // Bare flag in diff mode; carries a baseline path in modes
                // mode. Disambiguate by whether the next token is a flag.
                match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(v) => {
                        out.push((name.to_string(), v.clone()));
                        i += 2;
                    }
                    None => {
                        out.push((name.to_string(), String::new()));
                        i += 1;
                    }
                }
                continue;
            }
            let value = argv
                .get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(&format!("flag --{name} needs a value")));
            out.push((name.to_string(), value));
            i += 2;
        }
        Flags(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for --{name}: '{v}'"))),
        }
    }
}

fn tolerance_milli(flags: &Flags) -> u64 {
    let frac: f64 = flags.get_num("tolerance", 0.05f64);
    if !(frac.is_finite() && frac >= 0.0) {
        die("--tolerance must be a non-negative fraction, e.g. 0.05");
    }
    (frac * 1000.0).round() as u64
}

fn load(path: &str) -> BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    BenchReport::from_json(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Run the small-case grid. When `--host-out` is present the sweep runs
/// with the host profiler (and counting allocator) enabled and returns the
/// wall-clock sidecar too — the virtual-time `BenchReport` is byte-identical
/// either way, which CI verifies by `cmp`-ing it against the baseline.
fn run_sweep(flags: &Flags) -> (BenchReport, Option<HostReport>) {
    let workers = flags.get_num("workers", 4usize);
    let servers = flags.get_num("servers", 4usize);
    let iters = flags.get_num("iters", 4usize);
    let seeds: Vec<u64> = match flags.get("seeds") {
        None => DEFAULT_SEEDS.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad seed '{s}' in --seeds")))
            })
            .collect(),
    };
    if seeds.is_empty() {
        die("--seeds needs at least one seed");
    }
    let cases = small_cases(workers, servers, iters);
    eprintln!(
        "sweeping {} cases x {} seeds ({} workers, {} servers, {} iters)...",
        cases.len(),
        seeds.len(),
        workers,
        servers,
        iters
    );
    if flags.get("host-out").is_some() {
        let (report, host) = sweep_with_host(&cases, &seeds).unwrap_or_else(|e| die(&e));
        (report, Some(host))
    } else {
        (sweep(&cases, &seeds).unwrap_or_else(|e| die(&e)), None)
    }
}

/// Write and echo the `--host-out` sidecar, if one was collected.
fn write_host_out(flags: &Flags, host: &Option<HostReport>) {
    let (Some(path), Some(host)) = (flags.get("host-out"), host.as_ref()) else {
        return;
    };
    std::fs::write(path, host.to_json())
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    print!("{}", host.render());
    println!("host sidecar written to {path}");
}

/// With `--slo-out PATH`: re-run every case under the first seed with
/// request tracing on, print each case's per-op p999 headline, and write the
/// combined `ps2-slo-sweep-v1` document. Request tracing is non-yielding, so
/// these runs reproduce the sweep's virtual times exactly.
fn write_slo_out(flags: &Flags, workers: usize, servers: usize, iters: usize, seed: u64) {
    let Some(path) = flags.get("slo-out") else {
        return;
    };
    let cases = small_cases(workers, servers, iters);
    let (runs, doc) = slo_sweep(&cases, seed).unwrap_or_else(|e| die(&e));
    for r in &runs {
        let ops: Vec<String> = r
            .p999_by_op
            .iter()
            .map(|(op, ns)| format!("{op} p999 {}.{:03}us", ns / 1_000, ns % 1_000))
            .collect();
        println!(
            "slo {} seed {}: {}  burn alerts {}",
            r.name,
            r.seed,
            ops.join("  "),
            r.burn_alerts
        );
    }
    std::fs::write(path, doc).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    println!("slo sidecar written to {path}");
}

/// The first `--seeds` entry, or the default grid's first seed.
fn first_seed(flags: &Flags) -> u64 {
    match flags.get("seeds") {
        None => DEFAULT_SEEDS[0],
        Some(list) => list
            .split(',')
            .next()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| die("bad --seeds list")),
    }
}

fn gate(base: &BenchReport, cand: &BenchReport, tol_milli: u64) -> ! {
    let violations = compare(base, cand, tol_milli);
    if violations.is_empty() {
        println!("gate passed ({:.1}% tolerance)", tol_milli as f64 / 10.0);
        exit(0);
    }
    for v in &violations {
        eprintln!("REGRESSION {v}");
    }
    exit(1)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage();
    };
    match cmd.as_str() {
        "sweep" => {
            let flags = Flags::parse(rest);
            let (report, host) = run_sweep(&flags);
            print!("{}", report.render());
            if let Some(path) = flags.get("out") {
                std::fs::write(path, report.to_json())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("report written to {path}");
            }
            write_host_out(&flags, &host);
            write_slo_out(
                &flags,
                flags.get_num("workers", 4usize),
                flags.get_num("servers", 4usize),
                flags.get_num("iters", 4usize),
                first_seed(&flags),
            );
        }
        "diff" => {
            let Some((base_path, rest)) = rest.split_first() else {
                usage();
            };
            let Some((cand_path, rest)) = rest.split_first() else {
                usage();
            };
            let flags = Flags::parse(rest);
            let base = load(base_path);
            let cand = load(cand_path);
            let tol = tolerance_milli(&flags);
            let violations = compare(&base, &cand, tol);
            println!("baseline:  {base_path}\ncandidate: {cand_path}");
            print!("{}", cand.render());
            if violations.is_empty() {
                println!("within tolerance ({:.1}%)", tol as f64 / 10.0);
            } else {
                for v in &violations {
                    eprintln!("REGRESSION {v}");
                }
                if flags.get("gate").is_some() {
                    exit(1);
                }
            }
        }
        "modes" => {
            let flags = Flags::parse(rest);
            let workers = flags.get_num("workers", 4usize);
            let servers = flags.get_num("servers", 3usize);
            let iters = flags.get_num("iters", 6u32);
            let seeds: Vec<u64> = match flags.get("seeds") {
                None => MODE_SEEDS.to_vec(),
                Some(list) => list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad seed '{s}' in --seeds")))
                    })
                    .collect(),
            };
            if seeds.is_empty() {
                die("--seeds needs at least one seed");
            }
            let cases = mode_cases(workers, servers, iters);
            eprintln!(
                "sweeping {} mode cases x {} seeds ({} workers, {} servers, {} iters)...",
                cases.len(),
                seeds.len(),
                workers,
                servers,
                iters
            );
            let cand = mode_sweep(&cases, &seeds).unwrap_or_else(|e| die(&e));
            print!("{}", cand.render());
            if let Some(path) = flags.get("out") {
                std::fs::write(path, cand.to_json())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("report written to {path}");
            }
            if let Some(base_path) = flags.get("gate").filter(|p| !p.is_empty()) {
                let text = std::fs::read_to_string(base_path)
                    .unwrap_or_else(|e| die(&format!("cannot read {base_path}: {e}")));
                let base = ModeBenchReport::from_json(&text)
                    .unwrap_or_else(|e| die(&format!("{base_path}: {e}")));
                let tol = tolerance_milli(&flags);
                let violations = compare_modes(&base, &cand, tol);
                if violations.is_empty() {
                    println!("mode gate passed ({:.1}% tolerance)", tol as f64 / 10.0);
                } else {
                    for v in &violations {
                        eprintln!("REGRESSION {v}");
                    }
                    exit(1);
                }
            }
        }
        "serve" => {
            let flags = Flags::parse(rest);
            let seeds: Vec<u64> = match flags.get("seeds") {
                None => SERVE_SEEDS.to_vec(),
                Some(list) => list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad seed '{s}' in --seeds")))
                    })
                    .collect(),
            };
            if seeds.is_empty() {
                die("--seeds needs at least one seed");
            }
            let presets: Vec<String> = match flags.get("presets") {
                None => SERVE_PRESETS.iter().map(|p| p.to_string()).collect(),
                Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
            };
            let preset_refs: Vec<&str> = presets.iter().map(String::as_str).collect();
            eprintln!(
                "sweeping {} serve cases x {} seeds...",
                preset_refs.len(),
                seeds.len()
            );
            let cand = serve_sweep(&preset_refs, &seeds).unwrap_or_else(|e| die(&e));
            print!("{}", cand.render());
            if let Some(path) = flags.get("out") {
                std::fs::write(path, cand.to_json())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("report written to {path}");
            }
            if let Some(base_path) = flags.get("gate").filter(|p| !p.is_empty()) {
                let text = std::fs::read_to_string(base_path)
                    .unwrap_or_else(|e| die(&format!("cannot read {base_path}: {e}")));
                let base = ServeBenchReport::from_json(&text)
                    .unwrap_or_else(|e| die(&format!("{base_path}: {e}")));
                let tol = tolerance_milli(&flags);
                let violations = compare_serve(&base, &cand, tol);
                if violations.is_empty() {
                    println!("serve gate passed ({:.1}% tolerance)", tol as f64 / 10.0);
                } else {
                    for v in &violations {
                        eprintln!("REGRESSION {v}");
                    }
                    exit(1);
                }
            }
        }
        "--gate" => {
            let Some((base_path, rest)) = rest.split_first() else {
                usage();
            };
            let flags = Flags::parse(rest);
            let base = load(base_path);
            let (cand, host) = run_sweep(&flags);
            print!("{}", cand.render());
            if let Some(path) = flags.get("out") {
                std::fs::write(path, cand.to_json())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("fresh report written to {path}");
            }
            write_host_out(&flags, &host);
            write_slo_out(
                &flags,
                flags.get_num("workers", 4usize),
                flags.get_num("servers", 4usize),
                flags.get_num("iters", 4usize),
                first_seed(&flags),
            );
            gate(&base, &cand, tolerance_milli(&flags));
        }
        _ => usage(),
    }
}
