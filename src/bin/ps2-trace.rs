//! `ps2-trace` — offline analysis of traces written by
//! `ps2-run --trace-json`.
//!
//! ```text
//! ps2-trace <FILE>           print the critical-path / category breakdown
//! ps2-trace report <FILE>    same, explicit subcommand
//! ps2-trace diff <A> <B> [--tolerance FRAC]
//!                            per-category critical-path deltas (A is the
//!                            baseline; positive deltas mean B is slower).
//!                            With --tolerance, exit 1 when the makespan or
//!                            any category regressed by more than FRAC
//!                            (e.g. 0.05 = 5%) — the CI gate mode.
//! ps2-trace host <FILE>      print a hostprof sidecar (written by
//!                            `ps2-bench sweep --host-out` or
//!                            `ps2-run --host-prof-json`): wall seconds and
//!                            the per-scope cost table per case
//! ps2-trace host diff <BASE> <CAND> [--tolerance FRAC]
//!                            compare two hostprof sidecars; exit 1 when any
//!                            case's median wall time grew beyond FRAC
//!                            (default 3.0 = +300%) — the CI *speed* gate.
//!                            Wall time is host noise, hence the deliberately
//!                            loose default; this catches order-of-magnitude
//!                            slowdowns of the simulator itself, not jitter.
//! ps2-trace slo <FILE>       print the request-tail report from a ps2-slo-v1
//!                            sidecar (`ps2-run --slo-json`) or a trace file
//!                            embedding one: per-op p50/p99/p999/max, the K
//!                            slowest requests with their stage breakdowns,
//!                            the declared objectives, and any burn alerts
//! ps2-trace slo diff <BASE> <CAND> [--tolerance FRAC]
//!                            compare two SLO sidecars; exit 1 when any op's
//!                            p999 regressed beyond FRAC (default 0.25) or
//!                            the candidate has burn alerts the baseline
//!                            didn't — the CI tail-latency gate
//! ps2-trace whatif <FILE> [--experiment SPEC] [--json OUT]
//!                            replay the trace's retained causal DAG under
//!                            counterfactual edits. Without --experiment,
//!                            run the standard battery and print experiments
//!                            ranked by estimated makespan/p999 improvement;
//!                            with it, replay just SPEC (grammar:
//!                            CATEGORY[@FILTER]=FACTOR, comma-separated —
//!                            e.g. network=0.5 or compute@proc:server-3=0.8).
//!                            --json writes the ps2-whatif-v1 sidecar.
//! ps2-trace --help | -h      print this usage text
//! ```
//!
//! Trace input is a Chrome trace-event JSON file (loadable in
//! <https://ui.perfetto.dev>); the analysis lives in its `"ps2"` top-level
//! section, which Perfetto ignores. Host input is the `ps2-hostprof-v1`
//! sidecar schema. What-if input additionally needs the `"ps2"."dag"`
//! section (schema `ps2-dag-v1`).

use std::process::exit;

use ps2::bench::{compare_host, HostReport};
use ps2::simnet::{parse_spec, run_battery, standard_battery};
use ps2::tracefile::{whatif_input, SloSummary, TraceSummary};

const USAGE: &str = "usage: ps2-trace <FILE> | ps2-trace report <FILE> | \
     ps2-trace diff <A> <B> [--tolerance FRAC] | \
     ps2-trace host <FILE> | \
     ps2-trace host diff <BASE> <CAND> [--tolerance FRAC] | \
     ps2-trace slo <FILE> | \
     ps2-trace slo diff <BASE> <CAND> [--tolerance FRAC] | \
     ps2-trace whatif <FILE> [--experiment SPEC] [--json OUT] | \
     ps2-trace --help";

fn die(msg: &str) -> ! {
    eprintln!("ps2-trace: {msg}");
    exit(2)
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2)
}

/// Read `path` and run it through `parse`, dying with a uniform message on
/// either failure — one loader for every sidecar schema this tool reads.
fn load<T>(path: &str, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// The tail-latency gate: compare two SLO sidecars, exit nonzero on a p999
/// regression past the tolerance or a burn alert the baseline didn't have.
fn slo_diff(base_path: &str, cand_path: &str, tol_milli: u64) -> ! {
    let base = load(base_path, SloSummary::from_json);
    let cand = load(cand_path, SloSummary::from_json);
    println!("baseline:  {base_path}\ncandidate: {cand_path}");
    print!("{}", base.render_diff(&cand));
    let violations = base.regressions(&cand, tol_milli);
    if violations.is_empty() {
        println!(
            "slo gate passed ({:.1}% tolerance)",
            tol_milli as f64 / 10.0
        );
        exit(0);
    }
    for v in &violations {
        eprintln!("REGRESSION {v}");
    }
    exit(1)
}

fn parse_tolerance(frac: &str) -> u64 {
    let frac: f64 = frac
        .parse()
        .ok()
        .filter(|f: &f64| *f >= 0.0 && f.is_finite())
        .unwrap_or_else(|| die(&format!("bad --tolerance '{frac}' (want e.g. 0.05)")));
    (frac * 1000.0).round() as u64
}

/// The wall-clock soft gate: compare two hostprof sidecars and exit nonzero
/// if any case's median wall time regressed past the tolerance.
fn host_diff(base_path: &str, cand_path: &str, tol_milli: u64) -> ! {
    let base = load(base_path, HostReport::from_json);
    let cand = load(cand_path, HostReport::from_json);
    println!("baseline:  {base_path}\ncandidate: {cand_path}");
    print!("{}", cand.render());
    let violations = compare_host(&base, &cand, tol_milli);
    if violations.is_empty() {
        println!(
            "host gate passed ({:.1}% tolerance)",
            tol_milli as f64 / 10.0
        );
        exit(0);
    }
    for v in &violations {
        eprintln!("SLOWDOWN {v}");
    }
    exit(1)
}

/// `whatif <FILE> [--experiment SPEC] [--json OUT]`: rebuild the retained
/// DAG from the trace file and replay counterfactuals. `run_battery`
/// verifies the unmodified-replay fixed point against the recorded makespan
/// before reporting, so a stale or corrupted DAG section fails loudly.
fn whatif_cmd(args: &[String]) -> ! {
    let mut file: Option<&str> = None;
    let mut spec: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" => {
                spec = Some(
                    it.next()
                        .unwrap_or_else(|| die("--experiment needs a SPEC argument")),
                );
            }
            "--json" => {
                json_out = Some(
                    it.next()
                        .unwrap_or_else(|| die("--json needs an output path")),
                );
            }
            f if f.starts_with("--") => die(&format!("unknown whatif flag {f}")),
            f => {
                if file.replace(f).is_some() {
                    die("whatif takes exactly one trace file");
                }
            }
        }
    }
    let Some(file) = file else {
        die("whatif needs a trace file");
    };
    let (dag, tails) = load(file, whatif_input);
    let specs: Vec<(String, String)> = match spec {
        Some(s) => {
            // Validate eagerly for a spec-shaped error before replaying.
            parse_spec(&dag, s).unwrap_or_else(|e| die(&e));
            vec![("experiment".to_string(), s.to_string())]
        }
        None => standard_battery(&dag),
    };
    let report = run_battery(&dag, &tails, &specs).unwrap_or_else(|e| die(&format!("{file}: {e}")));
    print!("{}", report.render());
    if let Some(out) = json_out {
        std::fs::write(out, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        println!("what-if report written to {out}");
    }
    exit(0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [flag] if flag == "--help" || flag == "-h" => {
            println!("{USAGE}");
            exit(0);
        }
        [file]
            if file != "report"
                && file != "diff"
                && file != "host"
                && file != "slo"
                && file != "whatif" =>
        {
            print!("{}", load(file, TraceSummary::from_json).render());
        }
        [cmd, rest @ ..] if cmd == "whatif" => {
            whatif_cmd(rest);
        }
        [cmd, file] if cmd == "host" && file != "diff" => {
            print!("{}", load(file, HostReport::from_json).render());
        }
        [cmd, file] if cmd == "slo" && file != "diff" => {
            print!("{}", load(file, SloSummary::from_json).render());
        }
        [cmd, sub, a, b] if cmd == "slo" && sub == "diff" => {
            // Default tolerance 0.25 (+25%): the p999 of a small run rides
            // single-bucket granularity, so a tight default would flap.
            slo_diff(a, b, 250);
        }
        [cmd, sub, a, b, flag, frac] if cmd == "slo" && sub == "diff" && flag == "--tolerance" => {
            slo_diff(a, b, parse_tolerance(frac));
        }
        [cmd, sub, a, b] if cmd == "host" && sub == "diff" => {
            // Default tolerance 3.0 (+300%): loose on purpose — CI wall time
            // is noisy and only order-of-magnitude slowdowns should gate.
            host_diff(a, b, 3000);
        }
        [cmd, sub, a, b, flag, frac] if cmd == "host" && sub == "diff" && flag == "--tolerance" => {
            host_diff(a, b, parse_tolerance(frac));
        }
        [cmd, file] if cmd == "report" => {
            print!("{}", load(file, TraceSummary::from_json).render());
        }
        [cmd, a, b] if cmd == "diff" => {
            print!(
                "{}",
                load(a, TraceSummary::from_json).render_diff(&load(b, TraceSummary::from_json))
            );
        }
        [cmd, a, b, flag, frac] if cmd == "diff" && flag == "--tolerance" => {
            let tol_milli = parse_tolerance(frac);
            let base = load(a, TraceSummary::from_json);
            let cand = load(b, TraceSummary::from_json);
            print!("{}", base.render_diff(&cand));
            let violations = base.regressions(&cand, tol_milli);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("REGRESSION {v}");
                }
                exit(1);
            }
            println!("within tolerance ({:.1}%)", tol_milli as f64 / 10.0);
        }
        _ => usage(),
    }
}
