//! `ps2-trace` — offline analysis of traces written by
//! `ps2-run --trace-json`.
//!
//! ```text
//! ps2-trace <FILE>           print the critical-path / category breakdown
//! ps2-trace report <FILE>    same, explicit subcommand
//! ps2-trace diff <A> <B> [--tolerance FRAC]
//!                            per-category critical-path deltas (A is the
//!                            baseline; positive deltas mean B is slower).
//!                            With --tolerance, exit 1 when the makespan or
//!                            any category regressed by more than FRAC
//!                            (e.g. 0.05 = 5%) — the CI gate mode.
//! ```
//!
//! The input is a Chrome trace-event JSON file (loadable in
//! <https://ui.perfetto.dev>); the analysis lives in its `"ps2"` top-level
//! section, which Perfetto ignores.

use std::process::exit;

use ps2::tracefile::TraceSummary;

fn die(msg: &str) -> ! {
    eprintln!("ps2-trace: {msg}");
    exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage: ps2-trace <FILE> | ps2-trace report <FILE> | \
         ps2-trace diff <A> <B> [--tolerance FRAC]"
    );
    exit(2)
}

fn load(path: &str) -> TraceSummary {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    TraceSummary::from_json(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [file] if file != "report" && file != "diff" => {
            print!("{}", load(file).render());
        }
        [cmd, file] if cmd == "report" => {
            print!("{}", load(file).render());
        }
        [cmd, a, b] if cmd == "diff" => {
            print!("{}", load(a).render_diff(&load(b)));
        }
        [cmd, a, b, flag, frac] if cmd == "diff" && flag == "--tolerance" => {
            let frac: f64 = frac
                .parse()
                .ok()
                .filter(|f: &f64| *f >= 0.0 && f.is_finite())
                .unwrap_or_else(|| die(&format!("bad --tolerance '{frac}' (want e.g. 0.05)")));
            let base = load(a);
            let cand = load(b);
            print!("{}", base.render_diff(&cand));
            let violations = base.regressions(&cand, (frac * 1000.0).round() as u64);
            if !violations.is_empty() {
                for v in &violations {
                    eprintln!("REGRESSION {v}");
                }
                exit(1);
            }
            println!("within tolerance ({:.1}%)", frac * 100.0);
        }
        _ => usage(),
    }
}
