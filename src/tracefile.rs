//! Offline trace-file analysis for `ps2-trace`.
//!
//! A trace written by `ps2-run --trace-json` is a Chrome trace-event JSON
//! document with an extra top-level `"ps2"` section holding the
//! critical-path analysis (Perfetto ignores unknown top-level keys, so the
//! same file serves both the UI and this module). This module re-reads that
//! section without the original [`SimReport`](ps2_simnet::SimReport): a
//! minimal recursive-descent JSON parser (the workspace is dependency-free
//! by design) plus a [`TraceSummary`] extractor and text renderers for the
//! `report` and `diff` subcommands.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects keep source order so that rendering a
/// summary walks categories in the writer's (deterministic) order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && n.abs() <= 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text. Deterministic: objects keep
    /// their stored order; integral numbers render without a fraction, the
    /// rest use Rust's shortest round-tripping `f64` form. Together with
    /// [`parse_json`] this gives `parse(render(v)) == v` for any value this
    /// module can produce (see the round-trip property tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => render_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_json_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn render_json_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

/// Per-process row from the trace's analysis section.
#[derive(Debug, Clone)]
pub struct ProcRow {
    pub name: String,
    pub daemon: bool,
    pub finished_ns: u64,
    pub busy_ns: u64,
    pub slack_ns: u64,
    pub critical_ns: u64,
}

/// The `"ps2"` analysis section of a trace file, plus the event count from
/// the `traceEvents` array.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    pub makespan_ns: u64,
    /// Critical-path attribution in writer order (compute, network, queue,
    /// idle).
    pub categories: Vec<(String, u64)>,
    pub compute_by_label: Vec<(String, u64)>,
    pub segments: u64,
    pub procs: Vec<ProcRow>,
    pub drops_by_tag: Vec<(String, u64)>,
    pub trace_events: usize,
}

impl TraceSummary {
    /// Parse a trace file's text. Fails with a description when the document
    /// is not JSON or the `"ps2"` section is missing/malformed.
    pub fn from_json(text: &str) -> Result<TraceSummary, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        let trace_events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .map(<[JsonValue]>::len)
            .ok_or("no traceEvents array — not a ps2 trace file")?;
        let ps2 = doc
            .get("ps2")
            .ok_or("no \"ps2\" analysis section — was this written by ps2-run --trace-json?")?;
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("ps2 section: missing/invalid \"{key}\""))
        };
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            match ps2.get(key) {
                Some(JsonValue::Obj(kv)) => kv
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("ps2 section: \"{key}\".\"{k}\" not a count"))
                    })
                    .collect(),
                _ => Err(format!("ps2 section: missing/invalid \"{key}\"")),
            }
        };
        let procs = ps2
            .get("procs")
            .and_then(JsonValue::as_arr)
            .ok_or("ps2 section: missing \"procs\"")?
            .iter()
            .map(|p| {
                Ok(ProcRow {
                    name: p
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("proc row: missing \"name\"")?
                        .to_string(),
                    daemon: p
                        .get("daemon")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                    finished_ns: u64_field(p, "finished_ns")?,
                    busy_ns: u64_field(p, "busy_ns")?,
                    slack_ns: u64_field(p, "slack_ns")?,
                    critical_ns: u64_field(p, "critical_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TraceSummary {
            makespan_ns: u64_field(ps2, "makespan_ns")?,
            categories: pairs("categories")?,
            compute_by_label: pairs("compute_by_label")?,
            segments: u64_field(ps2, "segments")?,
            procs,
            drops_by_tag: pairs("drops_by_tag")?,
            trace_events,
        })
    }

    /// Deterministic text report, mirroring
    /// [`CausalAnalysis::render`](ps2_simnet::CausalAnalysis::render) but
    /// built from the file alone.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let secs = |ns: u64| ns as f64 / 1e9;
        let pct = |ns: u64| {
            if self.makespan_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.makespan_ns as f64
            }
        };
        out.push_str(&format!(
            "trace: {} events, {} procs, makespan {:.6}s\n",
            self.trace_events,
            self.procs.len(),
            secs(self.makespan_ns)
        ));
        out.push_str(&format!(
            "critical path: {} segments, categories:\n",
            self.segments
        ));
        for (name, ns) in &self.categories {
            out.push_str(&format!(
                "  {name:<10} {:>12.6}s {:>5.1}%\n",
                secs(*ns),
                pct(*ns)
            ));
        }
        if !self.compute_by_label.is_empty() {
            out.push_str("critical-path compute by op:\n");
            let mut rows = self.compute_by_label.clone();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (label, ns) in rows {
                out.push_str(&format!(
                    "  {label:<24} {:>12.6}s {:>5.1}%\n",
                    secs(ns),
                    pct(ns)
                ));
            }
        }
        if !self.drops_by_tag.is_empty() {
            out.push_str("dropped messages by tag:\n");
            for (tag, n) in &self.drops_by_tag {
                out.push_str(&format!("  tag {tag:<6} {n:>8}\n"));
            }
        }
        out.push_str("top processes by critical-path time:\n");
        let mut procs: Vec<&ProcRow> = self.procs.iter().collect();
        procs.sort_by(|a, b| {
            b.critical_ns
                .cmp(&a.critical_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        for p in procs.iter().take(10) {
            out.push_str(&format!(
                "  {:<20} critical {:>10.6}s  busy {:>10.6}s  slack {:>10.6}s\n",
                p.name,
                secs(p.critical_ns),
                secs(p.busy_ns),
                secs(p.slack_ns)
            ));
        }
        out
    }

    /// Regression check for CI gates: a violation is a relative increase
    /// beyond `tolerance_milli` parts-per-thousand (50 = 5%) in the makespan
    /// or any critical-path category, with `self` as the baseline. Returns
    /// one human-readable line per violation; empty means the candidate is
    /// within tolerance.
    pub fn regressions(&self, other: &TraceSummary, tolerance_milli: u64) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, a: u64, b: u64| {
            // Integer arithmetic keeps the gate deterministic; a zero
            // baseline tolerates nothing.
            let limit = a + a / 1000 * tolerance_milli + a % 1000 * tolerance_milli / 1000;
            if b > limit {
                let pct = if a == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (b as f64 - a as f64) / a as f64
                };
                out.push(format!(
                    "{name}: {a} ns -> {b} ns (+{pct:.1}%, tolerance {:.1}%)",
                    tolerance_milli as f64 / 10.0
                ));
            }
        };
        check("makespan", self.makespan_ns, other.makespan_ns);
        let cand: BTreeMap<&str, u64> = other
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        for (name, a) in &self.categories {
            let b = cand.get(name.as_str()).copied().unwrap_or(0);
            check(&format!("category {name}"), *a, b);
        }
        out
    }

    /// Compare two traces: per-category critical-path deltas, makespan delta
    /// and per-op compute deltas (`self` is the baseline, `other` the
    /// candidate; positive deltas mean the candidate is slower).
    pub fn render_diff(&self, other: &TraceSummary) -> String {
        let mut out = String::new();
        let dsec = |a: u64, b: u64| (b as f64 - a as f64) / 1e9;
        out.push_str(&format!(
            "makespan  {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
            self.makespan_ns as f64 / 1e9,
            other.makespan_ns as f64 / 1e9,
            dsec(self.makespan_ns, other.makespan_ns)
        ));
        out.push_str("critical-path categories:\n");
        let base: BTreeMap<&str, u64> = self
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let cand: BTreeMap<&str, u64> = other
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        // Walk the baseline's writer order, then anything new in the
        // candidate — keeps compute/network/queue/idle in the familiar order.
        let mut names: Vec<&str> = self.categories.iter().map(|(k, _)| k.as_str()).collect();
        for (k, _) in &other.categories {
            if !base.contains_key(k.as_str()) {
                names.push(k);
            }
        }
        for name in names {
            let a = base.get(name).copied().unwrap_or(0);
            let b = cand.get(name).copied().unwrap_or(0);
            out.push_str(&format!(
                "  {name:<10} {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
                a as f64 / 1e9,
                b as f64 / 1e9,
                dsec(a, b)
            ));
        }
        let base_ops: BTreeMap<&str, u64> = self
            .compute_by_label
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let cand_ops: BTreeMap<&str, u64> = other
            .compute_by_label
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let mut ops: Vec<&str> = base_ops.keys().chain(cand_ops.keys()).copied().collect();
        ops.sort_unstable();
        ops.dedup();
        if !ops.is_empty() {
            out.push_str("critical-path compute by op:\n");
            for op in ops {
                let a = base_ops.get(op).copied().unwrap_or(0);
                let b = cand_ops.get(op).copied().unwrap_or(0);
                if a == 0 && b == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {op:<24} {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
                    a as f64 / 1e9,
                    b as f64 / 1e9,
                    dsec(a, b)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null, "x\nA"], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], JsonValue::Num(-2.5));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], JsonValue::Null);
        assert_eq!(arr[4].as_str(), Some("x\nA"));
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn summary_requires_ps2_section() {
        let err = TraceSummary::from_json(r#"{"traceEvents": []}"#).unwrap_err();
        assert!(err.contains("ps2"), "unexpected error: {err}");
    }
}
