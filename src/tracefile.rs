//! Offline trace-file analysis for `ps2-trace`.
//!
//! A trace written by `ps2-run --trace-json` is a Chrome trace-event JSON
//! document with an extra top-level `"ps2"` section holding the
//! critical-path analysis (Perfetto ignores unknown top-level keys, so the
//! same file serves both the UI and this module). This module re-reads that
//! section without the original [`SimReport`](ps2_simnet::SimReport): a
//! minimal recursive-descent JSON parser (the workspace is dependency-free
//! by design) plus a [`TraceSummary`] extractor and text renderers for the
//! `report` and `diff` subcommands.

use std::collections::BTreeMap;
use std::fmt;

use ps2_simnet::{CausalDag, DagEvent, DagProc, OpTails};

/// A parsed JSON value. Objects keep source order so that rendering a
/// summary walks categories in the writer's (deterministic) order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && n.abs() <= 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text. Deterministic: objects keep
    /// their stored order; integral numbers render without a fraction, the
    /// rest use Rust's shortest round-tripping `f64` form. Together with
    /// [`parse_json`] this gives `parse(render(v)) == v` for any value this
    /// module can produce (see the round-trip property tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => render_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_json_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn render_json_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

/// Per-process row from the trace's analysis section.
#[derive(Debug, Clone)]
pub struct ProcRow {
    pub name: String,
    pub daemon: bool,
    pub finished_ns: u64,
    pub busy_ns: u64,
    pub slack_ns: u64,
    pub critical_ns: u64,
}

/// The `"ps2"` analysis section of a trace file, plus the event count from
/// the `traceEvents` array.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    pub makespan_ns: u64,
    /// Critical-path attribution in writer order (compute, network, queue,
    /// idle).
    pub categories: Vec<(String, u64)>,
    pub compute_by_label: Vec<(String, u64)>,
    pub segments: u64,
    pub procs: Vec<ProcRow>,
    pub drops_by_tag: Vec<(String, u64)>,
    pub trace_events: usize,
}

impl TraceSummary {
    /// Parse a trace file's text. Fails with a description when the document
    /// is not JSON or the `"ps2"` section is missing/malformed.
    pub fn from_json(text: &str) -> Result<TraceSummary, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        let trace_events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .map(<[JsonValue]>::len)
            .ok_or("no traceEvents array — not a ps2 trace file")?;
        let ps2 = doc
            .get("ps2")
            .ok_or("no \"ps2\" analysis section — was this written by ps2-run --trace-json?")?;
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("ps2 section: missing/invalid \"{key}\""))
        };
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            match ps2.get(key) {
                Some(JsonValue::Obj(kv)) => kv
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("ps2 section: \"{key}\".\"{k}\" not a count"))
                    })
                    .collect(),
                _ => Err(format!("ps2 section: missing/invalid \"{key}\"")),
            }
        };
        let procs = ps2
            .get("procs")
            .and_then(JsonValue::as_arr)
            .ok_or("ps2 section: missing \"procs\"")?
            .iter()
            .map(|p| {
                Ok(ProcRow {
                    name: p
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("proc row: missing \"name\"")?
                        .to_string(),
                    daemon: p
                        .get("daemon")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                    finished_ns: u64_field(p, "finished_ns")?,
                    busy_ns: u64_field(p, "busy_ns")?,
                    slack_ns: u64_field(p, "slack_ns")?,
                    critical_ns: u64_field(p, "critical_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TraceSummary {
            makespan_ns: u64_field(ps2, "makespan_ns")?,
            categories: pairs("categories")?,
            compute_by_label: pairs("compute_by_label")?,
            segments: u64_field(ps2, "segments")?,
            procs,
            drops_by_tag: pairs("drops_by_tag")?,
            trace_events,
        })
    }

    /// Deterministic text report, mirroring
    /// [`CausalAnalysis::render`](ps2_simnet::CausalAnalysis::render) but
    /// built from the file alone.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let secs = |ns: u64| ns as f64 / 1e9;
        let pct = |ns: u64| {
            if self.makespan_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.makespan_ns as f64
            }
        };
        out.push_str(&format!(
            "trace: {} events, {} procs, makespan {:.6}s\n",
            self.trace_events,
            self.procs.len(),
            secs(self.makespan_ns)
        ));
        out.push_str(&format!(
            "critical path: {} segments, categories:\n",
            self.segments
        ));
        for (name, ns) in &self.categories {
            out.push_str(&format!(
                "  {name:<10} {:>12.6}s {:>5.1}%\n",
                secs(*ns),
                pct(*ns)
            ));
        }
        if !self.compute_by_label.is_empty() {
            out.push_str("critical-path compute by op:\n");
            let mut rows = self.compute_by_label.clone();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (label, ns) in rows {
                out.push_str(&format!(
                    "  {label:<24} {:>12.6}s {:>5.1}%\n",
                    secs(ns),
                    pct(ns)
                ));
            }
        }
        if !self.drops_by_tag.is_empty() {
            out.push_str("dropped messages by tag:\n");
            for (tag, n) in &self.drops_by_tag {
                out.push_str(&format!("  tag {tag:<6} {n:>8}\n"));
            }
        }
        out.push_str("top processes by critical-path time:\n");
        let mut procs: Vec<&ProcRow> = self.procs.iter().collect();
        procs.sort_by(|a, b| {
            b.critical_ns
                .cmp(&a.critical_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        for p in procs.iter().take(10) {
            out.push_str(&format!(
                "  {:<20} critical {:>10.6}s  busy {:>10.6}s  slack {:>10.6}s\n",
                p.name,
                secs(p.critical_ns),
                secs(p.busy_ns),
                secs(p.slack_ns)
            ));
        }
        out
    }

    /// Regression check for CI gates: a violation is a relative increase
    /// beyond `tolerance_milli` parts-per-thousand (50 = 5%) in the makespan
    /// or any critical-path category, with `self` as the baseline. Returns
    /// one human-readable line per violation; empty means the candidate is
    /// within tolerance.
    pub fn regressions(&self, other: &TraceSummary, tolerance_milli: u64) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, a: u64, b: u64| {
            // Integer arithmetic keeps the gate deterministic; a zero
            // baseline tolerates nothing.
            let limit = a + a / 1000 * tolerance_milli + a % 1000 * tolerance_milli / 1000;
            if b > limit {
                let pct = if a == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (b as f64 - a as f64) / a as f64
                };
                out.push(format!(
                    "{name}: {a} ns -> {b} ns (+{pct:.1}%, tolerance {:.1}%)",
                    tolerance_milli as f64 / 10.0
                ));
            }
        };
        check("makespan", self.makespan_ns, other.makespan_ns);
        let cand: BTreeMap<&str, u64> = other
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        for (name, a) in &self.categories {
            let b = cand.get(name.as_str()).copied().unwrap_or(0);
            check(&format!("category {name}"), *a, b);
        }
        out
    }

    /// Compare two traces: per-category critical-path deltas, makespan delta
    /// and per-op compute deltas (`self` is the baseline, `other` the
    /// candidate; positive deltas mean the candidate is slower).
    pub fn render_diff(&self, other: &TraceSummary) -> String {
        let mut out = String::new();
        let dsec = |a: u64, b: u64| (b as f64 - a as f64) / 1e9;
        out.push_str(&format!(
            "makespan  {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
            self.makespan_ns as f64 / 1e9,
            other.makespan_ns as f64 / 1e9,
            dsec(self.makespan_ns, other.makespan_ns)
        ));
        out.push_str("critical-path categories:\n");
        let base: BTreeMap<&str, u64> = self
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let cand: BTreeMap<&str, u64> = other
            .categories
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        // Walk the baseline's writer order, then anything new in the
        // candidate — keeps compute/network/queue/idle in the familiar order.
        let mut names: Vec<&str> = self.categories.iter().map(|(k, _)| k.as_str()).collect();
        for (k, _) in &other.categories {
            if !base.contains_key(k.as_str()) {
                names.push(k);
            }
        }
        for name in names {
            let a = base.get(name).copied().unwrap_or(0);
            let b = cand.get(name).copied().unwrap_or(0);
            out.push_str(&format!(
                "  {name:<10} {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
                a as f64 / 1e9,
                b as f64 / 1e9,
                dsec(a, b)
            ));
        }
        let base_ops: BTreeMap<&str, u64> = self
            .compute_by_label
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let cand_ops: BTreeMap<&str, u64> = other
            .compute_by_label
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let mut ops: Vec<&str> = base_ops.keys().chain(cand_ops.keys()).copied().collect();
        ops.sort_unstable();
        ops.dedup();
        if !ops.is_empty() {
            out.push_str("critical-path compute by op:\n");
            for op in ops {
                let a = base_ops.get(op).copied().unwrap_or(0);
                let b = cand_ops.get(op).copied().unwrap_or(0);
                if a == 0 && b == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {op:<24} {:>12.6}s -> {:>12.6}s   delta {:+.6}s\n",
                    a as f64 / 1e9,
                    b as f64 / 1e9,
                    dsec(a, b)
                ));
            }
        }
        out
    }
}

// ---- the SLO / request-trace sidecar ----------------------------------------

/// One exemplar request from the sidecar: a run-unique id plus its full
/// stage breakdown in writer order.
#[derive(Debug, Clone)]
pub struct SloExemplar {
    pub id: u64,
    pub issued_at_ns: u64,
    pub total_ns: u64,
    pub attempts: u64,
    /// `(stage name, ns)` pairs, e.g. `("server_queue_ns", 1200)`.
    pub stages: Vec<(String, u64)>,
}

/// Per-op request aggregate from the sidecar.
#[derive(Debug, Clone)]
pub struct SloOpRow {
    pub op: String,
    pub completed: u64,
    pub abandoned: u64,
    pub attempts: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    /// The K slowest requests, slowest first.
    pub exemplars: Vec<SloExemplar>,
}

/// A burn alert from the sidecar.
#[derive(Debug, Clone)]
pub struct SloAlertRow {
    pub at_ns: u64,
    pub window: u64,
    pub subject: String,
    pub value_milli: i64,
}

/// The `ps2-slo-v1` document written by `ps2-run --slo-json` — either as a
/// standalone sidecar or embedded in a trace file under `"ps2"."slo"`.
#[derive(Debug, Clone)]
pub struct SloSummary {
    pub ops: Vec<SloOpRow>,
    /// Declared objectives, rendered one line each (name, description).
    pub objectives: Vec<(String, String)>,
    pub alerts: Vec<SloAlertRow>,
}

impl SloSummary {
    /// Parse either form: a standalone `ps2-slo-v1` sidecar, or a full
    /// trace file whose `"ps2"` section embeds one.
    pub fn from_json(text: &str) -> Result<SloSummary, String> {
        let doc = parse_json(text).map_err(|e| e.to_string())?;
        let slo = if doc.get("schema").and_then(JsonValue::as_str) == Some("ps2-slo-v1") {
            &doc
        } else {
            doc.get("ps2").and_then(|p| p.get("slo")).ok_or(
                "no \"ps2\".\"slo\" section and not a ps2-slo-v1 sidecar — \
                 was this written by ps2-run --slo-json (or --trace-json with SLOs)?",
            )?
        };
        let u64_field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("slo section: missing/invalid \"{key}\""))
        };
        let str_field = |obj: &JsonValue, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("slo section: missing/invalid \"{key}\""))
        };
        let mut ops = Vec::new();
        for o in slo
            .get("ops")
            .and_then(JsonValue::as_arr)
            .ok_or("slo section: missing \"ops\"")?
        {
            let hist = o.get("hist").ok_or("slo op: missing \"hist\"")?;
            let mut exemplars = Vec::new();
            for e in o
                .get("exemplars")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
            {
                let stages = match e.get("stages") {
                    Some(JsonValue::Obj(kv)) => kv
                        .iter()
                        .map(|(k, v)| {
                            v.as_u64()
                                .map(|n| (k.clone(), n))
                                .ok_or_else(|| format!("exemplar stage \"{k}\" not a count"))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("exemplar: missing \"stages\"".to_string()),
                };
                exemplars.push(SloExemplar {
                    id: u64_field(e, "id")?,
                    issued_at_ns: u64_field(e, "issued_at_ns")?,
                    total_ns: u64_field(e, "total_ns")?,
                    attempts: u64_field(e, "attempts")?,
                    stages,
                });
            }
            ops.push(SloOpRow {
                op: str_field(o, "op")?,
                completed: u64_field(o, "completed")?,
                abandoned: u64_field(o, "abandoned")?,
                attempts: u64_field(o, "attempts")?,
                p50_ns: u64_field(hist, "p50_ns")?,
                p99_ns: u64_field(hist, "p99_ns")?,
                p999_ns: u64_field(hist, "p999_ns")?,
                max_ns: u64_field(hist, "max_ns")?,
                exemplars,
            });
        }
        let mut objectives = Vec::new();
        for o in slo
            .get("objectives")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
        {
            let name = str_field(o, "name")?;
            let desc = match o.get("kind").and_then(JsonValue::as_str) {
                Some("latency") => format!(
                    "latency({}) p999 < {} ns, budget {}/1000",
                    o.get("hist").and_then(JsonValue::as_str).unwrap_or("?"),
                    u64_field(o, "target_ns")?,
                    u64_field(o, "budget_milli")?,
                ),
                Some("error_rate") => format!(
                    "errors({}) / total({}) < {}/1000",
                    o.get("errors").and_then(JsonValue::as_str).unwrap_or("?"),
                    o.get("total").and_then(JsonValue::as_str).unwrap_or("?"),
                    u64_field(o, "budget_milli")?,
                ),
                other => format!("unknown objective kind {other:?}"),
            };
            objectives.push((name, desc));
        }
        let mut alerts = Vec::new();
        for a in slo.get("alerts").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            alerts.push(SloAlertRow {
                at_ns: u64_field(a, "at_ns")?,
                window: u64_field(a, "window")?,
                subject: str_field(a, "subject")?,
                value_milli: a
                    .get("value_milli")
                    .and_then(JsonValue::as_i64)
                    .ok_or("alert: missing \"value_milli\"")?,
            });
        }
        Ok(SloSummary {
            ops,
            objectives,
            alerts,
        })
    }

    /// Deterministic text report: the per-op tail-latency table, each op's
    /// exemplar requests with their stage breakdowns, the declared
    /// objectives, and any burn alerts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let us = |ns: u64| format!("{}.{:03}us", ns / 1_000, ns % 1_000);
        out.push_str(&format!(
            "{:<14} {:>9} {:>6} {:>7} {:>13} {:>13} {:>13} {:>13}\n",
            "op", "completed", "aband", "retries", "p50", "p99", "p999", "max"
        ));
        for o in &self.ops {
            out.push_str(&format!(
                "{:<14} {:>9} {:>6} {:>7} {:>13} {:>13} {:>13} {:>13}\n",
                o.op,
                o.completed,
                o.abandoned,
                o.attempts.saturating_sub(o.completed),
                us(o.p50_ns),
                us(o.p99_ns),
                us(o.p999_ns),
                us(o.max_ns),
            ));
        }
        for o in &self.ops {
            if o.exemplars.is_empty() {
                continue;
            }
            out.push_str(&format!("slowest {} requests:\n", o.op));
            for e in &o.exemplars {
                let stages: Vec<String> = e
                    .stages
                    .iter()
                    .filter(|(_, ns)| *ns > 0)
                    .map(|(k, ns)| format!("{} {}", k.trim_end_matches("_ns"), us(*ns)))
                    .collect();
                out.push_str(&format!(
                    "  #{:<6} total {:>13}  attempts {}  issued at {}  [{}]\n",
                    e.id,
                    us(e.total_ns),
                    e.attempts,
                    us(e.issued_at_ns),
                    stages.join(", "),
                ));
            }
        }
        if !self.objectives.is_empty() {
            out.push_str("objectives:\n");
            for (name, desc) in &self.objectives {
                out.push_str(&format!("  {name:<16} {desc}\n"));
            }
        }
        if self.alerts.is_empty() {
            out.push_str("burn alerts: none\n");
        } else {
            out.push_str("burn alerts:\n");
            for a in &self.alerts {
                out.push_str(&format!(
                    "  {} at {}  (window {}, {}.{:03}x budget)\n",
                    a.subject,
                    us(a.at_ns),
                    a.window,
                    a.value_milli / 1000,
                    (a.value_milli % 1000).unsigned_abs(),
                ));
            }
        }
        out
    }

    /// Regression gate on the request tail: a violation is a relative
    /// increase beyond `tolerance_milli` parts-per-thousand in any op's
    /// p999, a new burn alert the baseline didn't have, or an op losing all
    /// completions. `self` is the baseline.
    pub fn regressions(&self, other: &SloSummary, tolerance_milli: u64) -> Vec<String> {
        let mut out = Vec::new();
        let cand: BTreeMap<&str, &SloOpRow> =
            other.ops.iter().map(|o| (o.op.as_str(), o)).collect();
        for base in &self.ops {
            let Some(c) = cand.get(base.op.as_str()) else {
                if base.completed > 0 {
                    out.push(format!("op {}: vanished from candidate", base.op));
                }
                continue;
            };
            let a = base.p999_ns;
            let b = c.p999_ns;
            let limit = a + a / 1000 * tolerance_milli + a % 1000 * tolerance_milli / 1000;
            if b > limit {
                let pct = if a == 0 {
                    f64::INFINITY
                } else {
                    100.0 * (b as f64 - a as f64) / a as f64
                };
                out.push(format!(
                    "op {} p999: {a} ns -> {b} ns (+{pct:.1}%, tolerance {:.1}%)",
                    base.op,
                    tolerance_milli as f64 / 10.0
                ));
            }
        }
        if self.alerts.is_empty() && !other.alerts.is_empty() {
            for a in &other.alerts {
                out.push(format!(
                    "new burn alert: {} at {} ns (window {})",
                    a.subject, a.at_ns, a.window
                ));
            }
        }
        out
    }

    /// Compare two sidecars op by op (`self` is the baseline; positive
    /// deltas mean the candidate's tail is slower).
    pub fn render_diff(&self, other: &SloSummary) -> String {
        let mut out = String::new();
        let cand: BTreeMap<&str, &SloOpRow> =
            other.ops.iter().map(|o| (o.op.as_str(), o)).collect();
        let base: BTreeMap<&str, &SloOpRow> = self.ops.iter().map(|o| (o.op.as_str(), o)).collect();
        let mut names: Vec<&str> = base.keys().chain(cand.keys()).copied().collect();
        names.sort_unstable();
        names.dedup();
        out.push_str("per-op p999:\n");
        for name in names {
            let a = base.get(name).map(|o| o.p999_ns).unwrap_or(0);
            let b = cand.get(name).map(|o| o.p999_ns).unwrap_or(0);
            out.push_str(&format!(
                "  {name:<14} {:>12} ns -> {:>12} ns   delta {:+} ns\n",
                a,
                b,
                b as i64 - a as i64
            ));
        }
        out.push_str(&format!(
            "burn alerts: {} -> {}\n",
            self.alerts.len(),
            other.alerts.len()
        ));
        out
    }
}

// ---- the retained causal DAG (what-if input) --------------------------------

/// Rebuild the retained causal DAG and per-op tail mixes from a trace file —
/// the input `ps2-trace whatif` replays. The DAG comes from the
/// `"ps2"."dag"` section (schema `ps2-dag-v1`, integer-only, so the f64
/// JSON parser loses nothing); the tails come from the embedded
/// `"ps2"."slo"` section when present (an SLO-less trace still supports
/// makespan experiments, just without tail estimates).
pub fn whatif_input(text: &str) -> Result<(CausalDag, Vec<OpTails>), String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let dag = doc.get("ps2").and_then(|p| p.get("dag")).ok_or(
        "no \"ps2\".\"dag\" section — was this trace written by a ps2-run \
         that embeds the causal DAG (--trace-json)?",
    )?;
    match dag.get("schema").and_then(JsonValue::as_str) {
        Some("ps2-dag-v1") => {}
        other => return Err(format!("\"ps2\".\"dag\": unsupported schema {other:?}")),
    }
    let makespan_ns = dag
        .get("makespan_ns")
        .and_then(JsonValue::as_u64)
        .ok_or("\"ps2\".\"dag\": missing \"makespan_ns\"")?;
    let labels = dag
        .get("labels")
        .and_then(JsonValue::as_arr)
        .ok_or("\"ps2\".\"dag\": missing \"labels\"")?
        .iter()
        .map(|l| {
            l.as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"ps2\".\"dag\": non-string label".to_string())
        })
        .collect::<Result<Vec<String>, String>>()?;
    let mut procs = Vec::new();
    for p in dag
        .get("procs")
        .and_then(JsonValue::as_arr)
        .ok_or("\"ps2\".\"dag\": missing \"procs\"")?
    {
        let name = p
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("dag proc: missing \"name\"")?
            .to_string();
        let field = |key: &str| -> Result<u64, String> {
            p.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("dag proc {name:?}: missing/invalid \"{key}\""))
        };
        let daemon = p
            .get("daemon")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("dag proc {name:?}: missing \"daemon\""))?;
        let finished_ns = field("finished_ns")?;
        let busy_ns = field("busy_ns")?;
        let mut events = Vec::new();
        for row in p
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("dag proc {name:?}: missing \"events\""))?
        {
            let row = row
                .as_arr()
                .ok_or_else(|| format!("dag proc {name:?}: event is not an array"))?;
            let n = |i: usize| -> Result<u64, String> {
                row.get(i)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("dag proc {name:?}: event field {i} missing/invalid"))
            };
            let ev = match n(0)? {
                0 => DagEvent::Compute {
                    at: n(1)?,
                    dt: n(2)?,
                    label: match row.get(3).and_then(JsonValue::as_i64) {
                        Some(l) if l >= 0 => Some(l as u32),
                        Some(_) => None,
                        None => {
                            return Err(format!(
                                "dag proc {name:?}: compute event missing label field"
                            ))
                        }
                    },
                },
                1 => DagEvent::Send {
                    at: n(1)?,
                    dst: n(2)? as usize,
                    arrival: n(3)?,
                    seq: n(4)?,
                    ideal_ns: n(5)?,
                },
                2 => DagEvent::Recv {
                    at: n(1)?,
                    src: n(2)? as usize,
                    seq: n(3)?,
                },
                3 => DagEvent::Point { at: n(1)? },
                d => return Err(format!("dag proc {name:?}: unknown event kind {d}")),
            };
            events.push(ev);
        }
        procs.push(DagProc {
            name,
            daemon,
            finished_ns,
            busy_ns,
            events,
        });
    }

    // Tails are optional: reuse the SLO reader and fold exemplar stages into
    // the replay categories.
    let tails = match SloSummary::from_json(text) {
        Ok(slo) => slo
            .ops
            .iter()
            .map(|o| {
                let stage = |e: &SloExemplar, key: &str| -> u64 {
                    e.stages
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|&(_, n)| n)
                        .unwrap_or(0)
                };
                let (mut c, mut n, mut q) = (0u64, 0u64, 0u64);
                for e in &o.exemplars {
                    c += stage(e, "client_issue_ns")
                        + stage(e, "service_ns")
                        + stage(e, "client_recv_ns")
                        + stage(e, "cache_fill_ns");
                    n += stage(e, "net_request_ns") + stage(e, "net_reply_ns");
                    q += stage(e, "server_queue_ns");
                }
                OpTails {
                    op: o.op.clone(),
                    p99_ns: o.p99_ns,
                    p999_ns: o.p999_ns,
                    compute_ns: c,
                    network_ns: n,
                    queue_ns: q,
                }
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    Ok((CausalDag::new(makespan_ns, labels, procs), tails))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null, "x\nA"], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], JsonValue::Num(-2.5));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], JsonValue::Null);
        assert_eq!(arr[4].as_str(), Some("x\nA"));
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn summary_requires_ps2_section() {
        let err = TraceSummary::from_json(r#"{"traceEvents": []}"#).unwrap_err();
        assert!(err.contains("ps2"), "unexpected error: {err}");
    }

    const SLO_DOC: &str = r#"{
      "schema": "ps2-slo-v1",
      "ops": [
        {"op": "pull", "completed": 10, "abandoned": 1, "attempts": 12,
         "hist": {"count": 10, "sum_ns": 1000, "min_ns": 50, "max_ns": 400,
                  "p50_ns": 100, "p99_ns": 300, "p999_ns": 400, "buckets": [[10, 10]]},
         "exemplars": [
           {"id": 7, "issued_at_ns": 5, "total_ns": 400, "attempts": 2,
            "stages": {"client_issue_ns": 10, "net_request_ns": 90,
                       "server_queue_ns": 200, "service_ns": 50,
                       "net_reply_ns": 40, "client_recv_ns": 10, "cache_fill_ns": 0}}
         ]}
      ],
      "objectives": [
        {"name": "ps.pull.p999", "kind": "latency", "hist": "ps.client.op.pull.latency",
         "target_ns": 1000, "budget_milli": 1}
      ],
      "alerts": [
        {"kind": "watchdog.slo_burn", "at_ns": 2000000, "window": 1, "proc": -1,
         "subject": "ps.pull.p999", "value_milli": 25000}
      ]
    }"#;

    #[test]
    fn slo_summary_reads_sidecar_and_embedded_forms() {
        let s = SloSummary::from_json(SLO_DOC).unwrap();
        assert_eq!(s.ops.len(), 1);
        assert_eq!(s.ops[0].p999_ns, 400);
        assert_eq!(s.ops[0].exemplars.len(), 1);
        let e = &s.ops[0].exemplars[0];
        assert_eq!(e.id, 7);
        assert_eq!(e.stages.iter().map(|(_, n)| n).sum::<u64>(), e.total_ns);
        assert_eq!(s.objectives.len(), 1);
        assert_eq!(s.alerts.len(), 1);
        assert_eq!(s.alerts[0].at_ns, 2_000_000);

        // The same document embedded in a trace file parses identically.
        let embedded = format!(r#"{{"traceEvents": [], "ps2": {{"slo": {SLO_DOC}}}}}"#);
        let s2 = SloSummary::from_json(&embedded).unwrap();
        assert_eq!(s2.ops[0].p999_ns, s.ops[0].p999_ns);
        assert_eq!(s2.alerts.len(), 1);
    }

    #[test]
    fn slo_regressions_gate_p999_and_new_alerts() {
        let base = SloSummary::from_json(SLO_DOC).unwrap();
        let mut cand = base.clone();
        assert!(base.regressions(&cand, 50).is_empty());
        cand.ops[0].p999_ns = 500; // +25% > 5% tolerance
        let v = base.regressions(&cand, 50);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("p999"), "{v:?}");

        // A new alert in the candidate is a violation even when p999 holds.
        let mut no_alert = base.clone();
        no_alert.alerts.clear();
        let v = no_alert.regressions(&base, 50);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("burn alert"), "{v:?}");
    }
}
