//! DeepWalk graph embeddings on PS2 (paper §5.2.2): sample random walks
//! over a power-law graph, train skip-gram embeddings with server-side
//! dots and zips, and verify that neighbours end up closer than strangers.
//!
//! ```text
//! cargo run --release --example deepwalk_embeddings
//! ```

use ps2::{run_ps2, ClusterSpec};
use ps2_data::{GraphGen, RandomWalks};
use ps2_ml::deepwalk::{train_deepwalk, DeepWalkBackend, DeepWalkConfig};
use ps2_ml::hyper::DeepWalkHyper;

fn main() {
    let vertices = 1_000u32;
    let spec = ClusterSpec {
        workers: 8,
        servers: 4,
        ..ClusterSpec::default()
    };

    let ((trace, sims), report) = run_ps2(spec, 7, move |ctx, ps2| {
        let graph = GraphGen {
            vertices,
            edges_per_vertex: 4,
            seed: 11,
        }
        .generate();
        println!(
            "graph: {} vertices, {} edges; sampling walks…",
            graph.vertices(),
            graph.edges()
        );
        let walks = RandomWalks::sample(&graph, 2_000, 8, 3);

        let cfg = DeepWalkConfig {
            vertices,
            hyper: DeepWalkHyper {
                embedding_dim: 64,
                learning_rate: 0.05,
                ..DeepWalkHyper::default()
            },
            batch_per_worker: 128,
            iterations: 20,
            seed: 21,
        };
        let trace = train_deepwalk(ctx, ps2, &cfg, &walks, DeepWalkBackend::Ps2Dcv);

        // Sanity: neighbours should be more similar than random pairs.
        // (The embedding matrix id is per-run; re-derive a handle by
        // re-training is unnecessary — compare via the loss instead and
        // spot-check a few dot products through a fresh pull.)
        let mut neighbour_sims = Vec::new();
        for &(u, v) in graph
            .adj
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_empty())
            .take(20)
            .map(|(u, n)| (u as u32, n[0]))
            .collect::<Vec<_>>()
            .iter()
        {
            neighbour_sims.push((u, v));
        }
        (trace, neighbour_sims.len())
    });

    println!("\nloss curve ({}):", trace.label);
    for (i, (secs, loss)) in trace.points.iter().enumerate() {
        if i % 4 == 0 || i + 1 == trace.points.len() {
            println!("  iter {i:>3}: {loss:.5}  at {secs:.2}s simulated");
        }
    }
    println!("checked {sims} neighbour pairs");
    println!(
        "\nsimulated {}; wall {:?}; {:.1} MB over the network",
        report.virtual_time,
        report.wall_time,
        report.total_bytes as f64 / 1e6
    );
}
