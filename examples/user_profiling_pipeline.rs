//! The paper's motivating pipeline (§1): use Spark to collect and clean
//! raw event data, *then* train a high-dimensional classifier on PS2 — all
//! in one system, no data movement between frameworks.
//!
//! Stage 1 (dataflow + shuffle): aggregate raw (user, item) click events
//! into per-user sparse feature vectors with `reduce_by_key`.
//! Stage 2 (PS2): train logistic regression with FTRL (the CTR-standard
//! optimizer) on the assembled examples, evaluating AUC.
//!
//! ```text
//! cargo run --release --example user_profiling_pipeline
//! ```

use std::sync::Arc;

use ps2::dataflow::deploy_shuffle_services;
use ps2::ml::lr::{distinct_cols, grad_aligned};
use ps2::ml::optim::Optimizer;
use ps2::ml::{auc, TrainingTrace};
use ps2::{deploy, ClusterSpec, Ps2Context, SimBuilder};
use ps2_data::Example;

fn main() {
    let spec = ClusterSpec {
        workers: 8,
        servers: 8,
        ..ClusterSpec::default()
    };
    let mut sim = SimBuilder::new().seed(17).build();
    let deployment = deploy(&mut sim, &spec);
    let services = deploy_shuffle_services(&mut sim, spec.workers);

    let out = sim.spawn_collect("coordinator", move |ctx| {
        let mut ps2 = Ps2Context::new(deployment);

        // ---- Stage 1: raw events -> per-user feature vectors ------------
        // Synthetic click log: (user, item) events; a user's taste is a
        // deterministic function of their id.
        let users = 3_000u64;
        let items = 20_000u64;
        let events_per_part = 8_000u64;
        let raw = ps2.spark.source(8, move |part, _w| {
            let mut out = Vec::with_capacity(events_per_part as usize);
            for i in 0..events_per_part {
                let h = (part as u64 * 1_000_003 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let user = h % users;
                // Users click items near their taste center.
                let center = (user * 37) % items;
                let item = (center + (h >> 17) % 50) % items;
                out.push((user, item));
            }
            out
        });
        let events = ps2.spark.count(ctx, &raw);
        println!("stage 1: {events} raw click events");

        // Count clicks per (user, item) with one shuffle, then gather each
        // user's full feature list with a second, user-keyed shuffle.
        let keyed = raw.map(|&(u, i)| ((u, i), 1u64));
        let counts = ps2
            .spark
            .reduce_by_key(ctx, &services, &keyed, |a, b| a + b)
            .expect("shuffle failed");
        let by_user = counts.map(|&((u, i), c)| (u, vec![(i, c as f64)]));
        let assembled = ps2
            .spark
            .reduce_by_key(ctx, &services, &by_user, |mut a, mut b| {
                a.append(&mut b);
                a
            })
            .expect("shuffle failed");
        let per_user = keyed_to_examples(&assembled, items);
        let n_examples = ps2.spark.count(ctx, &per_user);
        println!("stage 1: assembled {n_examples} user feature vectors");
        let per_user = per_user.cache();

        // ---- Stage 2: FTRL logistic regression on PS2 --------------------
        let dim = items;
        let opt = Optimizer::Ftrl {
            alpha: 0.3,
            beta: 1.0,
            l1: 0.001,
            l2: 0.0001,
        };
        let w = ps2.dense_dcv(ctx, dim, 4); // w, z, n, g
        let z = w.derive(ctx);
        let nacc = w.derive(ctx);
        let g = w.derive(ctx);
        let mut trace = TrainingTrace::new("PS2-FTRL");
        let start = ctx.now();
        for t in 1..=25u64 {
            g.zero(ctx);
            let batch = per_user.sample(0.2, t);
            let wd = w.clone();
            let gd = g.clone();
            let results = ps2
                .spark
                .run_job(
                    ctx,
                    &batch,
                    move |examples, wk| {
                        if examples.is_empty() {
                            return (0.0, 0u64);
                        }
                        let cols = distinct_cols(examples);
                        let wv = wd.pull_indices(wk.sim, &cols);
                        let (grad, loss) = grad_aligned(examples, &cols, &wv);
                        let n = examples.len() as f64;
                        let pairs: Vec<(u64, f64)> = cols
                            .iter()
                            .zip(&grad)
                            .map(|(&j, &gv)| (j, gv / n))
                            .collect();
                        gd.add_sparse(wk.sim, &pairs);
                        (loss, examples.len() as u64)
                    },
                    |_| 24,
                )
                .expect("training stage failed");
            // Server-side FTRL step over [w, z, n, g].
            w.zip(&[&z, &nacc, &g]).map_partitions(
                ctx,
                opt.zip_fn(1.0, t as i32),
                opt.flops_per_elem(),
            );
            let (loss_sum, n) = results
                .into_iter()
                .fold((0.0, 0u64), |(l, c), (li, ci)| (l + li, c + ci));
            trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
        }

        // ---- Evaluate: AUC on a held-out pass -----------------------------
        let wd = w.clone();
        let scored = ps2
            .spark
            .run_job(
                ctx,
                &per_user,
                move |examples, wk| {
                    let cols = distinct_cols(examples);
                    let wv = wd.pull_indices(wk.sim, &cols);
                    examples
                        .iter()
                        .map(|ex| {
                            let margin: f64 = ex
                                .features
                                .iter()
                                .map(|&(j, v)| wv[cols.binary_search(&j).unwrap()] * v)
                                .sum();
                            (margin, ex.label)
                        })
                        .collect::<Vec<(f64, f64)>>()
                },
                |r: &Vec<(f64, f64)>| 16 * r.len() as u64,
            )
            .expect("scoring failed");
        let all: Vec<(f64, f64)> = scored.into_iter().flatten().collect();
        let model_nnz = w.nnz(ctx);
        (trace, auc(&all), model_nnz, dim)
    });

    let report = sim.run().unwrap();
    let (trace, auc_value, model_nnz, dim) = out.take();
    println!("\nstage 2 ({}):", trace.label);
    for (i, (secs, loss)) in trace.points.iter().enumerate() {
        if i % 5 == 0 || i + 1 == trace.points.len() {
            println!("  iter {i:>2}: loss {loss:.4}  ({secs:.2}s simulated)");
        }
    }
    println!("\nAUC = {auc_value:.3}; FTRL kept {model_nnz}/{dim} weights non-zero (L1 sparsity)");
    println!(
        "whole pipeline: {} simulated, {:?} wall, {:.1} MB moved",
        report.virtual_time,
        report.wall_time,
        report.total_bytes as f64 / 1e6
    );
}

/// Stage-1 helper: turn `(user, [(item, clicks)])` into labelled examples —
/// label +1 when the user's clicks concentrate on their taste slice.
fn keyed_to_examples(
    assembled: &ps2::dataflow::Rdd<(u64, Vec<(u64, f64)>)>,
    items: u64,
) -> ps2::dataflow::Rdd<Example> {
    assembled.map_partitions(move |users, w| {
        w.charge_scan(users.len());
        users
            .iter()
            .map(|(user, feats)| {
                let mut features = feats.clone();
                features.sort_unstable_by_key(|&(j, _)| j);
                let center = (user * 37) % items;
                let on_taste: f64 = features
                    .iter()
                    .filter(|&&(j, _)| j >= center && j < center + 50)
                    .map(|&(_, c)| c)
                    .sum();
                let total: f64 = features.iter().map(|&(_, c)| c).sum();
                let label = if on_taste * 2.0 > total { 1.0 } else { -1.0 };
                Example {
                    label,
                    features: Arc::new(features),
                }
            })
            .collect()
    })
}
