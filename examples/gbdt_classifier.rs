//! GBDT classification on PS2 (paper §5.2.3): histogram construction pushed
//! to the parameter servers, split finding server-side, and a comparison
//! run against the AllReduce (XGBoost-style) execution of the same trees.
//!
//! ```text
//! cargo run --release --example gbdt_classifier
//! ```

use ps2::{run_ps2, ClusterSpec};
use ps2_data::SparseDatasetGen;
use ps2_ml::gbdt::{train_gbdt, GbdtBackend, GbdtConfig};
use ps2_ml::hyper::GbdtHyper;

fn main() {
    let spec = ClusterSpec {
        workers: 8,
        servers: 8,
        ..ClusterSpec::default()
    };
    let dataset = SparseDatasetGen::new(8_000, 200, 20, 8, 13).continuous();
    let hyper = GbdtHyper {
        num_trees: 8,
        max_depth: 4,
        histogram_bins: 32,
        ..GbdtHyper::default()
    };

    let mut summaries = Vec::new();
    for backend in [GbdtBackend::Ps2Dcv, GbdtBackend::XgboostStyle] {
        let ds = dataset.clone();
        let ((trace, trees), report) = run_ps2(spec.clone(), 3, move |ctx, ps2| {
            let cfg = GbdtConfig { dataset: ds, hyper };
            train_gbdt(ctx, ps2, &cfg, backend)
        });
        println!("\n== {} ==", trace.label);
        for (i, (secs, loss)) in trace.points.iter().enumerate() {
            println!(
                "  tree {:>2}: logloss {loss:.4}   ({secs:.1}s simulated)",
                i + 1
            );
        }
        // Use the model: classify the first few examples.
        let mut correct = 0;
        let n_eval = 200;
        for r in 0..n_eval {
            let ex = dataset.example(r);
            let margin: f64 = trees.iter().map(|t| t.predict(&ex)).sum();
            let pred = if margin >= 0.0 { 1.0 } else { -1.0 };
            if pred == ex.label {
                correct += 1;
            }
        }
        println!(
            "  training accuracy on {n_eval} rows: {:.1}%",
            100.0 * correct as f64 / n_eval as f64
        );
        println!(
            "  simulated {}, wall {:?}, {:.1} MB moved",
            report.virtual_time,
            report.wall_time,
            report.total_bytes as f64 / 1e6
        );
        summaries.push((trace.label.clone(), trace.total_time()));
    }
    println!(
        "\n{} was {:.2}x faster than {} on the simulated cluster",
        summaries[0].0,
        summaries[1].1 / summaries[0].1,
        summaries[1].0
    );
}
