//! Fault tolerance on PS2 (paper §5.3): task failures are retried, a lost
//! executor is replaced and its data recomputed from lineage, and a lost
//! PS-server is restored from a checkpoint — all inside one training run.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use ps2::{run_ps2, ClusterSpec, SimTime};
use ps2_data::SparseDatasetGen;
use ps2_ml::lr::{distinct_cols, grad_aligned};

fn main() {
    let spec = ClusterSpec {
        workers: 6,
        servers: 4,
        ..ClusterSpec::default()
    };

    let (story, report) = run_ps2(spec, 99, |ctx, ps2| {
        let mut story: Vec<String> = Vec::new();
        // 10% of task attempts fail — the paper's harshest Figure 13(c) case.
        ps2.spark.failure.task_failure_prob = 0.1;
        ps2.spark.failure.max_task_attempts = 100;

        let gen = SparseDatasetGen::new(3_000, 5_000, 15, 6, 3);
        let g2 = gen.clone();
        let data = ps2.spark.source(6, move |p, _w| g2.partition(p)).cache();
        let _ = ps2.spark.count(ctx, &data);

        let w = ps2.dense_dcv(ctx, gen.dim, 1);
        let expected_batch = gen.rows as f64 * 0.05;

        let step = |ctx: &mut ps2::SimCtx, ps2: &mut ps2::Ps2Context, t: u64| -> f64 {
            let batch = data.sample(0.05, t);
            let wd = w.clone();
            let results = ps2
                .spark
                .run_job(
                    ctx,
                    &batch,
                    move |examples, wk| {
                        if examples.is_empty() {
                            return (0.0, 0u64);
                        }
                        let cols = distinct_cols(examples);
                        let wv = wd.pull_indices(wk.sim, &cols);
                        let (grad, loss) = grad_aligned(examples, &cols, &wv);
                        let pairs: Vec<(u64, f64)> = cols
                            .iter()
                            .zip(&grad)
                            .map(|(&j, &g)| (j, -2.0 * g / expected_batch))
                            .collect();
                        wd.add_sparse(wk.sim, &pairs);
                        (loss, examples.len() as u64)
                    },
                    |_| 24,
                )
                .expect("training job failed");
            let (l, n) = results
                .into_iter()
                .fold((0.0, 0u64), |(a, c), (li, ci)| (a + li, c + ci));
            l / n.max(1) as f64
        };

        // Train a while under task failures…
        for t in 1..=10 {
            let loss = step(ctx, ps2, t);
            if t == 10 {
                story.push(format!(
                    "after 10 iterations with 10% task failures: loss {loss:.4}, \
                     {} task retries absorbed",
                    ps2.spark.task_retries
                ));
            }
        }

        // …checkpoint the model, then kill a PS-server.
        ps2.ps.checkpoint_all(ctx);
        let victim_server = w.matrix().route.resolve(1);
        ctx.kill(victim_server);
        ctx.advance(SimTime::from_millis(5));
        let recovered = ps2.ps.recover_dead_servers(ctx);
        story.push(format!(
            "killed PS-server slot 1; master recovered slots {recovered:?} from checkpoint"
        ));

        // …kill an executor too; lineage recomputes its cached partition.
        let victim_exec = ps2.spark.executors()[2];
        ctx.kill(victim_exec);
        story.push("killed executor 2; scheduler will respawn on demand".into());

        for t in 11..=20 {
            let loss = step(ctx, ps2, t);
            if t == 20 {
                story.push(format!(
                    "after recovery, training continued to loss {loss:.4} \
                     ({} executors replaced)",
                    ps2.spark.executors_replaced
                ));
            }
        }
        story
    });

    println!("fault-tolerance walkthrough:");
    for line in story {
        println!("  - {line}");
    }
    println!(
        "\nsimulated {}, wall {:?}, {} dropped messages (dead recipients)",
        report.virtual_time, report.wall_time, report.dropped_msgs
    );
}
