//! Quickstart: the paper's Figure 3 — training logistic regression with
//! Adam on PS2 — written against this library's public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ps2::ml::lr::{distinct_cols, grad_aligned};
use ps2::{run_ps2, ClusterSpec, ZipSegs};
use ps2_data::SparseDatasetGen;

fn main() {
    // A 20-worker / 20-server simulated cluster, like the paper's §6 setup.
    let spec = ClusterSpec {
        workers: 20,
        servers: 20,
        ..ClusterSpec::default()
    };

    let (final_loss, report) = run_ps2(spec, 42, |ctx, ps2| {
        // ---- load data as an RDD (paper Figure 3, lines 1-2) ----------
        let gen = SparseDatasetGen::new(20_000, 100_000, 20, 20, 7);
        let g2 = gen.clone();
        let data = ps2.spark.source(20, move |p, _w| g2.partition(p)).cache();
        let n = ps2.spark.count(ctx, &data);
        println!("loaded {n} examples over 20 partitions");

        // ---- allocate four co-located DCVs (lines 3-7) -----------------
        let dim = gen.dim;
        let weight = ps2.dense_dcv(ctx, dim, 4);
        let square = weight.derive(ctx).filled(ctx, 0.0);
        let velocity = weight.derive(ctx).filled(ctx, 0.0);
        let gradient = weight.derive(ctx);

        let (beta1, beta2, eps, eta): (f64, f64, f64, f64) = (0.9, 0.999, 1e-8, 0.05);
        let expected_batch = 20_000.0 * 0.01;
        let mut last_loss = f64::NAN;

        for t in 1..=30i32 {
            gradient.zero(ctx);

            // ---- gradient computation on the workers (lines 12-19) ----
            let batch = data.sample(0.01, t as u64);
            let w = weight.clone();
            let g = gradient.clone();
            let results = ps2
                .spark
                .run_job(
                    ctx,
                    &batch,
                    move |examples, wk| {
                        if examples.is_empty() {
                            return (0.0, 0u64);
                        }
                        // Pull only the needed weights from the PS.
                        let cols = distinct_cols(examples);
                        let local_w = w.pull_indices(wk.sim, &cols);
                        // Calculate the gradient locally…
                        let (grad, loss) = grad_aligned(examples, &cols, &local_w);
                        // …and push it back (the action is the barrier).
                        let pairs: Vec<(u64, f64)> = cols
                            .iter()
                            .zip(&grad)
                            .map(|(&j, &v)| (j, v / expected_batch))
                            .collect();
                        g.add_sparse(wk.sim, &pairs);
                        (loss, examples.len() as u64)
                    },
                    |_| 24,
                )
                .expect("iteration failed");

            // ---- server-side Adam update via zip (lines 21-26) --------
            weight.zip(&[&square, &velocity, &gradient]).map_partitions(
                ctx,
                Arc::new(move |zs: &mut ZipSegs<'_>| {
                    let [w, s, v, g] = &mut zs.segs[..] else {
                        unreachable!()
                    };
                    let (bc1, bc2) = (1.0 - beta1.powi(t), 1.0 - beta2.powi(t));
                    for i in 0..w.len() {
                        s[i] = beta1 * s[i] + (1.0 - beta1) * g[i] * g[i];
                        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i];
                        let (s_hat, v_hat) = (s[i] / bc1, v[i] / bc2);
                        w[i] -= eta * v_hat / (s_hat.sqrt() + eps);
                    }
                }),
                14,
            );

            let (loss_sum, cnt) = results
                .into_iter()
                .fold((0.0, 0u64), |(l, c), (li, ci)| (l + li, c + ci));
            last_loss = loss_sum / cnt.max(1) as f64;
            println!("iter {t:>2}: loss {last_loss:.4}  (virtual {})", ctx.now());
        }
        last_loss
    });

    println!("\nfinal training loss: {final_loss:.4}");
    println!(
        "simulated cluster time {}; wall time {:?}; {} messages, {:.1} MB moved",
        report.virtual_time,
        report.wall_time,
        report.total_msgs,
        report.total_bytes as f64 / 1e6
    );
}
