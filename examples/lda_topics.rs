//! LDA topic modelling on PS2 (paper §5.2.4): collapsed Gibbs sampling with
//! the word-topic matrix block-pulled from the servers, compressed on the
//! wire, and sparse count deltas pushed back.
//!
//! ```text
//! cargo run --release --example lda_topics
//! ```

use ps2::{run_ps2, ClusterSpec};
use ps2_data::CorpusGen;
use ps2_ml::hyper::LdaHyper;
use ps2_ml::lda::{train_lda, LdaBackend, LdaConfig};

fn main() {
    let spec = ClusterSpec {
        workers: 8,
        servers: 4,
        ..ClusterSpec::default()
    };
    // A corpus generated from 12 ground-truth topics.
    let corpus = CorpusGen::new(1_500, 3_000, 12, 60, 8, 5);

    let (trace, report) = run_ps2(spec, 9, move |ctx, ps2| {
        let cfg = LdaConfig {
            corpus,
            hyper: LdaHyper {
                topics: 12,
                ..LdaHyper::default() // α = 0.5, β = 0.01 — paper Table 4
            },
            iterations: 15,
        };
        train_lda(ctx, ps2, &cfg, LdaBackend::Ps2Dcv)
    });

    println!("Gibbs sweeps (negative mean token log-likelihood — lower is better):");
    for (i, (secs, loss)) in trace.points.iter().enumerate() {
        println!("  sweep {:>2}: {loss:.4}   ({secs:.1}s simulated)", i + 1);
    }
    let first = trace.points.first().unwrap().1;
    let last = trace.final_loss();
    println!(
        "\nlikelihood improved by {:.1}% over {} sweeps",
        100.0 * (first - last) / first,
        trace.points.len()
    );
    println!(
        "simulated {}, wall {:?}, {} msgs, {:.1} MB",
        report.virtual_time,
        report.wall_time,
        report.total_msgs,
        report.total_bytes as f64 / 1e6
    );
}
