//! Regression test: a map task retried after its buckets were already
//! written must not double its contribution (idempotent shuffle puts).

use ps2_dataflow::{deploy_executors, deploy_shuffle_services, SparkContext};
use ps2_simnet::SimBuilder;

#[test]
fn double_put_from_a_rerun_map_stage_is_idempotent() {
    // Drive the scenario directly: run the *same* shuffle map job twice (as
    // the scheduler would when an executor dies after writing but before
    // acking the task) by running the reduce twice over an uncached shuffled
    // RDD whose map stage is re-materialized. The store must keep one
    // bucket per (shuffle, map partition), so totals stay exact.
    let mut sim = SimBuilder::new().seed(5).build();
    let executors = deploy_executors(&mut sim, 3);
    let services = deploy_shuffle_services(&mut sim, 3);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 5, 1)).collect();
        let rdd = sc.parallelize(ctx, pairs, 6);
        let reduced = sc
            .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
            .unwrap();
        let first: u64 = sc.collect(ctx, &reduced).into_iter().map(|(_, c)| c).sum();
        // Second shuffle over the same input: its map stage re-puts under a
        // fresh shuffle id, while the first shuffle's blocks are untouched.
        let reduced2 = sc
            .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
            .unwrap();
        let second: u64 = sc.collect(ctx, &reduced2).into_iter().map(|(_, c)| c).sum();
        // And re-collect the first shuffle's output (re-fetches buckets).
        let first_again: u64 = sc.collect(ctx, &reduced).into_iter().map(|(_, c)| c).sum();
        (first, second, first_again)
    });
    sim.run().unwrap();
    let (a, b, c) = out.take();
    assert_eq!(a, 300);
    assert_eq!(b, 300);
    assert_eq!(c, 300, "re-fetch must not see duplicated buckets");
}

#[test]
fn shuffle_survives_task_failures_with_exact_results() {
    let mut sim = SimBuilder::new().seed(6).build();
    let executors = deploy_executors(&mut sim, 4);
    let services = deploy_shuffle_services(&mut sim, 4);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        sc.failure.task_failure_prob = 0.25;
        sc.failure.max_task_attempts = 200;
        let pairs: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i % 13, i)).collect();
        let rdd = sc.parallelize(ctx, pairs, 10);
        let reduced = sc
            .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
            .unwrap();
        let total: u64 = sc.collect(ctx, &reduced).into_iter().map(|(_, s)| s).sum();
        (total, sc.task_retries)
    });
    sim.run().unwrap();
    let (total, retries) = out.take();
    assert_eq!(total, (0..1_000u64).sum::<u64>());
    assert!(retries > 0, "the failure injection must have fired");
}
