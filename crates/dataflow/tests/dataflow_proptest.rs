//! Property-based tests for the dataflow engine.

use proptest::prelude::*;
use ps2_dataflow::{deploy_executors, deploy_shuffle_services, SparkContext};
use ps2_simnet::SimBuilder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// collect() returns exactly the input, in order, for any partitioning
    /// and executor count.
    #[test]
    fn collect_is_identity(
        data in prop::collection::vec(any::<u32>(), 0..300),
        execs in 1usize..6,
        parts in 1usize..9
    ) {
        let mut sim = SimBuilder::new().seed(1).build();
        let executors = deploy_executors(&mut sim, execs);
        let expected = data.clone();
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            if data.is_empty() {
                return Vec::new();
            }
            let rdd = sc.parallelize(ctx, data, parts);
            sc.collect(ctx, &rdd)
        });
        sim.run().unwrap();
        prop_assert_eq!(out.take(), expected);
    }

    /// map then filter commutes with the local equivalent.
    #[test]
    fn map_filter_matches_local(
        data in prop::collection::vec(0u64..10_000, 1..200),
        mul in 1u64..50,
        modulo in 1u64..20
    ) {
        let mut sim = SimBuilder::new().seed(2).build();
        let executors = deploy_executors(&mut sim, 3);
        let input = data.clone();
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let rdd = sc.parallelize(ctx, data, 5);
            let t = rdd.map(move |x| x * mul).filter(move |x| x % modulo == 0);
            sc.collect(ctx, &t)
        });
        sim.run().unwrap();
        let expected: Vec<u64> = input
            .iter()
            .map(|x| x * mul)
            .filter(|x| x % modulo == 0)
            .collect();
        prop_assert_eq!(out.take(), expected);
    }

    /// reduce_partitions with addition equals the plain sum, no matter how
    /// elements land in partitions.
    #[test]
    fn reduce_is_partition_invariant(
        data in prop::collection::vec(0u64..1_000_000, 1..300),
        parts in 1usize..12
    ) {
        let mut sim = SimBuilder::new().seed(3).build();
        let executors = deploy_executors(&mut sim, 4);
        let expected: u64 = data.iter().sum();
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let rdd = sc.parallelize(ctx, data, parts);
            sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b)
        });
        sim.run().unwrap();
        prop_assert_eq!(out.take().unwrap_or(0), expected);
    }

    /// reduce_by_key equals a local HashMap fold for arbitrary key/value
    /// multisets.
    #[test]
    fn shuffle_reduce_matches_local_fold(
        pairs in prop::collection::vec((0u64..40, 0u64..1_000), 1..250),
        execs in 1usize..5
    ) {
        let mut sim = SimBuilder::new().seed(4).build();
        let executors = deploy_executors(&mut sim, execs);
        let services = deploy_shuffle_services(&mut sim, execs);
        let input = pairs.clone();
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let rdd = sc.parallelize(ctx, pairs, 6);
            let reduced = sc
                .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
                .unwrap();
            let mut all = sc.collect(ctx, &reduced);
            all.sort();
            all
        });
        sim.run().unwrap();
        let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
        for (k, v) in input {
            *expected.entry(k).or_insert(0) += v;
        }
        let expected: Vec<(u64, u64)> = expected.into_iter().collect();
        prop_assert_eq!(out.take(), expected);
    }

    /// Task failures never change results, only timing.
    #[test]
    fn failures_are_result_transparent(
        data in prop::collection::vec(0u64..100_000, 1..150),
        fail_prob in 0.0f64..0.4
    ) {
        let run = |p: f64, data: Vec<u64>| {
            let mut sim = SimBuilder::new().seed(7).build();
            let executors = deploy_executors(&mut sim, 3);
            let out = sim.spawn_collect("driver", move |ctx| {
                let mut sc = SparkContext::new(executors);
                sc.failure.task_failure_prob = p;
                sc.failure.max_task_attempts = 1000;
                let rdd = sc.parallelize(ctx, data, 7);
                sc.collect(ctx, &rdd)
            });
            sim.run().unwrap();
            out.take()
        };
        let clean = run(0.0, data.clone());
        let faulty = run(fail_prob, data);
        prop_assert_eq!(clean, faulty);
    }
}
