//! Tests for the shuffle layer (`reduce_by_key` / `group_by_key`).

use ps2_dataflow::{deploy_executors, deploy_shuffle_services, SparkContext};
use ps2_simnet::{ProcId, SimBuilder};

fn cluster(execs: usize) -> (ps2_simnet::SimRuntime, Vec<ProcId>, Vec<ProcId>) {
    let mut sim = SimBuilder::new().seed(1).build();
    let executors = deploy_executors(&mut sim, execs);
    let services = deploy_shuffle_services(&mut sim, execs);
    (sim, executors, services)
}

#[test]
fn reduce_by_key_counts_words() {
    let (mut sim, executors, services) = cluster(4);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let words: Vec<(String, u64)> = "the quick brown fox jumps over the lazy dog the end"
            .split(' ')
            .map(|w| (w.to_string(), 1u64))
            .collect();
        let rdd = sc.parallelize(ctx, words, 4);
        let counts = sc
            .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
            .unwrap();
        let mut all = sc.collect(ctx, &counts);
        all.sort();
        all
    });
    sim.run().unwrap();
    let counts = out.take();
    assert!(counts.contains(&("the".to_string(), 3)));
    assert!(counts.contains(&("fox".to_string(), 1)));
    assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 11);
    // Every key appears exactly once after the reduce.
    let mut keys: Vec<&String> = counts.iter().map(|(k, _)| k).collect();
    keys.dedup();
    assert_eq!(keys.len(), counts.len());
}

#[test]
fn reduce_by_key_handles_heavy_duplication_and_many_partitions() {
    let (mut sim, executors, services) = cluster(6);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let pairs: Vec<(u64, u64)> = (0..6_000u64).map(|i| (i % 17, i)).collect();
        let rdd = sc.parallelize(ctx, pairs, 12);
        let sums = sc
            .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
            .unwrap();
        let mut all = sc.collect(ctx, &sums);
        all.sort();
        all
    });
    sim.run().unwrap();
    let sums = out.take();
    assert_eq!(sums.len(), 17);
    let total: u64 = sums.iter().map(|(_, s)| s).sum();
    assert_eq!(total, (0..6_000u64).sum::<u64>());
}

#[test]
fn group_by_key_collects_all_values() {
    let (mut sim, executors, services) = cluster(3);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let pairs: Vec<(u32, u32)> = vec![(1, 10), (2, 20), (1, 11), (3, 30), (2, 21), (1, 12)];
        let rdd = sc.parallelize(ctx, pairs, 3);
        let grouped = sc.group_by_key(ctx, &services, &rdd).unwrap();
        let mut all = sc.collect(ctx, &grouped);
        all.sort();
        for (_, vs) in all.iter_mut() {
            vs.sort();
        }
        all
    });
    sim.run().unwrap();
    assert_eq!(
        out.take(),
        vec![(1, vec![10, 11, 12]), (2, vec![20, 21]), (3, vec![30])]
    );
}

#[test]
fn shuffle_moves_bytes_through_the_network_model() {
    // The same reduce with 10x the data should move ~10x the bytes.
    let bytes_for = |n: u64| {
        let (mut sim, executors, services) = cluster(4);
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let pairs: Vec<(u64, u64)> = (0..n).map(|i| (i, 1u64)).collect();
            let rdd = sc.parallelize(ctx, pairs, 4);
            let r = sc
                .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
                .unwrap();
            sc.count(ctx, &r)
        });
        let report = sim.run().unwrap();
        assert_eq!(out.take(), n);
        report.total_bytes
    };
    let b1 = bytes_for(1_000);
    let b10 = bytes_for(10_000);
    assert!(
        b10 > 5 * b1,
        "shuffle bytes must scale with data: {b1} vs {b10}"
    );
}

#[test]
fn shuffled_rdd_composes_with_narrow_ops_and_is_deterministic() {
    let run = || {
        let (mut sim, executors, services) = cluster(4);
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let pairs: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 7, i * i)).collect();
            let rdd = sc.parallelize(ctx, pairs, 8);
            let sums = sc
                .reduce_by_key(ctx, &services, &rdd, |a, b| a + b)
                .unwrap();
            let big = sums.filter(|(_, s)| *s > 1_000).map(|(k, s)| (*k, s / 2));
            let mut all = sc.collect(ctx, &big);
            all.sort();
            all
        });
        let report = sim.run().unwrap();
        (out.take(), report.total_bytes)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert!(!a.0.is_empty());
}
