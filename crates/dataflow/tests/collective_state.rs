//! Tests for executor-resident task state and the ring AllReduce collective.

use ps2_dataflow::{deploy_executors, ring_allreduce_sum, SparkContext};
use ps2_simnet::SimBuilder;

#[test]
fn task_state_persists_across_stages_on_same_executor() {
    let mut sim = SimBuilder::new().seed(1).build();
    let executors = deploy_executors(&mut sim, 3);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let rdd = sc.source(3, |part, _w| vec![part as u64]);
        // Stage 1: store a counter per partition.
        sc.for_each_partition(ctx, &rdd, |_data, w| {
            let mut c: u64 = w.take_state(42).unwrap_or(0);
            c += 10;
            w.put_state(42, c);
        })
        .unwrap();
        // Stage 2: bump it again and read it back.
        sc.run_job(
            ctx,
            &rdd,
            |_data, w| {
                let mut c: u64 = w.take_state(42).unwrap_or(0);
                c += 1;
                w.put_state(42, c);
                c
            },
            |_| 8,
        )
        .unwrap()
    });
    sim.run().unwrap();
    assert_eq!(out.take(), vec![11, 11, 11]);
}

#[test]
fn state_keys_are_isolated() {
    let mut sim = SimBuilder::new().seed(1).build();
    let executors = deploy_executors(&mut sim, 2);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let rdd = sc.source(2, |part, _w| vec![part as u64]);
        sc.for_each_partition(ctx, &rdd, |_d, w| {
            w.put_state(1, 100u64);
            w.put_state(2, vec![1.0f64, 2.0]);
        })
        .unwrap();
        sc.run_job(
            ctx,
            &rdd,
            |_d, w| {
                let a: u64 = w.take_state(1).unwrap();
                let b: Vec<f64> = w.take_state(2).unwrap();
                let missing: Option<u64> = w.take_state(3);
                (a, b.len() as u64, missing.is_none())
            },
            |_| 24,
        )
        .unwrap()
    });
    sim.run().unwrap();
    for (a, blen, missing) in out.take() {
        assert_eq!((a, blen, missing), (100, 2, true));
    }
}

#[test]
fn ring_allreduce_sums_across_all_workers() {
    let execs = 4usize;
    let n = 103usize; // deliberately not divisible by 4
    let mut sim = SimBuilder::new().seed(2).build();
    let executors = deploy_executors(&mut sim, execs);
    let peers = executors.clone();
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let rdd = sc.source(execs, |part, _w| vec![part as u64]);
        sc.run_job(
            ctx,
            &rdd,
            move |_d, w| {
                let rank = w.partition;
                // Worker r contributes value (r+1) at every position.
                let mut data = vec![(rank + 1) as f64; n];
                ring_allreduce_sum(w, &peers, rank, &mut data, 8);
                data
            },
            |v: &Vec<f64>| 8 * v.len() as u64 + 8,
        )
        .unwrap()
    });
    sim.run().unwrap();
    let results = out.take();
    let expect = vec![(1 + 2 + 3 + 4) as f64; n];
    for r in results {
        assert_eq!(r, expect, "every rank must hold the full sum");
    }
}

#[test]
fn ring_allreduce_single_worker_is_identity() {
    let mut sim = SimBuilder::new().seed(2).build();
    let executors = deploy_executors(&mut sim, 1);
    let peers = executors.clone();
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        let rdd = sc.source(1, |_p, _w| vec![0u64]);
        sc.run_job(
            ctx,
            &rdd,
            move |_d, w| {
                let mut data = vec![5.0; 10];
                ring_allreduce_sum(w, &peers, 0, &mut data, 8);
                data
            },
            |v: &Vec<f64>| 8 * v.len() as u64,
        )
        .unwrap()
    });
    sim.run().unwrap();
    assert_eq!(out.take()[0], vec![5.0; 10]);
}

#[test]
fn allreduce_cost_scales_with_data_not_workers_squared() {
    // Total ring traffic ≈ 2 · W · n values; per-worker ≈ 2n regardless of W.
    let bytes_for = |execs: usize| {
        let n = 50_000usize;
        let mut sim = SimBuilder::new().seed(3).build();
        let executors = deploy_executors(&mut sim, execs);
        let peers = executors.clone();
        let out = sim.spawn_collect("driver", move |ctx| {
            let mut sc = SparkContext::new(executors);
            let rdd = sc.source(execs, |part, _w| vec![part as u64]);
            sc.run_job(
                ctx,
                &rdd,
                move |_d, w| {
                    let mut data = vec![1.0; n];
                    ring_allreduce_sum(w, &peers, w.partition, &mut data, 8);
                    data[0]
                },
                |_| 8,
            )
            .unwrap()
        });
        let report = sim.run().unwrap();
        out.take();
        report.total_bytes
    };
    let b2 = bytes_for(2);
    let b8 = bytes_for(8);
    // Total bytes grow linearly-ish with W (each of W workers moves ~2n).
    assert!(b8 > 3 * b2 && b8 < 8 * b2, "b2={b2} b8={b8}");
}
