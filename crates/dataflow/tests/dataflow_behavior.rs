//! Behavioural tests for the RDD engine: transformations, actions, caching,
//! broadcast, task retry and executor recovery.

use ps2_dataflow::{deploy_executors, FailureConfig, SparkContext};
use ps2_simnet::{SimBuilder, SimReport, SimTime};

/// Run a driver closure on a cluster of `execs` executors.
fn with_cluster<T, F>(execs: usize, seed: u64, f: F) -> (T, SimReport)
where
    T: Send + 'static,
    F: FnOnce(&mut ps2_simnet::SimCtx, &mut SparkContext) -> T + Send + 'static,
{
    let mut sim = SimBuilder::new().seed(seed).build();
    let executors = deploy_executors(&mut sim, execs);
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        f(ctx, &mut sc)
    });
    let report = sim.run().unwrap();
    (out.take(), report)
}

#[test]
fn map_filter_collect() {
    let (got, _) = with_cluster(3, 1, |ctx, sc| {
        let rdd = sc.parallelize(ctx, (1..=10u64).collect(), 3);
        let evens = rdd.map(|x| x * 10).filter(|x| x % 20 == 0);
        sc.collect(ctx, &evens)
    });
    assert_eq!(got, vec![20, 40, 60, 80, 100]);
}

#[test]
fn partitions_preserve_order_and_balance() {
    let (got, _) = with_cluster(4, 1, |ctx, sc| {
        let rdd = sc.parallelize(ctx, (0..100u64).collect(), 7);
        (sc.collect(ctx, &rdd), sc.count(ctx, &rdd))
    });
    assert_eq!(got.0, (0..100).collect::<Vec<_>>());
    assert_eq!(got.1, 100);
}

#[test]
fn reduce_partitions_combines_partials() {
    let (got, _) = with_cluster(4, 1, |ctx, sc| {
        let rdd = sc.parallelize(ctx, (1..=1000u64).collect(), 8);
        sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b)
    });
    assert_eq!(got, Some(500500));
}

#[test]
fn source_generates_per_partition() {
    let (got, _) = with_cluster(2, 1, |ctx, sc| {
        let rdd = sc.source(5, |part, _w| vec![part as u64; 3]);
        sc.collect(ctx, &rdd)
    });
    assert_eq!(got.len(), 15);
    assert_eq!(&got[0..3], &[0, 0, 0]);
    assert_eq!(&got[12..15], &[4, 4, 4]);
}

#[test]
fn sample_is_deterministic_per_salt_and_roughly_fractional() {
    let (got, _) = with_cluster(2, 1, |ctx, sc| {
        let rdd = sc.parallelize(ctx, (0..10_000u64).collect(), 4);
        let a = sc.collect(ctx, &rdd.sample(0.1, 7));
        let b = sc.collect(ctx, &rdd.sample(0.1, 7));
        let c = sc.collect(ctx, &rdd.sample(0.1, 8));
        (a, b, c)
    });
    assert_eq!(got.0, got.1, "same salt must give the same sample");
    assert_ne!(got.0, got.2, "different salts should differ");
    let frac = got.0.len() as f64 / 10_000.0;
    assert!(
        (0.07..=0.13).contains(&frac),
        "fraction {frac} out of range"
    );
}

#[test]
fn cache_avoids_recomputation() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let computes = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&computes);
    let ((), _) = with_cluster(2, 1, move |ctx, sc| {
        let counter = Arc::clone(&c2);
        let rdd = sc
            .source(4, move |part, _w| {
                counter.fetch_add(1, Ordering::Relaxed);
                vec![part as u64]
            })
            .cache();
        let _ = sc.count(ctx, &rdd);
        let _ = sc.count(ctx, &rdd);
        let _ = sc.count(ctx, &rdd);
    });
    assert_eq!(
        computes.load(std::sync::atomic::Ordering::Relaxed),
        4,
        "cached source must be generated exactly once per partition"
    );
}

#[test]
fn uncached_source_recomputes_every_action() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let computes = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&computes);
    let ((), _) = with_cluster(2, 1, move |ctx, sc| {
        let counter = Arc::clone(&c2);
        let rdd = sc.source(4, move |_part, _w| {
            counter.fetch_add(1, Ordering::Relaxed);
            vec![1u64]
        });
        let _ = sc.count(ctx, &rdd);
        let _ = sc.count(ctx, &rdd);
    });
    assert_eq!(computes.load(std::sync::atomic::Ordering::Relaxed), 8);
}

#[test]
fn broadcast_reaches_all_tasks() {
    let (got, _) = with_cluster(3, 1, |ctx, sc| {
        let b = sc.broadcast_t(ctx, vec![1.0f64, 2.0, 3.0]);
        let rdd = sc.parallelize(ctx, vec![0usize, 1, 2, 0, 1, 2], 3);
        let picked = rdd.map_partitions(move |part, w| {
            let v = w.broadcast(&b);
            part.iter().map(|&i| v[i]).collect()
        });
        sc.collect(ctx, &picked)
    });
    assert_eq!(got, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
}

#[test]
fn broadcast_scales_logarithmically_via_relay_tree() {
    // Torrent-style broadcast: the driver ships one copy; executors relay
    // down a binary tree. Cost grows with depth (log E), far slower than
    // linear fan-out would.
    let time_for = |execs: usize| {
        let (t, _) = with_cluster(execs, 1, |ctx, sc| {
            let before = ctx.now();
            let _b = sc.broadcast(ctx, (), 50_000_000); // 50 MB
            ctx.now() - before
        });
        t
    };
    let t1 = time_for(1);
    let t2 = time_for(2);
    let t16 = time_for(16);
    assert!(t2 > t1, "a deeper tree must cost more: {t1:?} vs {t2:?}");
    assert!(
        t16.as_nanos() < 8 * t2.as_nanos(),
        "16 executors must cost far less than 8x the 2-executor time \
         (log, not linear): {t2:?} vs {t16:?}"
    );
}

#[test]
fn injected_task_failures_are_retried_and_job_completes() {
    let (got, _) = with_cluster(4, 99, |ctx, sc| {
        sc.failure = FailureConfig {
            task_failure_prob: 0.3,
            failure_waste: SimTime::from_millis(10),
            max_task_attempts: 50,
            ..FailureConfig::default()
        };
        let rdd = sc.parallelize(ctx, (1..=100u64).collect(), 20);
        let sum = sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b);
        (sum, sc.task_retries)
    });
    assert_eq!(got.0, Some(5050), "result must be exact despite failures");
    assert!(
        got.1 > 0,
        "with p=0.3 over 20 tasks some retries must happen"
    );
}

#[test]
fn task_failures_slow_the_job_down() {
    // Figure 13(c)'s mechanism: higher failure probability, longer job.
    let run = |p: f64| {
        let (t, _) = with_cluster(4, 7, move |ctx, sc| {
            sc.failure.task_failure_prob = p;
            sc.failure.failure_waste = SimTime::from_millis(100);
            sc.failure.max_task_attempts = 1000;
            let rdd = sc.parallelize(ctx, (0..400u64).collect(), 40);
            let before = ctx.now();
            for salt in 0..5 {
                let s = rdd.sample(0.5, salt);
                let _ = sc.count(ctx, &s);
            }
            ctx.now() - before
        });
        t
    };
    let clean = run(0.0);
    let faulty = run(0.2);
    assert!(
        faulty > clean,
        "failures must cost time: {clean:?} vs {faulty:?}"
    );
}

#[test]
fn retry_budget_exhaustion_aborts_the_job() {
    let (got, _) = with_cluster(2, 5, |ctx, sc| {
        sc.failure.task_failure_prob = 1.0;
        sc.failure.max_task_attempts = 3;
        let rdd = sc.parallelize(ctx, vec![1u64], 1);
        sc.run_job(ctx, &rdd, |p, _| p.len(), |_| 8).err()
    });
    match got {
        Some(e) => assert!(e.to_string().contains("failed 3 times")),
        None => panic!("job should have aborted"),
    }
}

#[test]
fn executor_loss_recovers_by_respawn_and_lineage_recompute() {
    let mut sim = SimBuilder::new().seed(11).build();
    let executors = deploy_executors(&mut sim, 3);
    let victim = executors[1];
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        sc.failure.liveness_poll = SimTime::from_secs_f64(1.0);
        let rdd = sc
            .source(6, |part, _w| vec![(part as u64 + 1) * 100])
            .cache();
        let before = sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b);
        // Simulate a machine dying between stages.
        ctx.kill(victim);
        let after = sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b);
        (before, after, sc.executors_replaced)
    });
    sim.run().unwrap();
    let (before, after, replaced) = out.take();
    assert_eq!(before, Some(2100));
    assert_eq!(
        after,
        Some(2100),
        "lineage recompute must restore lost data"
    );
    assert_eq!(replaced, 1);
}

#[test]
fn executor_loss_mid_job_is_detected_by_liveness_poll() {
    let mut sim = SimBuilder::new().seed(13).build();
    let executors = deploy_executors(&mut sim, 2);
    let victim = executors[0];
    // A saboteur kills an executor shortly after the job starts.
    sim.spawn("saboteur", move |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.kill(victim);
    });
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        sc.failure.liveness_poll = SimTime::from_secs_f64(2.0);
        // Tasks long enough that the kill lands while they are in flight.
        let rdd = sc.source(4, |part, w| {
            w.sim.advance(SimTime::from_millis(500));
            vec![part as u64]
        });
        sc.reduce_partitions(ctx, &rdd, |p, _| p.iter().sum::<u64>(), |a, b| a + b)
    });
    sim.run().unwrap();
    assert_eq!(out.take(), Some(1 + 2 + 3));
}

#[test]
fn stuck_non_executor_dependency_aborts_instead_of_livelocking() {
    // A task blocks against a process that is alive but never answers — not
    // an executor, so the timeout branch's executor checks find nothing to
    // redispatch, and no probe owns the dependency. The scheduler used to
    // re-poll that state forever (driver livelock); now it errors out after
    // `max_fruitless_polls`.
    use ps2_dataflow::JobError;
    let mut sim = SimBuilder::new().seed(17).build();
    let executors = deploy_executors(&mut sim, 2);
    let blackhole = sim.spawn_daemon("blackhole", |ctx| loop {
        let _ = ctx.recv(); // swallow every request, reply to none
    });
    let out = sim.spawn_collect("driver", move |ctx| {
        let mut sc = SparkContext::new(executors);
        sc.failure.liveness_poll = SimTime::from_secs_f64(1.0);
        sc.failure.max_fruitless_polls = 3;
        let rdd = sc.source(1, move |_p, w| {
            let _ = w.sim.call(blackhole, 7, (), 8);
            vec![0u64]
        });
        sc.run_job(ctx, &rdd, |p, _| p.len(), |_| 8).err()
    });
    sim.run().unwrap();
    match out.take() {
        Some(JobError::LivenessTimeout {
            outstanding,
            fruitless_polls,
        }) => {
            assert_eq!(outstanding, 1);
            assert_eq!(fruitless_polls, 3);
        }
        other => panic!("expected LivenessTimeout, got {other:?}"),
    }
}

#[test]
fn engine_runs_are_deterministic() {
    let run = || {
        let (t, report) = with_cluster(5, 21, |ctx, sc| {
            sc.failure.task_failure_prob = 0.1;
            sc.failure.max_task_attempts = 100;
            let rdd = sc.parallelize(ctx, (0..2000u64).collect(), 25).cache();
            for salt in 0..4 {
                let _ = sc.count(ctx, &rdd.sample(0.3, salt));
            }
            ctx.now()
        });
        (t, report.total_msgs, report.total_bytes)
    };
    assert_eq!(run(), run());
}
