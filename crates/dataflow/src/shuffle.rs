//! Wide (shuffle) operations: `group_by_key` / `reduce_by_key`.
//!
//! The paper's pipeline starts with Spark "collecting and cleaning" data —
//! work that needs shuffles even though the ML training itself doesn't.
//! This module implements Spark's external-shuffle-service design: each
//! executor machine hosts a *shuffle service* daemon; map tasks write their
//! key-hashed buckets to the local service, reduce tasks fetch their bucket
//! from every service. The map→reduce barrier is the driver's stage
//! boundary, and shuffle blocks survive executor loss (the service is a
//! separate process, exactly why Spark externalized it).

use std::any::Any;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ps2_simnet::fabric::{self, FabricPolicy, StaticRoutes};
use ps2_simnet::hostprof::{self, Scope as ProfScope};
use ps2_simnet::{ProcId, SimCtx, SimRuntime, SimTime, WireSize};

use crate::executor::WorkCtx;
use crate::rdd::Rdd;
use crate::scheduler::{JobError, SparkContext};

/// Message tags for the shuffle service.
mod tags {
    pub const PUT_BUCKETS: u32 = 20;
    pub const FETCH_BUCKET: u32 = 21;
    pub const CLEAR: u32 = 22;

    /// Symbolic name for a tag, for diagnostics.
    pub fn name(tag: u32) -> &'static str {
        match tag {
            PUT_BUCKETS => "PUT_BUCKETS",
            FETCH_BUCKET => "FETCH_BUCKET",
            CLEAR => "CLEAR",
            _ => "?",
        }
    }
}

/// A unique id per shuffle stage.
static NEXT_SHUFFLE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Shuffle traffic rides the shared request fabric. Services are never
/// replaced ([`StaticRoutes`], epoch pinned at 0), so the stale-attempts
/// bound turns a dead service into a loud panic after five 10-second
/// attempts instead of the former unbounded wait. Puts are idempotent by
/// map partition, so a fabric resend racing a slow service is harmless.
fn shuffle_policy() -> FabricPolicy {
    FabricPolicy {
        attempt_timeout: SimTime::from_secs_f64(10.0),
        max_stale_attempts: 5,
        scope: "shuffle.fabric",
    }
}

#[derive(Clone)]
struct PutBuckets {
    shuffle: u64,
    /// Which map partition produced these buckets. Keying the store by this
    /// makes puts idempotent: a map task retried after an executor died
    /// post-write overwrites its own buckets instead of duplicating them.
    map_part: usize,
    /// `buckets[r]` = erased `Vec<(K, V)>` destined for reduce partition `r`.
    buckets: Vec<Arc<dyn Any + Send + Sync>>,
    /// Wire size of each bucket, so fetch replies can be costed.
    bucket_bytes: Vec<u64>,
}

#[derive(Clone)]
struct FetchBucket {
    shuffle: u64,
    reduce: usize,
}

/// The per-machine shuffle service loop.
pub fn shuffle_service_main(ctx: &mut SimCtx) {
    // (shuffle id, reduce partition) -> map partition -> (block, bytes).
    // The inner key makes re-puts from retried map tasks idempotent.
    type Blocks = std::collections::BTreeMap<usize, (Arc<dyn Any + Send + Sync>, u64)>;
    let mut store: HashMap<(u64, usize), Blocks> = HashMap::new();
    loop {
        let env = ctx.recv();
        match env.tag {
            tags::PUT_BUCKETS => {
                let put: &PutBuckets = env.downcast_ref();
                for (r, (block, bytes)) in put.buckets.iter().zip(&put.bucket_bytes).enumerate() {
                    store
                        .entry((put.shuffle, r))
                        .or_default()
                        .insert(put.map_part, (Arc::clone(block), *bytes));
                }
                ctx.reply(&env, (), 8);
            }
            tags::FETCH_BUCKET => {
                let fetch: &FetchBucket = env.downcast_ref();
                let entries = store
                    .get(&(fetch.shuffle, fetch.reduce))
                    .cloned()
                    .unwrap_or_default();
                let bytes: u64 = 16 + entries.values().map(|(_, b)| b).sum::<u64>();
                let blocks: Vec<Arc<dyn Any + Send + Sync>> =
                    entries.into_values().map(|(b, _)| b).collect();
                ctx.reply(&env, blocks, bytes);
            }
            tags::CLEAR => {
                let shuffle: &u64 = env.downcast_ref();
                store.retain(|(s, _), _| s != shuffle);
                ctx.reply(&env, (), 8);
            }
            other => panic!(
                "{} (proc {}): unknown tag {} ({}) from proc {} — \
                 shuffle services speak PUT_BUCKETS/FETCH_BUCKET/CLEAR only; \
                 a message was misrouted or a tag constant diverged",
                ctx.proc_name(),
                ctx.id().0,
                other,
                tags::name(other),
                env.src.0
            ),
        }
    }
}

/// Deploy one shuffle service per executor machine.
pub fn deploy_shuffle_services(sim: &mut SimRuntime, executors: usize) -> Vec<ProcId> {
    (0..executors)
        .map(|i| sim.spawn_daemon(&format!("shuffle-{i}"), shuffle_service_main))
        .collect()
}

fn hash_key<K: Hash>(k: &K, parts: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() as usize) % parts
}

impl SparkContext {
    /// `reduce_by_key`: shuffle `(K, V)` pairs by key hash, combining values
    /// with `combine`. Returns one output partition per shuffle service.
    /// The per-pair wire size is estimated with [`WireSize`].
    pub fn reduce_by_key<K, V>(
        &mut self,
        ctx: &mut SimCtx,
        services: &[ProcId],
        rdd: &Rdd<(K, V)>,
        combine: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Result<Rdd<(K, V)>, JobError>
    where
        K: Clone + Send + Sync + Hash + Eq + Ord + WireSize + 'static,
        V: Clone + Send + Sync + WireSize + 'static,
    {
        let shuffle = NEXT_SHUFFLE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n_reduce = services.len();
        assert!(n_reduce > 0, "need at least one shuffle service");
        let combine = Arc::new(combine);

        // Map stage: pre-combine locally (Spark's map-side combine), hash
        // into buckets, write to the local shuffle service.
        let services_map: Vec<ProcId> = services.to_vec();
        let comb = Arc::clone(&combine);
        self.run_job(
            ctx,
            rdd,
            move |pairs, w: &mut WorkCtx<'_, '_>| {
                let mut local: HashMap<K, V> = HashMap::new();
                for (k, v) in pairs.iter().cloned() {
                    match local.remove(&k) {
                        Some(acc) => {
                            local.insert(k, comb(acc, v));
                        }
                        None => {
                            local.insert(k, v);
                        }
                    }
                }
                w.charge_scan(pairs.len());
                let mut buckets: Vec<Vec<(K, V)>> = (0..n_reduce).map(|_| Vec::new()).collect();
                for (k, v) in local {
                    buckets[hash_key(&k, n_reduce)].push((k, v));
                }
                let bucket_bytes: Vec<u64> = {
                    let _prof = hostprof::scope(ProfScope::CodecEncode);
                    buckets
                        .iter()
                        .map(|b| {
                            8 + b
                                .iter()
                                .map(|(k, v)| k.wire_size() + v.wire_size())
                                .sum::<u64>()
                        })
                        .collect()
                };
                let total: u64 = bucket_bytes.iter().sum();
                let erased: Vec<Arc<dyn Any + Send + Sync>> = buckets
                    .into_iter()
                    .map(|b| Arc::new(b) as Arc<dyn Any + Send + Sync>)
                    .collect();
                // Local write: the service shares the machine, but it is a
                // distinct process — modelled as a cheap same-rack hop.
                let slot = w.partition % services_map.len();
                let put = PutBuckets {
                    shuffle,
                    map_part: w.partition,
                    buckets: erased,
                    bucket_bytes,
                };
                let _ = fabric::call_slot(
                    w.sim,
                    &StaticRoutes(services_map.clone()),
                    &shuffle_policy(),
                    "put_buckets",
                    tags::PUT_BUCKETS,
                    slot,
                    put,
                    64 + total,
                    1,
                );
            },
            |_| 8,
        )?;

        // Reduce stage: a source RDD whose partitions fetch their bucket
        // from every service and merge.
        let services_fetch: Vec<ProcId> = services.to_vec();
        let comb = combine;
        Ok(Rdd::from_source(n_reduce, move |reduce_part, w| {
            let reqs = (0..services_fetch.len())
                .map(|slot| {
                    let fetch = FetchBucket {
                        shuffle,
                        reduce: reduce_part,
                    };
                    (slot, fetch, 64)
                })
                .collect();
            let replies = fabric::call_slots(
                w.sim,
                &StaticRoutes(services_fetch.clone()),
                &shuffle_policy(),
                "fetch_bucket",
                tags::FETCH_BUCKET,
                reqs,
                1,
            );
            let mut merged: HashMap<K, V> = HashMap::new();
            let mut n = 0usize;
            for env in replies {
                let blocks = env.downcast::<Vec<Arc<dyn Any + Send + Sync>>>();
                for block in blocks {
                    let pairs = block
                        .downcast_ref::<Vec<(K, V)>>()
                        .expect("shuffle block type mismatch");
                    for (k, v) in pairs.iter().cloned() {
                        n += 1;
                        match merged.remove(&k) {
                            Some(acc) => {
                                merged.insert(k, comb(acc, v));
                            }
                            None => {
                                merged.insert(k, v);
                            }
                        }
                    }
                }
            }
            w.charge_scan(n);
            let mut out: Vec<(K, V)> = merged.into_iter().collect();
            // Deterministic output order.
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }))
    }

    /// `group_by_key` built on [`SparkContext::reduce_by_key`] over vectors.
    pub fn group_by_key<K, V>(
        &mut self,
        ctx: &mut SimCtx,
        services: &[ProcId],
        rdd: &Rdd<(K, V)>,
    ) -> Result<Rdd<(K, Vec<V>)>, JobError>
    where
        K: Clone + Send + Sync + Hash + Eq + Ord + WireSize + 'static,
        V: Clone + Send + Sync + WireSize + 'static,
    {
        let listed = rdd.map(|(k, v)| (k.clone(), vec![v.clone()]));
        self.reduce_by_key(ctx, services, &listed, |mut a, mut b| {
            a.append(&mut b);
            a
        })
    }

    /// Drop a finished shuffle's blocks on every service.
    pub fn clear_shuffles(&mut self, ctx: &mut SimCtx, services: &[ProcId], shuffle: u64) {
        let reqs = services
            .iter()
            .map(|&s| {
                (
                    s,
                    tags::CLEAR,
                    Box::new(shuffle) as Box<dyn Any + Send>,
                    16u64,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }
}
