//! Executor processes: task execution, block cache, broadcast store.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use rand::Rng;

use ps2_simnet::{ProcId, SimCtx, SimRuntime, SimTime};

use crate::broadcast::BroadcastValue;
use crate::rdd::RddId;

/// Protocol tags between driver and executors.
pub(crate) mod tags {
    pub const TASK: u32 = 1;
    pub const BROADCAST: u32 = 2;
    pub const CLEAR_CACHE: u32 = 3;
    pub const DROP_BROADCAST: u32 = 4;
    pub const BROADCAST_RELAY: u32 = 5;

    /// Symbolic name for a tag, for diagnostics.
    pub fn name(tag: u32) -> &'static str {
        match tag {
            TASK => "TASK",
            BROADCAST => "BROADCAST",
            CLEAR_CACHE => "CLEAR_CACHE",
            DROP_BROADCAST => "DROP_BROADCAST",
            BROADCAST_RELAY => "BROADCAST_RELAY",
            _ => "?",
        }
    }
}

/// Type-erased task body: runs on an executor, returns the boxed result and
/// its wire size.
pub(crate) type TaskJob =
    Arc<dyn Fn(&mut WorkCtx<'_, '_>) -> (Box<dyn Any + Send>, u64) + Send + Sync>;

/// A fully type-erased unit of work shipped to an executor.
pub(crate) struct TaskSpec {
    /// Executes the task, returning the boxed result and its wire size.
    pub job: TaskJob,
    pub partition: usize,
    /// Probability that this attempt fails before doing any side-effecting
    /// work (the paper's task-failure model: the PS push is a task's final
    /// operation, so an aborted task has pushed nothing).
    pub failure_prob: f64,
    /// Virtual time wasted by a failed attempt before the failure is
    /// reported.
    pub failure_waste: SimTime,
}

/// Reply payload for a task.
pub(crate) enum TaskResult {
    Ok(Box<dyn Any + Send>),
    Failed,
}

/// Executor-resident state and simulator access, handed to task closures.
///
/// The `sim` field is public: tasks charge their own compute time and issue
/// parameter-server RPCs through it (that is how PS2 workers talk to
/// PS-servers from inside an RDD operation).
pub struct WorkCtx<'a, 'b> {
    pub sim: &'a mut SimCtx,
    /// Partition index this task is computing.
    pub partition: usize,
    cache: &'b mut BlockCache,
    broadcasts: &'b HashMap<u64, BroadcastValue>,
    user_state: &'b mut HashMap<(u64, usize), Box<dyn Any + Send>>,
}

impl<'a, 'b> WorkCtx<'a, 'b> {
    pub(crate) fn cache_get(&self, rdd: RddId, part: usize) -> Option<Arc<dyn Any + Send + Sync>> {
        self.cache.blocks.get(&(rdd, part)).cloned()
    }

    pub(crate) fn cache_put(&mut self, rdd: RddId, part: usize, data: Arc<dyn Any + Send + Sync>) {
        self.cache.blocks.insert((rdd, part), data);
    }

    /// Take persistent per-`(key, partition)` executor state left by a
    /// previous task (e.g. GBDT's instance→node assignment, LDA's topic
    /// assignments). Returns `None` on first use or after executor loss —
    /// callers must be able to rebuild, which keeps recovery correct.
    /// Pair with [`WorkCtx::put_state`].
    pub fn take_state<T: Send + 'static>(&mut self, key: u64) -> Option<T> {
        self.user_state
            .remove(&(key, self.partition))
            .map(|b| *b.downcast::<T>().expect("executor state type mismatch"))
    }

    /// Store persistent per-`(key, partition)` state for later tasks.
    pub fn put_state<T: Send + 'static>(&mut self, key: u64, value: T) {
        self.user_state
            .insert((key, self.partition), Box::new(value));
    }

    /// Fetch a broadcast variable previously registered by the driver.
    pub fn broadcast<T: Send + Sync + 'static>(&self, b: &crate::Broadcast<T>) -> Arc<T> {
        let v = self
            .broadcasts
            .get(&b.id)
            .unwrap_or_else(|| panic!("broadcast {} not present on this executor", b.id));
        Arc::clone(&v.value)
            .downcast::<T>()
            .expect("broadcast type mismatch")
    }
}

/// Cached materialized partitions, keyed by `(rdd id, partition)`.
#[derive(Default)]
struct BlockCache {
    blocks: HashMap<(RddId, usize), Arc<dyn Any + Send + Sync>>,
}

/// The executor server loop. Runs until the simulation shuts down (daemon)
/// or the executor is killed.
pub fn executor_main(ctx: &mut SimCtx) {
    let mut cache = BlockCache::default();
    let mut broadcasts: HashMap<u64, BroadcastValue> = HashMap::new();
    let mut user_state: HashMap<(u64, usize), Box<dyn Any + Send>> = HashMap::new();
    loop {
        let env = ctx.recv();
        // A task that timed out a PS request and retried can still receive
        // the original reply later (the server was slow, not dead). By then
        // the task has moved on, so the reply lands here, between tasks —
        // drop it rather than mis-parse it as a driver request.
        if env.is_reply() {
            continue;
        }
        match env.tag {
            tags::TASK => {
                let spec: &Arc<TaskSpec> = env.downcast_ref();
                let spec = Arc::clone(spec);
                ctx.trace_mark_with("executor.task.start", spec.partition as u64);
                ctx.metric_add("executor.tasks", 1);
                // All compute this task charges (overhead, RDD
                // materialization, the job body) shows up under one label in
                // the trace's per-op compute breakdown.
                ctx.op_label("spark.task");
                ctx.charge_task_overhead();
                if spec.failure_prob > 0.0 && ctx.rng().gen::<f64>() < spec.failure_prob {
                    ctx.advance(spec.failure_waste);
                    ctx.metric_add("executor.task_failures", 1);
                    ctx.op_label_clear();
                    ctx.reply(&env, TaskResult::Failed, 16);
                    continue;
                }
                let (value, bytes) = {
                    let mut w = WorkCtx {
                        sim: ctx,
                        partition: spec.partition,
                        cache: &mut cache,
                        broadcasts: &broadcasts,
                        user_state: &mut user_state,
                    };
                    (spec.job)(&mut w)
                };
                ctx.op_label_clear();
                ctx.reply(&env, TaskResult::Ok(value), bytes);
            }
            tags::BROADCAST => {
                // Direct (non-relayed) broadcast: store and ack in place.
                let v: &BroadcastValue = env.downcast_ref();
                broadcasts.insert(v.id, v.clone());
                ctx.reply(&env, (), 4);
            }
            tags::BROADCAST_RELAY => {
                // Torrent-style: store, forward to child subtrees, ack the
                // driver via the pre-allocated token.
                let ship: &crate::broadcast::BroadcastShip = env.downcast_ref();
                let ship = ship.clone();
                broadcasts.insert(ship.value.id, ship.value.clone());
                for child in &ship.children {
                    let next = crate::broadcast::BroadcastShip {
                        value: ship.value.clone(),
                        ack_to: ship.ack_to,
                        ack_token: child.ack_token,
                        children: child.children.clone(),
                    };
                    ctx.send(child.node, tags::BROADCAST_RELAY, next, ship.value.bytes);
                }
                ctx.send_token_reply(ship.ack_to, tags::BROADCAST_RELAY, ship.ack_token, (), 8);
            }
            tags::DROP_BROADCAST => {
                let id: &u64 = env.downcast_ref();
                broadcasts.remove(id);
                ctx.reply(&env, (), 4);
            }
            tags::CLEAR_CACHE => {
                cache.blocks.clear();
                user_state.clear();
                ctx.reply(&env, (), 4);
            }
            other => panic!(
                "{} (proc {}): unknown tag {} ({}) from proc {} — \
                 executors speak TASK/BROADCAST/CLEAR_CACHE/DROP_BROADCAST/\
                 BROADCAST_RELAY only; a message was misrouted or a tag \
                 constant diverged",
                ctx.proc_name(),
                ctx.id().0,
                other,
                tags::name(other),
                env.src.0
            ),
        }
    }
}

/// Spawn `n` executor daemons on a runtime being assembled.
pub fn deploy_executors(sim: &mut SimRuntime, n: usize) -> Vec<ProcId> {
    (0..n)
        .map(|i| sim.spawn_daemon(&format!("executor-{i}"), executor_main))
        .collect()
}
