//! Worker-to-worker collectives, used to emulate AllReduce-based systems
//! (the paper's XGBoost baseline, §6.3.2).
//!
//! A collective stage must be launched with **exactly one task per
//! executor** (`partitions == executors`): all participants run
//! concurrently, exchanging messages directly between executor processes
//! while the driver waits at the stage barrier.

use ps2_simnet::ProcId;

use crate::executor::WorkCtx;

/// Message tag for ring traffic (distinct from the driver protocol tags).
const RING_TAG: u32 = 7;

struct RingChunk {
    step_kind: u8, // 0 = reduce-scatter, 1 = allgather
    step: usize,
    chunk_idx: usize,
    values: Vec<f64>,
}

/// Ring AllReduce (sum) over `data`, in place.
///
/// `peers` are the executor processes in rank order and `my_rank` is this
/// task's position. Each rank sends and receives `2 · (W-1) · n/W` values —
/// the classic bandwidth-optimal ring, and exactly the cost structure that
/// makes AllReduce-based GBDT split finding expensive compared to pushing
/// partial histograms to parameter servers.
pub fn ring_allreduce_sum(
    w: &mut WorkCtx<'_, '_>,
    peers: &[ProcId],
    my_rank: usize,
    data: &mut [f64],
    value_bytes: u64,
) {
    let n_ranks = peers.len();
    assert!(my_rank < n_ranks);
    if n_ranks <= 1 {
        return;
    }
    let n = data.len();
    let bounds: Vec<usize> = (0..=n_ranks).map(|i| i * n / n_ranks).collect();
    let next = peers[(my_rank + 1) % n_ranks];

    let send_chunk = |w: &mut WorkCtx<'_, '_>, kind: u8, step: usize, idx: usize, data: &[f64]| {
        let values = data[bounds[idx]..bounds[idx + 1]].to_vec();
        let bytes = 24 + value_bytes * values.len() as u64;
        w.sim.send(
            next,
            RING_TAG,
            RingChunk {
                step_kind: kind,
                step,
                chunk_idx: idx,
                values,
            },
            bytes,
        );
    };

    let recv_chunk = |w: &mut WorkCtx<'_, '_>, kind: u8, step: usize| -> (usize, Vec<f64>) {
        let env = w.sim.recv();
        assert_eq!(env.tag, RING_TAG, "unexpected message during collective");
        let chunk = env.downcast::<RingChunk>();
        assert_eq!(
            (chunk.step_kind, chunk.step),
            (kind, step),
            "ring protocol out of step"
        );
        (chunk.chunk_idx, chunk.values)
    };

    // Reduce-scatter: after W-1 steps, this rank holds the fully reduced
    // chunk (my_rank + 1) mod W.
    for step in 0..n_ranks - 1 {
        let send_idx = (my_rank + n_ranks - step) % n_ranks;
        send_chunk(w, 0, step, send_idx, data);
        let (idx, values) = recv_chunk(w, 0, step);
        debug_assert_eq!(idx, (my_rank + n_ranks - step - 1) % n_ranks);
        let dst = &mut data[bounds[idx]..bounds[idx + 1]];
        for (d, v) in dst.iter_mut().zip(&values) {
            *d += v;
        }
        w.sim.charge_flops(values.len() as u64);
    }
    // Allgather: circulate the reduced chunks.
    for step in 0..n_ranks - 1 {
        let send_idx = (my_rank + 1 + n_ranks - step) % n_ranks;
        send_chunk(w, 1, step, send_idx, data);
        let (idx, values) = recv_chunk(w, 1, step);
        debug_assert_eq!(idx, (my_rank + n_ranks - step) % n_ranks);
        data[bounds[idx]..bounds[idx + 1]].copy_from_slice(&values);
    }
}
