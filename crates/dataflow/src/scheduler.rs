//! The driver-side scheduler: job execution, retries, executor recovery.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use ps2_simnet::fabric::{Dispatcher, FabricPolicy};
use ps2_simnet::hostprof::{self, Scope as ProfScope};
use ps2_simnet::{LivenessProbe, ProcId, SimCtx, SimTime, WireSize};

use crate::broadcast::{Broadcast, BroadcastValue};
use crate::executor::{executor_main, tags, TaskJob, TaskResult, TaskSpec, WorkCtx};
use crate::rdd::{materialize_any, Rdd};

/// Failure-injection and recovery policy.
///
/// Retry semantics follow the paper (§5.3): a side-effecting operation —
/// a PS push, a shuffle write — should be a task's *final* operation, so a
/// task that failed before it can be re-run safely. The shuffle service
/// additionally keys writes by map partition (idempotent re-puts). PS
/// *gradient pushes* retain the paper's caveat: an executor dying in the
/// narrow window between a successful push and the task reply causes that
/// partition's gradient to be applied twice on retry — statistically
/// harmless for SGD, and inherent to the protocol being reproduced.
#[derive(Clone, Debug)]
pub struct FailureConfig {
    /// Probability that a task attempt fails (Figure 13(c) sweeps this).
    pub task_failure_prob: f64,
    /// Virtual time a failed attempt wastes before reporting.
    pub failure_waste: SimTime,
    /// Attempts per task before the job aborts.
    pub max_task_attempts: u32,
    /// How long the driver waits on task replies before polling executor
    /// liveness (executor-loss detection).
    pub liveness_poll: SimTime,
    /// Consecutive liveness polls that find nothing to fix (no reply, no
    /// dead executor, no probe recovery) before the job aborts. Tasks can
    /// be stuck on a *non-executor* dependency — a dead process none of the
    /// registered probes owns — and without this bound the timeout branch
    /// would re-poll forever (a driver livelock rather than a simulator
    /// deadlock, since the deadline keeps the driver runnable).
    pub max_fruitless_polls: u32,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            task_failure_prob: 0.0,
            failure_waste: SimTime::from_millis(50),
            max_task_attempts: 4,
            liveness_poll: SimTime::from_secs_f64(30.0),
            max_fruitless_polls: 32,
        }
    }
}

/// A job failed permanently.
#[derive(Debug, Clone)]
pub enum JobError {
    /// Some task exhausted its retry budget.
    TaskRetriesExhausted { partition: usize, attempts: u32 },
    /// Outstanding tasks made no progress across the configured number of
    /// liveness polls: every tracked executor is alive and no registered
    /// probe found anything to recover, yet no reply arrives. The tasks are
    /// stuck on an unrecoverable dependency.
    LivenessTimeout {
        outstanding: usize,
        fruitless_polls: u32,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::TaskRetriesExhausted {
                partition,
                attempts,
            } => write!(
                f,
                "task for partition {partition} failed {attempts} times; aborting job"
            ),
            JobError::LivenessTimeout {
                outstanding,
                fruitless_polls,
            } => write!(
                f,
                "{outstanding} task(s) made no progress across {fruitless_polls} liveness \
                 polls with all executors alive and nothing for probes to recover; \
                 aborting job instead of polling forever"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Driver-side entry point to the dataflow engine. Lives inside the driver
/// process; every method that talks to the cluster takes the driver's
/// [`SimCtx`].
pub struct SparkContext {
    executors: Vec<ProcId>,
    next_broadcast: u64,
    /// Broadcast registry kept for re-seeding replacement executors.
    broadcasts: Vec<BroadcastValue>,
    pub failure: FailureConfig,
    /// Declared wire size of a serialized task closure.
    pub task_bytes: u64,
    /// Count of executors replaced after being detected dead.
    pub executors_replaced: u64,
    /// Count of task attempts that failed and were retried.
    pub task_retries: u64,
    /// Jobs run so far — doubles as the job id carried on the
    /// `spark.job.*` trace marks.
    jobs_submitted: u64,
    respawn_counter: u64,
    /// Liveness probes consulted by the scheduler's timeout branch: each
    /// checks one non-executor dependency (e.g. the PS-server fleet) and
    /// recovers it when dead, so a job stuck on it resumes *mid-run*
    /// instead of waiting for the driver code between jobs to notice.
    probes: Vec<Arc<dyn LivenessProbe>>,
}

impl SparkContext {
    pub fn new(executors: Vec<ProcId>) -> SparkContext {
        assert!(!executors.is_empty(), "need at least one executor");
        SparkContext {
            executors,
            next_broadcast: 1,
            broadcasts: Vec::new(),
            failure: FailureConfig::default(),
            task_bytes: 2048,
            executors_replaced: 0,
            task_retries: 0,
            jobs_submitted: 0,
            respawn_counter: 0,
            probes: Vec::new(),
        }
    }

    /// Register a [`LivenessProbe`] the scheduler runs whenever a liveness
    /// poll times out — in addition to its own executor checks.
    pub fn register_probe(&mut self, probe: Arc<dyn LivenessProbe>) {
        self.probes.push(probe);
    }

    pub fn num_executors(&self) -> usize {
        self.executors.len()
    }

    pub fn executors(&self) -> &[ProcId] {
        &self.executors
    }

    // ---- dataset creation --------------------------------------------------

    /// Distribute an in-memory collection (the data is *shipped* to the
    /// executors lazily as lineage; the driver pays no transfer here because
    /// each partition generator captures its slice).
    pub fn parallelize<T: Clone + Send + Sync + 'static>(
        &mut self,
        _ctx: &mut SimCtx,
        data: Vec<T>,
        partitions: usize,
    ) -> Rdd<T> {
        let data = Arc::new(data);
        let n = data.len();
        Rdd::from_source(partitions, move |part, _w| {
            let lo = part * n / partitions;
            let hi = (part + 1) * n / partitions;
            data[lo..hi].to_vec()
        })
    }

    /// Create a dataset from a deterministic per-partition generator — the
    /// stand-in for reading HDFS splits. Regeneration after executor loss is
    /// exactly a re-read.
    pub fn source<T, F>(&mut self, partitions: usize, gen: F) -> Rdd<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &mut WorkCtx<'_, '_>) -> Vec<T> + Send + Sync + 'static,
    {
        Rdd::from_source(partitions, gen)
    }

    // ---- broadcast ----------------------------------------------------------

    /// Broadcast a value to every executor, torrent-style (like Spark's
    /// TorrentBroadcast): the value travels down a binary relay tree among
    /// the executors, so the driver sends only one copy and the makespan is
    /// `O(log executors)` transfer times rather than `O(executors)`.
    pub fn broadcast<T: Send + Sync + 'static>(
        &mut self,
        ctx: &mut SimCtx,
        value: T,
        bytes: u64,
    ) -> Broadcast<T> {
        let id = self.next_broadcast;
        self.next_broadcast += 1;
        let bv = BroadcastValue {
            id,
            value: Arc::new(value),
            bytes,
        };
        self.broadcasts.push(bv.clone());

        // Binary relay tree over executor indices; one ack token per node.
        let me = ctx.id();
        let mut tokens = Vec::with_capacity(self.executors.len());
        for _ in 0..self.executors.len() {
            tokens.push(ctx.alloc_reply_token());
        }
        fn subtree(
            executors: &[ProcId],
            tokens: &[u64],
            i: usize,
        ) -> crate::broadcast::BroadcastTree {
            let mut children = Vec::new();
            for c in [2 * i + 1, 2 * i + 2] {
                if c < executors.len() {
                    children.push(subtree(executors, tokens, c));
                }
            }
            crate::broadcast::BroadcastTree {
                node: executors[i],
                ack_token: tokens[i],
                children,
            }
        }
        let root = subtree(&self.executors, &tokens, 0);
        let ship = crate::broadcast::BroadcastShip {
            value: bv,
            ack_to: me,
            ack_token: root.ack_token,
            children: root.children,
        };
        ctx.send(self.executors[0], tags::BROADCAST_RELAY, ship, bytes);
        let mut pending = tokens;
        while !pending.is_empty() {
            let env = ctx
                .recv_reply(&pending, None)
                .expect("broadcast ack wait failed");
            pending.retain(|&t| t != env.corr);
        }
        Broadcast {
            id,
            _marker: PhantomData,
        }
    }

    /// Release a broadcast variable on the driver and every executor.
    /// Iterative drivers that broadcast a fresh model each round (the MLlib
    /// loop) must drop the previous one or executor memory grows without
    /// bound.
    pub fn drop_broadcast<T>(&mut self, ctx: &mut SimCtx, b: Broadcast<T>) {
        self.broadcasts.retain(|bv| bv.id != b.id);
        let reqs = self
            .executors
            .iter()
            .map(|&e| {
                (
                    e,
                    tags::DROP_BROADCAST,
                    Box::new(b.id) as Box<dyn Any + Send>,
                    16u64,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }

    /// Broadcast with automatic wire sizing.
    pub fn broadcast_t<T: Send + Sync + WireSize + 'static>(
        &mut self,
        ctx: &mut SimCtx,
        value: T,
    ) -> Broadcast<T> {
        let bytes = {
            let _prof = hostprof::scope(ProfScope::CodecEncode);
            value.wire_size()
        };
        self.broadcast(ctx, value, bytes)
    }

    // ---- job execution -------------------------------------------------------

    /// Run one task per partition of `rdd`; each task materializes its
    /// partition and applies `f`. Returns per-partition results in
    /// partition order. This is the engine's only stage primitive — every
    /// action is sugar over it.
    pub fn run_job<T, R>(
        &mut self,
        ctx: &mut SimCtx,
        rdd: &Rdd<T>,
        f: impl Fn(&[T], &mut WorkCtx<'_, '_>) -> R + Send + Sync + 'static,
        result_bytes: impl Fn(&R) -> u64 + Send + Sync + 'static,
    ) -> Result<Vec<R>, JobError>
    where
        T: Clone + Send + Sync + 'static,
        R: Send + 'static,
    {
        let node = rdd.erased();
        let f = Arc::new(f);
        let result_bytes = Arc::new(result_bytes);
        let jobs: Vec<TaskJob> = (0..rdd.partitions())
            .map(|part| {
                let node = Arc::clone(&node);
                let f = Arc::clone(&f);
                let result_bytes = Arc::clone(&result_bytes);
                Arc::new(move |w: &mut WorkCtx<'_, '_>| {
                    let data = materialize_any(&node, part, w);
                    let typed = data
                        .downcast_ref::<Vec<T>>()
                        .expect("job input type mismatch");
                    let r = f(typed, w);
                    let bytes = result_bytes(&r);
                    (Box::new(r) as Box<dyn Any + Send>, bytes)
                }) as TaskJob
            })
            .collect();

        let raw = self.run_tasks(ctx, jobs)?;
        Ok(raw
            .into_iter()
            .map(|b| *b.downcast::<R>().expect("job result type mismatch"))
            .collect())
    }

    /// Scatter the erased tasks across executors (partition `p` prefers
    /// executor `p % E`), gather replies, retry failures, replace dead
    /// executors.
    ///
    /// Correlation bookkeeping and deadline waits live in the fabric's
    /// streaming [`Dispatcher`] (metrics under `spark.fabric.*`); retry
    /// *policy* — attempt budgets, liveness probing, executor replacement —
    /// stays here, because unlike a PS request a task is re-plannable: a
    /// failed attempt may move to a different executor.
    fn run_tasks(
        &mut self,
        ctx: &mut SimCtx,
        jobs: Vec<TaskJob>,
    ) -> Result<Vec<Box<dyn Any + Send>>, JobError> {
        let n = jobs.len();
        let job_start = ctx.now();
        let job_id = self.jobs_submitted;
        self.jobs_submitted += 1;
        ctx.metric_add("spark.jobs", 1);
        ctx.trace_mark_with("spark.job.submit", job_id);
        let mut results: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
        let mut attempts = vec![0u32; n];
        let mut net = Dispatcher::new(FabricPolicy {
            attempt_timeout: self.failure.liveness_poll,
            max_stale_attempts: self.failure.max_fruitless_polls,
            scope: "spark.fabric",
        });

        let dispatch =
            |sc: &mut SparkContext, ctx: &mut SimCtx, part: usize, net: &mut Dispatcher| {
                let exec_idx = part % sc.executors.len();
                sc.ensure_alive(ctx, exec_idx);
                let spec = Arc::new(TaskSpec {
                    job: Arc::clone(&jobs[part]),
                    partition: part,
                    failure_prob: sc.failure.task_failure_prob,
                    failure_waste: sc.failure.failure_waste,
                });
                ctx.metric_add("spark.tasks_dispatched", 1);
                ctx.trace_mark_with("spark.task.start", part as u64);
                net.dispatch(
                    ctx,
                    sc.executors[exec_idx],
                    tags::TASK,
                    spec,
                    sc.task_bytes,
                    part,
                    exec_idx,
                );
            };

        for part in 0..n {
            dispatch(self, ctx, part, &mut net);
        }
        // In-flight depth, sampled per scheduler step: the windowed
        // telemetry turns this into a per-window task-backlog series.
        ctx.metric_gauge_set("spark.tasks_inflight", net.outstanding() as i64);

        let mut fruitless_polls = 0u32;
        while !net.is_empty() {
            match net.await_any(ctx) {
                Some((sent, env)) => {
                    fruitless_polls = 0;
                    let part = sent.item;
                    ctx.metric_observe("spark.task.latency", ctx.now() - sent.sent_at);
                    match env.downcast::<TaskResult>() {
                        TaskResult::Ok(value) => {
                            ctx.trace_mark_with("spark.task.finish", part as u64);
                            ctx.metric_gauge_set("spark.tasks_inflight", net.outstanding() as i64);
                            results[part] = Some(value);
                        }
                        TaskResult::Failed => {
                            attempts[part] += 1;
                            self.task_retries += 1;
                            ctx.metric_add("spark.task_retries", 1);
                            ctx.trace_mark_with("spark.task.retry", part as u64);
                            if attempts[part] >= self.failure.max_task_attempts {
                                return Err(JobError::TaskRetriesExhausted {
                                    partition: part,
                                    attempts: attempts[part],
                                });
                            }
                            dispatch(self, ctx, part, &mut net);
                        }
                    }
                }
                None => {
                    // Timed out. Tasks can be stuck on the executor itself
                    // *or* on a dependency the executor is blocked against
                    // (a worker mid-PS-request never replies to the driver),
                    // so run the registered dependency probes first — they
                    // recover what they own and report whether they did.
                    ctx.metric_add("spark.liveness_polls", 1);
                    let mut recovered = 0u64;
                    for probe in &self.probes {
                        ctx.metric_add("spark.probe_firings", 1);
                        ctx.trace_mark("spark.probe.fire");
                        recovered += probe.probe(ctx);
                    }
                    ctx.metric_add("spark.probe_recoveries", recovered);
                    // Then reclaim tasks whose executor died and resend.
                    let dead = net.take_dead(|exec_idx| ctx.is_alive(self.executors[exec_idx]));
                    let redispatched = !dead.is_empty();
                    for sent in dead {
                        ctx.metric_add("spark.task_redispatches", 1);
                        dispatch(self, ctx, sent.item, &mut net);
                    }
                    // A poll that fixed nothing is fruitless; too many in a
                    // row means the stuck dependency is outside anything we
                    // can recover, and re-polling forever would livelock.
                    if recovered > 0 || redispatched {
                        fruitless_polls = 0;
                    } else {
                        fruitless_polls += 1;
                        if fruitless_polls >= self.failure.max_fruitless_polls {
                            return Err(JobError::LivenessTimeout {
                                outstanding: net.outstanding(),
                                fruitless_polls,
                            });
                        }
                    }
                }
            }
        }
        ctx.metric_observe("spark.job.latency", ctx.now() - job_start);
        ctx.trace_mark_with("spark.job.finish", job_id);
        Ok(results
            .into_iter()
            .map(|r| r.expect("missing task result"))
            .collect())
    }

    /// Replace a dead executor with a fresh one (lost cache is rebuilt from
    /// lineage on demand) and re-seed broadcast variables.
    fn ensure_alive(&mut self, ctx: &mut SimCtx, exec_idx: usize) {
        if ctx.is_alive(self.executors[exec_idx]) {
            return;
        }
        self.respawn_counter += 1;
        self.executors_replaced += 1;
        let name = format!("executor-{exec_idx}r{}", self.respawn_counter);
        let id = ctx.spawn_daemon(&name, executor_main);
        self.executors[exec_idx] = id;
        for bv in &self.broadcasts {
            let _: ps2_simnet::Envelope = ctx.call(id, tags::BROADCAST, bv.clone(), bv.bytes);
        }
    }

    // ---- actions ------------------------------------------------------------

    /// Gather all elements at the driver (each partition's wire size is the
    /// sum of its elements').
    pub fn collect<T>(&mut self, ctx: &mut SimCtx, rdd: &Rdd<T>) -> Vec<T>
    where
        T: Clone + Send + Sync + WireSize + 'static,
    {
        let parts = self
            .run_job(
                ctx,
                rdd,
                |data, _w| data.to_vec(),
                |r: &Vec<T>| {
                    let _prof = hostprof::scope(ProfScope::CodecEncode);
                    r.wire_size()
                },
            )
            .expect("collect failed");
        parts.into_iter().flatten().collect()
    }

    /// Count elements.
    pub fn count<T>(&mut self, ctx: &mut SimCtx, rdd: &Rdd<T>) -> u64
    where
        T: Clone + Send + Sync + 'static,
    {
        self.run_job(ctx, rdd, |data, _w| data.len() as u64, |_| 8)
            .expect("count failed")
            .into_iter()
            .sum()
    }

    /// Map each partition to a partial result, then combine the partials at
    /// the driver — the MLlib gradient-aggregation pattern. The driver's
    /// in-NIC serializes the incoming partials.
    pub fn reduce_partitions<T, R>(
        &mut self,
        ctx: &mut SimCtx,
        rdd: &Rdd<T>,
        map: impl Fn(&[T], &mut WorkCtx<'_, '_>) -> R + Send + Sync + 'static,
        combine: impl Fn(R, R) -> R,
    ) -> Option<R>
    where
        T: Clone + Send + Sync + 'static,
        R: Send + WireSize + 'static,
    {
        let parts = self
            .run_job(ctx, rdd, map, |r: &R| {
                let _prof = hostprof::scope(ProfScope::CodecEncode);
                r.wire_size()
            })
            .expect("reduce failed");
        parts.into_iter().reduce(combine)
    }

    /// Run `f` over every partition for its side effects and block until all
    /// tasks finish — PS2's global barrier idiom (paper Figure 3, line 19).
    pub fn for_each_partition<T>(
        &mut self,
        ctx: &mut SimCtx,
        rdd: &Rdd<T>,
        f: impl Fn(&[T], &mut WorkCtx<'_, '_>) + Send + Sync + 'static,
    ) -> Result<(), JobError>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.run_job(
            ctx,
            rdd,
            move |data, w| {
                f(data, w);
            },
            |_| 8,
        )
        .map(|_| ())
    }

    /// Drop all cached blocks on every executor.
    pub fn clear_caches(&mut self, ctx: &mut SimCtx) {
        let reqs = self
            .executors
            .iter()
            .map(|&e| {
                (
                    e,
                    tags::CLEAR_CACHE,
                    Box::new(()) as Box<dyn Any + Send>,
                    8u64,
                )
            })
            .collect();
        let _ = ctx.call_many(reqs);
    }
}
