//! Resilient distributed datasets: lineage graphs of narrow transformations.
//!
//! An [`Rdd<T>`] is a driver-side *description* of a partitioned dataset.
//! Nothing is computed until an action runs tasks on executors; a task
//! materializes its partition by walking the lineage, consulting the
//! executor's block cache at `cache()` boundaries. Sources are deterministic
//! functions of `(partition, seed)`, which is exactly what makes lineage
//! recomputation a correct recovery strategy after executor loss.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ps2_simnet::SimTime;

use crate::executor::WorkCtx;

/// Unique id of an RDD within the process (cache key component).
pub(crate) type RddId = u64;

static NEXT_RDD_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_id() -> RddId {
    NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed)
}

/// Per-element scan overhead charged by built-in transformations, so that
/// even "free" pipelines cost something on the simulated CPU.
const SCAN_NS_PER_ELEM: u64 = 2;

/// Type-erased lineage node.
pub(crate) trait AnyRdd: Send + Sync {
    fn id(&self) -> RddId;
    fn is_cached(&self) -> bool;
    /// Compute this node's partition (not consulting this node's own cache —
    /// that is [`materialize_any`]'s job).
    fn compute_any(&self, part: usize, w: &mut WorkCtx<'_, '_>) -> Arc<dyn Any + Send + Sync>;
}

/// Materialize a node's partition with cache lookups.
pub(crate) fn materialize_any(
    node: &Arc<dyn AnyRdd>,
    part: usize,
    w: &mut WorkCtx<'_, '_>,
) -> Arc<dyn Any + Send + Sync> {
    if node.is_cached() {
        if let Some(hit) = w.cache_get(node.id(), part) {
            return hit;
        }
    }
    let data = node.compute_any(part, w);
    if node.is_cached() {
        w.cache_put(node.id(), part, Arc::clone(&data));
    }
    data
}

type XformFn<T> =
    dyn Fn(&(dyn Any + Send + Sync), usize, &mut WorkCtx<'_, '_>) -> Vec<T> + Send + Sync;

type SourceFn<T> = dyn Fn(usize, &mut WorkCtx<'_, '_>) -> Vec<T> + Send + Sync;

enum Kind<T> {
    /// Deterministic per-partition generator.
    Source(Arc<SourceFn<T>>),
    /// Narrow transformation of a parent partition.
    Derived {
        parent: Arc<dyn AnyRdd>,
        xform: Arc<XformFn<T>>,
    },
}

pub(crate) struct Node<T> {
    id: RddId,
    partitions: usize,
    cached: bool,
    kind: Kind<T>,
}

impl<T: Send + Sync + 'static> AnyRdd for Node<T> {
    fn id(&self) -> RddId {
        self.id
    }

    fn is_cached(&self) -> bool {
        self.cached
    }

    fn compute_any(&self, part: usize, w: &mut WorkCtx<'_, '_>) -> Arc<dyn Any + Send + Sync> {
        let data: Vec<T> = match &self.kind {
            Kind::Source(gen) => gen(part, w),
            Kind::Derived { parent, xform } => {
                let parent_data = materialize_any(parent, part, w);
                xform(&*parent_data, part, w)
            }
        };
        Arc::new(data)
    }
}

/// A partitioned, lineage-tracked distributed dataset.
///
/// Cloning is cheap (it clones the lineage handle, not data).
pub struct Rdd<T> {
    pub(crate) node: Arc<Node<T>>,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            node: Arc::clone(&self.node),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    pub(crate) fn from_source<F>(partitions: usize, gen: F) -> Rdd<T>
    where
        F: Fn(usize, &mut WorkCtx<'_, '_>) -> Vec<T> + Send + Sync + 'static,
    {
        assert!(partitions > 0, "an RDD needs at least one partition");
        Rdd {
            node: Arc::new(Node {
                id: fresh_id(),
                partitions,
                cached: false,
                kind: Kind::Source(Arc::new(gen)),
            }),
        }
    }

    fn derived<U: Send + Sync + 'static>(
        &self,
        xform: impl Fn(&[T], usize, &mut WorkCtx<'_, '_>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent: Arc<dyn AnyRdd> = self.node.clone();
        Rdd {
            node: Arc::new(Node {
                id: fresh_id(),
                partitions: self.node.partitions,
                cached: false,
                kind: Kind::Derived {
                    parent,
                    xform: Arc::new(move |any, part, w| {
                        let data = any.downcast_ref::<Vec<T>>().expect("lineage type mismatch");
                        xform(data, part, w)
                    }),
                },
            }),
        }
    }

    /// Number of partitions (constant across narrow transformations).
    pub fn partitions(&self) -> usize {
        self.node.partitions
    }

    pub(crate) fn erased(&self) -> Arc<dyn AnyRdd> {
        self.node.clone()
    }

    /// Mark this dataset to be kept in executor memory after its first
    /// materialization. Lost cache blocks are recomputed from lineage.
    pub fn cache(&self) -> Rdd<T> {
        Rdd {
            node: Arc::new(Node {
                id: self.node.id,
                partitions: self.node.partitions,
                cached: true,
                kind: Kind::Derived {
                    parent: self.node.clone() as Arc<dyn AnyRdd>,
                    xform: Arc::new(|any: &(dyn Any + Send + Sync), _part, _w| {
                        any.downcast_ref::<Vec<T>>()
                            .expect("lineage type mismatch")
                            .clone()
                    }),
                },
            }),
        }
    }

    /// Element-wise transformation.
    pub fn map<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.derived(move |data, _part, w| {
            w.charge_scan(data.len());
            data.iter().map(&f).collect()
        })
    }

    /// Keep elements satisfying the predicate.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        self.derived(move |data, _part, w| {
            w.charge_scan(data.len());
            data.iter().filter(|x| pred(x)).cloned().collect()
        })
    }

    /// Whole-partition transformation with simulator access (for custom
    /// compute charging or parameter-server calls).
    pub fn map_partitions<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(&[T], &mut WorkCtx<'_, '_>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.derived(move |data, _part, w| f(data, w))
    }

    /// Bernoulli sample of roughly `fraction` of each partition. `salt`
    /// distinguishes per-iteration samples (the paper's mini-batch idiom);
    /// the sample is a deterministic function of `(salt, partition)`.
    pub fn sample(&self, fraction: f64, salt: u64) -> Rdd<T> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sample fraction must be in [0, 1], got {fraction}"
        );
        self.derived(move |data, part, w| {
            w.charge_scan(data.len());
            let seed = salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(part as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            data.iter()
                .filter(|_| rng.gen::<f64>() < fraction)
                .cloned()
                .collect()
        })
    }
}

impl<'a, 'b> WorkCtx<'a, 'b> {
    /// Charge the per-element pipeline scan cost.
    pub fn charge_scan(&mut self, elems: usize) {
        self.sim.advance(SimTime(SCAN_NS_PER_ELEM * elems as u64));
    }
}
