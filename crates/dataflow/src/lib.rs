//! # ps2-dataflow — a Spark-like RDD engine on the simulated cluster
//!
//! This crate is the "Spark" substrate of the PS2 reproduction: a driver
//! process schedules tasks over executor processes, datasets are immutable
//! partitioned collections with lineage ([`Rdd`]), and fault tolerance works
//! the way the paper relies on (§5.3): failed tasks are retried, lost
//! executors are replaced and their cached partitions recomputed from
//! lineage.
//!
//! It deliberately implements only what the paper's workloads use — narrow
//! transformations (`map`, `filter`, `map_partitions`, `sample`), actions
//! (`collect`, `reduce_partitions`, `count`, `for_each_partition`), caching
//! and driver broadcast. There are no shuffles: every ML workload in the
//! paper is embarrassingly parallel over partitions with aggregation either
//! at the driver (the MLlib baseline whose bottleneck §2 analyses) or at the
//! parameter servers.
//!
//! ```
//! use ps2_simnet::SimBuilder;
//! use ps2_dataflow::{deploy_executors, SparkContext};
//!
//! let mut sim = SimBuilder::new().seed(1).build();
//! let executors = deploy_executors(&mut sim, 4);
//! let out = sim.spawn_collect("driver", move |ctx| {
//!     let mut sc = SparkContext::new(executors);
//!     let nums = sc.parallelize(ctx, (0..100u64).collect(), 4).cache();
//!     let sum = sc
//!         .reduce_partitions(
//!             ctx,
//!             &nums,
//!             |part, _w| part.iter().sum::<u64>(),
//!             |a, b| a + b,
//!         )
//!         .unwrap_or(0);
//!     sum
//! });
//! sim.run().unwrap();
//! assert_eq!(out.take(), 4950);
//! ```

mod broadcast;
mod collective;
mod executor;
mod rdd;
mod scheduler;
mod shuffle;

pub use broadcast::Broadcast;
pub use collective::ring_allreduce_sum;
pub use executor::{deploy_executors, executor_main, WorkCtx};
pub use rdd::Rdd;
pub use scheduler::{FailureConfig, JobError, SparkContext};
pub use shuffle::{deploy_shuffle_services, shuffle_service_main};
