//! Driver-to-executor broadcast variables.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// The erased value shipped to executors.
#[derive(Clone)]
pub(crate) struct BroadcastValue {
    pub id: u64,
    pub value: Arc<dyn Any + Send + Sync>,
    pub bytes: u64,
}

/// A relay subtree for torrent-style broadcast: the receiver stores the
/// value, forwards a ship to each child subtree, and acknowledges the
/// driver with its token.
#[derive(Clone)]
pub(crate) struct BroadcastTree {
    pub node: ps2_simnet::ProcId,
    pub ack_token: u64,
    pub children: Vec<BroadcastTree>,
}

/// The message that travels along the relay tree.
#[derive(Clone)]
pub(crate) struct BroadcastShip {
    pub value: BroadcastValue,
    pub ack_to: ps2_simnet::ProcId,
    pub ack_token: u64,
    pub children: Vec<BroadcastTree>,
}

/// A typed handle to a broadcast variable, usable inside task closures via
/// [`crate::WorkCtx::broadcast`].
///
/// In Spark MLlib's training loop the *model* is broadcast every iteration;
/// the transfer serializes on the driver's out-NIC, which is half of the
/// "single-node bottleneck" the paper measures in Figure 1.
pub struct Broadcast<T> {
    pub(crate) id: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Broadcast<T> {}
