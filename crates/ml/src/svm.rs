//! Linear SVM with hinge loss — one of the "other models" of §5.2.4,
//! trained PS2-style: sparse pulls, scaled sparse pushes.

use ps2_core::{Ps2Context, WorkCtx};
use ps2_data::{Example, SparseDatasetGen};
use ps2_simnet::SimCtx;

use crate::lr::distinct_cols;
use crate::metrics::TrainingTrace;
use crate::sort_merge_pairs;

/// SVM training configuration.
#[derive(Clone, Debug)]
pub struct SvmConfig {
    pub dataset: SparseDatasetGen,
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub reg: f64,
    pub mini_batch_fraction: f64,
    pub iterations: usize,
}

impl SvmConfig {
    pub fn new(dataset: SparseDatasetGen, iterations: usize) -> SvmConfig {
        SvmConfig {
            dataset,
            learning_rate: 0.1,
            reg: 1e-4,
            mini_batch_fraction: 0.05,
            iterations,
        }
    }
}

/// Hinge-loss subgradient over a batch, aligned with `cols`.
pub(crate) fn hinge_grad(batch: &[Example], cols: &[u64], w: &[f64]) -> (Vec<f64>, f64) {
    let mut grad = vec![0.0; cols.len()];
    let mut loss = 0.0;
    for ex in batch {
        let mut margin = 0.0;
        for &(j, v) in ex.features.iter() {
            let pos = cols.binary_search(&j).expect("col missing");
            margin += w[pos] * v;
        }
        let ym = ex.label * margin;
        if ym < 1.0 {
            loss += 1.0 - ym;
            for &(j, v) in ex.features.iter() {
                let pos = cols.binary_search(&j).expect("col missing");
                grad[pos] -= ex.label * v;
            }
        }
    }
    (grad, loss)
}

/// Train a linear SVM on PS2; returns the hinge-loss trace.
pub fn train_svm(ctx: &mut SimCtx, ps2: &mut Ps2Context, cfg: &SvmConfig) -> TrainingTrace {
    let gen = cfg.dataset.clone();
    let parts = gen.partitions;
    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let rows = gen2.partition(p);
            let nnz: u64 = rows.iter().map(|e| e.features.len() as u64).sum();
            w.sim.charge_mem(16 * nnz);
            rows
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    let w_dcv = ps2.dense_dcv(ctx, gen.dim, 1);
    let expected_batch = (gen.rows as f64 * cfg.mini_batch_fraction).max(1.0);
    let lr = cfg.learning_rate;
    let reg = cfg.reg;

    let mut trace = TrainingTrace::new("PS2-SVM");
    let start = ctx.now();
    for t in 1..=cfg.iterations {
        let it0 = ctx.now();
        let batch = data.sample(cfg.mini_batch_fraction, t as u64);
        let wd = w_dcv.clone();
        let scale = lr / expected_batch;
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    if examples.is_empty() {
                        return (0.0, 0u64);
                    }
                    let cols = distinct_cols(examples);
                    let wv = wd.pull_indices(wk.sim, &cols);
                    let (grad, loss) = hinge_grad(examples, &cols, &wv);
                    let nnz: u64 = examples.iter().map(|e| e.features.len() as u64).sum();
                    wk.sim.charge_flops(5 * nnz);
                    // Subgradient step + local L2 shrinkage on touched coords.
                    let pairs: Vec<(u64, f64)> = sort_merge_pairs(
                        cols.iter()
                            .zip(&grad)
                            .zip(&wv)
                            .map(|((&j, &g), &wj)| (j, -scale * g - lr * reg * wj))
                            .collect(),
                    );
                    wd.add_sparse(wk.sim, &pairs);
                    (loss, examples.len() as u64)
                },
                |_| 24,
            )
            .expect("svm iteration failed");
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        ctx.metric_add("ml.iterations", 1);
        ctx.metric_observe("ml.iteration", ctx.now() - it0);
        ctx.metric_gauge_set(
            "ml.loss_micro",
            (loss_sum / n.max(1) as f64 * 1e6).round() as i64,
        );
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
    }
    trace
}
