//! DeepWalk graph embedding (paper §5.2.2, Figures 5/6, evaluated in
//! Figure 9(c,d)).
//!
//! The model is `2V` embedding vectors of dimension `K`, stored as one raw
//! matrix `dense(K, 2V)`: row `u` is vertex `u`'s input embedding, row
//! `V + u` its context embedding. Rows are column-partitioned over the
//! servers, so the vectors of any two vertices are dimension co-located.
//!
//! Workers process skip-gram pairs in batches (paper Table 4:
//! `batch_size = 512`); per batch:
//!
//! * **PS2-DeepWalk** — all dot products `⟨u, v'⟩` run server-side in one
//!   scatter/gather, then all pair updates as server-side `zip`s: only
//!   scalars and headers cross the network. With many servers the
//!   per-request headers dominate and the advantage shrinks — the Figure
//!   9(d) effect.
//! * **PS-DeepWalk** — pull the batch's embedding vectors, update locally,
//!   push the deltas: `O(batch · K)` values cross the network both ways.

use std::sync::Arc;

use ps2_core::{InitKind, MatrixHandle, Ps2Context, PsBatch, WorkCtx, ZipSegs};
use ps2_data::RandomWalks;
use ps2_ps::ZipMutFn;
use ps2_simnet::SimCtx;
use rand::Rng;

use crate::hyper::DeepWalkHyper;
use crate::lr::{log_loss, sigmoid};
use crate::metrics::TrainingTrace;

/// Execution backend for DeepWalk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeepWalkBackend {
    /// Pull embeddings, update locally, push back.
    PsPullPush,
    /// Server-side dot + zip update (DCV).
    Ps2Dcv,
}

impl DeepWalkBackend {
    pub fn label(&self) -> &'static str {
        match self {
            DeepWalkBackend::PsPullPush => "PS-DeepWalk",
            DeepWalkBackend::Ps2Dcv => "PS2-DeepWalk",
        }
    }
}

/// DeepWalk training configuration.
#[derive(Clone, Debug)]
pub struct DeepWalkConfig {
    pub vertices: u32,
    pub hyper: DeepWalkHyper,
    /// Positive skip-gram pairs consumed per worker per iteration.
    pub batch_per_worker: usize,
    pub iterations: usize,
    pub seed: u64,
}

/// One (center row, context row, label) training example.
type Sgns = (u32, u32, f64);

/// Train embeddings from a pre-sampled walk corpus; returns the
/// loss-versus-time trace (mean skip-gram logistic loss per iteration).
pub fn train_deepwalk(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &DeepWalkConfig,
    walks: &RandomWalks,
    backend: DeepWalkBackend,
) -> TrainingTrace {
    let v = cfg.vertices;
    let k = cfg.hyper.embedding_dim;
    let eta = cfg.hyper.learning_rate;
    let neg = cfg.hyper.negative_samples;
    let mut trace = TrainingTrace::new(backend.label());

    // All 2V embeddings in one raw matrix: rows 0..V input, V..2V context.
    let emb = ps2.dense_dcv_init(
        ctx,
        k,
        2 * v,
        InitKind::Uniform {
            lo: -0.5 / k as f64,
            hi: 0.5 / k as f64,
            seed: cfg.seed,
        },
    );
    let handle = emb.matrix().clone();

    // Distribute the pair corpus (the paper's `calculateSimilar` output).
    let pairs = Arc::new(walks.skip_gram_pairs(cfg.hyper.window_size));
    assert!(!pairs.is_empty(), "walk corpus produced no training pairs");
    let parts = ps2.spark.num_executors();
    let pairs_rdd = {
        let pairs = Arc::clone(&pairs);
        ps2.spark
            .source(parts, move |p, _w| {
                pairs
                    .iter()
                    .copied()
                    .skip(p)
                    .step_by(parts)
                    .collect::<Vec<_>>()
            })
            .cache()
    };
    let _ = ps2.spark.count(ctx, &pairs_rdd);

    let start = ctx.now();
    for t in 0..cfg.iterations {
        let h = handle.clone();
        let use_dcv = backend == DeepWalkBackend::Ps2Dcv;
        let batch = cfg.batch_per_worker;
        let vv = v;
        let results = ps2
            .spark
            .run_job(
                ctx,
                &pairs_rdd,
                move |local_pairs, wk: &mut WorkCtx<'_, '_>| {
                    if local_pairs.is_empty() {
                        return (0.0, 0u64);
                    }
                    // This iteration's slice of the local pair stream.
                    let lo = (t * batch) % local_pairs.len();
                    let mut examples: Vec<Sgns> = Vec::with_capacity(batch * (1 + neg));
                    for i in 0..batch {
                        let p = local_pairs[(lo + i) % local_pairs.len()];
                        examples.push((p.center, vv + p.context, 1.0));
                        for _ in 0..neg {
                            let nv = wk.sim.rng().gen_range(0..vv);
                            if nv != p.center {
                                examples.push((p.center, vv + nv, 0.0));
                            }
                        }
                    }
                    let loss = if use_dcv {
                        batch_update_dcv(wk, &h, &examples, eta)
                    } else {
                        batch_update_pullpush(wk, &h, &examples, eta)
                    };
                    (loss, examples.len() as u64)
                },
                |_r| 24,
            )
            .expect("deepwalk iteration failed");
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
    }
    trace
}

/// DCV batch: one scatter/gather of server-side dots, then one of zips.
fn batch_update_dcv(
    wk: &mut WorkCtx<'_, '_>,
    h: &MatrixHandle,
    examples: &[Sgns],
    eta: f64,
) -> f64 {
    // Two flushes per batch, each one envelope per server: all dots, then
    // — once the coefficients are known — all zip updates.
    let mut net = PsBatch::new();
    let dot_pairs: Vec<(u32, u32)> = examples.iter().map(|&(u, v, _)| (u, v)).collect();
    let dots = h.dot_many_in(&mut net, &dot_pairs);
    net.flush(wk.sim);
    let dots = dots.take();
    let mut loss = 0.0;
    let mut jobs: Vec<(Vec<u32>, ZipMutFn)> = Vec::with_capacity(examples.len());
    for (&(u, v, label), &dot) in examples.iter().zip(&dots) {
        let p = sigmoid(dot);
        let coef = eta * (label - p);
        loss += if label > 0.5 {
            log_loss(dot)
        } else {
            log_loss(-dot)
        };
        jobs.push((
            vec![u, v],
            Arc::new(move |zs: &mut ZipSegs<'_>| {
                // u += coef * v'; v' += coef * u_old (paper Equation 2).
                let (us, rest) = zs.segs.split_first_mut().expect("two rows");
                let vs = &mut rest[0];
                for i in 0..us.len() {
                    let u_old = us[i];
                    us[i] += coef * vs[i];
                    vs[i] += coef * u_old;
                }
            }),
        ));
    }
    h.zip_many_in(wk.sim, &mut net, jobs, 4);
    net.flush(wk.sim);
    loss
}

/// Pull/push batch, the naive per-pair protocol of the paper's Figure 5:
/// each example pulls both of its vectors and pushes both updates — no
/// cross-pair dedup, so `4·K` values per example cross the network.
fn batch_update_pullpush(
    wk: &mut WorkCtx<'_, '_>,
    h: &MatrixHandle,
    examples: &[Sgns],
    eta: f64,
) -> f64 {
    let rows: Vec<u32> = examples.iter().flat_map(|&(u, v, _)| [u, v]).collect();
    let mut net = PsBatch::new();
    let vectors = h.pull_rows_in(&mut net, &rows);
    net.flush(wk.sim);
    let vectors = vectors.take();
    let k = h.dim() as usize;
    let mut updates: Vec<(u32, Vec<f64>)> = Vec::with_capacity(rows.len());
    let mut loss = 0.0;
    for (e, &(u, v, label)) in examples.iter().enumerate() {
        let uv = &vectors[2 * e];
        let vv = &vectors[2 * e + 1];
        let dot: f64 = uv.iter().zip(vv).map(|(a, b)| a * b).sum();
        let p = sigmoid(dot);
        let coef = eta * (label - p);
        loss += if label > 0.5 {
            log_loss(dot)
        } else {
            log_loss(-dot)
        };
        let du: Vec<f64> = vv.iter().map(|x| coef * x).collect();
        let dv: Vec<f64> = uv.iter().map(|x| coef * x).collect();
        updates.push((u, du));
        updates.push((v, dv));
    }
    wk.sim.charge_flops(examples.len() as u64 * 8 * k as u64);
    h.push_dense_many_in(wk.sim, &mut net, &updates);
    net.flush(wk.sim);
    loss
}
