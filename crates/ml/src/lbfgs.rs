//! L-BFGS for logistic regression (§5.2.4's "modern optimizations") — a
//! showcase for DCV column ops: the entire two-loop recursion runs
//! server-side as `dot`/`axpy`/`copy` over co-located history vectors, with
//! only scalars at the coordinator.

use ps2_core::{Dcv, Ps2Context, WorkCtx};
use ps2_data::SparseDatasetGen;
use ps2_simnet::SimCtx;

use crate::lr::{distinct_cols, grad_aligned};
use crate::metrics::TrainingTrace;
use crate::sort_merge_pairs;

/// L-BFGS configuration.
#[derive(Clone, Debug)]
pub struct LbfgsConfig {
    pub dataset: SparseDatasetGen,
    /// History pairs kept (`m`).
    pub history: usize,
    /// Fixed step size (no line search — full-batch gradients are stable
    /// enough on this objective).
    pub step: f64,
    pub iterations: usize,
    /// Fraction of data per gradient evaluation (1.0 = full batch).
    pub batch_fraction: f64,
}

impl LbfgsConfig {
    pub fn new(dataset: SparseDatasetGen, iterations: usize) -> LbfgsConfig {
        LbfgsConfig {
            dataset,
            history: 5,
            step: 0.5,
            iterations,
            batch_fraction: 1.0,
        }
    }
}

/// Train LR with L-BFGS on PS2; returns the loss trace.
pub fn train_lbfgs(ctx: &mut SimCtx, ps2: &mut Ps2Context, cfg: &LbfgsConfig) -> TrainingTrace {
    let gen = cfg.dataset.clone();
    let parts = gen.partitions;
    let m = cfg.history;
    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let rows = gen2.partition(p);
            let nnz: u64 = rows.iter().map(|e| e.features.len() as u64).sum();
            w.sim.charge_mem(16 * nnz);
            rows
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    // Raw matrix rows: w, g, prev_g, q, then m × (s_i, y_i).
    let w_dcv = ps2.dense_dcv(ctx, gen.dim, (4 + 2 * m) as u32);
    let g = w_dcv.derive(ctx);
    let prev_g = w_dcv.derive(ctx);
    let q = w_dcv.derive(ctx);
    let s_hist: Vec<Dcv> = (0..m).map(|_| w_dcv.derive(ctx)).collect();
    let y_hist: Vec<Dcv> = (0..m).map(|_| w_dcv.derive(ctx)).collect();
    let mut rho: Vec<f64> = vec![0.0; m];
    let mut filled = 0usize; // history entries valid
    let mut cursor = 0usize; // ring position of the next write

    let expected_batch = (gen.rows as f64 * cfg.batch_fraction).max(1.0);
    let mut trace = TrainingTrace::new("PS2-LBFGS");
    let start = ctx.now();

    for t in 1..=cfg.iterations {
        let it0 = ctx.now();
        // Gradient phase: workers push the batch gradient into g.
        g.zero(ctx);
        let batch = if cfg.batch_fraction >= 1.0 {
            data.clone()
        } else {
            data.sample(cfg.batch_fraction, t as u64)
        };
        let gd = g.clone();
        let wd = w_dcv.clone();
        let scale = 1.0 / expected_batch;
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    if examples.is_empty() {
                        return (0.0, 0u64);
                    }
                    let cols = distinct_cols(examples);
                    let wv = wd.pull_indices(wk.sim, &cols);
                    let (grad, loss) = grad_aligned(examples, &cols, &wv);
                    let nnz: u64 = examples.iter().map(|e| e.features.len() as u64).sum();
                    wk.sim.charge_flops(6 * nnz);
                    let pairs: Vec<(u64, f64)> = sort_merge_pairs(
                        cols.iter()
                            .zip(&grad)
                            .map(|(&j, &gv)| (j, gv * scale))
                            .collect(),
                    );
                    gd.add_sparse(wk.sim, &pairs);
                    (loss, examples.len() as u64)
                },
                |_| 24,
            )
            .expect("gradient job failed");
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));

        // History update: s = -step·q_prev was written last iteration; now
        // y_prev = g - prev_g.
        if t > 1 {
            let slot = (cursor + m - 1) % m;
            y_hist[slot].assign_sub(ctx, &g, &prev_g);
            let sy = s_hist[slot].dot(ctx, &y_hist[slot]);
            rho[slot] = if sy.abs() > 1e-12 { 1.0 / sy } else { 0.0 };
        }

        // Two-loop recursion, entirely server-side.
        q.copy_from(ctx, &g);
        let mut alpha = vec![0.0; m];
        let order: Vec<usize> = (0..filled).map(|i| (cursor + m - 1 - i) % m).collect(); // most recent first
        for &i in &order {
            if rho[i] == 0.0 {
                continue;
            }
            alpha[i] = rho[i] * s_hist[i].dot(ctx, &q);
            q.iaxpy(ctx, &y_hist[i], -alpha[i]);
        }
        if let Some(&last) = order.first() {
            // Scale by γ = (s·y)/(y·y) of the most recent pair.
            let yy = y_hist[last].dot(ctx, &y_hist[last]);
            if yy > 1e-12 && rho[last] != 0.0 {
                let gamma = 1.0 / (rho[last] * yy);
                q.scale(ctx, gamma);
            }
        }
        for &i in order.iter().rev() {
            if rho[i] == 0.0 {
                continue;
            }
            let beta = rho[i] * y_hist[i].dot(ctx, &q);
            q.iaxpy(ctx, &s_hist[i], alpha[i] - beta);
        }

        // Step: w -= step·q; record s = -step·q and prev_g = g.
        w_dcv.iaxpy(ctx, &q, -cfg.step);
        s_hist[cursor].copy_from(ctx, &q);
        s_hist[cursor].scale(ctx, -cfg.step);
        prev_g.copy_from(ctx, &g);
        cursor = (cursor + 1) % m;
        filled = (filled + 1).min(m);

        ctx.metric_add("ml.iterations", 1);
        ctx.metric_observe("ml.iteration", ctx.now() - it0);
        ctx.metric_gauge_set(
            "ml.loss_micro",
            (loss_sum / n.max(1) as f64 * 1e6).round() as i64,
        );
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
    }
    trace
}
