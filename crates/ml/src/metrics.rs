//! Training traces: the `(virtual time, loss)` series behind the paper's
//! figures.

use ps2_simnet::SimTime;

/// Per-iteration time breakdown of the four MLlib steps (paper Figure 1(b)).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBreakdown {
    pub broadcast: f64,
    pub gradient_calc: f64,
    pub aggregation: f64,
    pub model_update: f64,
}

impl StepBreakdown {
    pub fn total(&self) -> f64 {
        self.broadcast + self.gradient_calc + self.aggregation + self.model_update
    }
}

/// A loss-versus-virtual-time curve plus optional per-step timing.
#[derive(Clone, Debug, Default)]
pub struct TrainingTrace {
    /// System/backend label (e.g. "PS2-Adam").
    pub label: String,
    /// `(virtual seconds since training start, loss)` per iteration.
    pub points: Vec<(f64, f64)>,
    /// Mean per-iteration step breakdown, when the backend records it.
    pub breakdown: Option<StepBreakdown>,
}

impl TrainingTrace {
    pub fn new(label: impl Into<String>) -> TrainingTrace {
        TrainingTrace {
            label: label.into(),
            ..TrainingTrace::default()
        }
    }

    pub fn record(&mut self, start: SimTime, now: SimTime, loss: f64) {
        self.points.push(((now - start).as_secs_f64(), loss));
    }

    /// Final loss, or `+inf` when no point was recorded.
    pub fn final_loss(&self) -> f64 {
        self.points.last().map_or(f64::INFINITY, |p| p.1)
    }

    /// Total virtual training time.
    pub fn total_time(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.0)
    }

    /// First virtual time at which the loss reached `target`, if ever — the
    /// "time to reach 0.3 training loss" metric of §6.2.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, l)| l <= target)
            .map(|&(t, _)| t)
    }

    /// Mean per-iteration time.
    pub fn time_per_iteration(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.total_time() / self.points.len() as f64
    }

    /// Losses must be finite and the series non-empty — a guard used by
    /// tests and the bench harness.
    pub fn is_sane(&self) -> bool {
        !self.points.is_empty()
            && self
                .points
                .iter()
                .all(|&(t, l)| t.is_finite() && l.is_finite())
    }
}

/// Area under the ROC curve from `(score, label ∈ {−1, +1})` pairs —
/// the CTR evaluation metric. Ties share credit; returns 0.5 when one class
/// is absent.
pub fn auc(scored: &[(f64, f64)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, y)| y > 0.0).count() as f64;
    let neg = scored.len() as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return 0.5;
    }
    // Rank-sum (Mann-Whitney) formulation with average ranks for ties.
    let mut sorted: Vec<(f64, f64)> = scored.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN score"));
    let mut rank_sum_pos = 0.0;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &sorted[i..=j] {
            if item.1 > 0.0 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_random_and_inverted() {
        let perfect: Vec<(f64, f64)> = vec![(0.9, 1.0), (0.8, 1.0), (0.2, -1.0), (0.1, -1.0)];
        assert_eq!(auc(&perfect), 1.0);
        let inverted: Vec<(f64, f64)> = vec![(0.1, 1.0), (0.2, 1.0), (0.8, -1.0), (0.9, -1.0)];
        assert_eq!(auc(&inverted), 0.0);
        let ties: Vec<(f64, f64)> = vec![(0.5, 1.0), (0.5, -1.0)];
        assert_eq!(auc(&ties), 0.5);
        let one_class: Vec<(f64, f64)> = vec![(0.5, 1.0), (0.7, 1.0)];
        assert_eq!(auc(&one_class), 0.5);
    }

    #[test]
    fn auc_handles_partial_separation() {
        let scored: Vec<(f64, f64)> = vec![(0.9, 1.0), (0.6, -1.0), (0.7, 1.0), (0.2, -1.0)];
        // Pairs: (0.9 beats both), (0.7 beats 0.2, loses to... 0.6<0.7 ok
        // beats both) → 4/4 minus (0.7 vs 0.6 win) … compute: wins = 4 of 4.
        assert_eq!(auc(&scored), 1.0);
        let scored2: Vec<(f64, f64)> = vec![(0.9, 1.0), (0.6, -1.0), (0.5, 1.0), (0.2, -1.0)];
        // (0.9 beats 0.6, 0.2), (0.5 beats 0.2, loses to 0.6) → 3/4.
        assert_eq!(auc(&scored2), 0.75);
    }

    #[test]
    fn trace_metrics() {
        let mut t = TrainingTrace::new("x");
        let s = SimTime::ZERO;
        t.record(s, SimTime::from_millis(100), 1.0);
        t.record(s, SimTime::from_millis(250), 0.5);
        t.record(s, SimTime::from_millis(400), 0.2);
        assert_eq!(t.final_loss(), 0.2);
        assert_eq!(t.time_to_loss(0.5), Some(0.25));
        assert_eq!(t.time_to_loss(0.1), None);
        assert!((t.total_time() - 0.4).abs() < 1e-12);
        assert!(t.is_sane());
    }

    #[test]
    fn empty_trace_is_not_sane() {
        assert!(!TrainingTrace::new("e").is_sane());
        assert_eq!(TrainingTrace::new("e").final_loss(), f64::INFINITY);
    }
}
