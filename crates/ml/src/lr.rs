//! Logistic regression with mini-batch gradient descent, implemented
//! against five execution backends that reproduce the communication
//! structure of the systems compared in the paper (Figures 1, 9, 10, 13).

use ps2_core::{Dcv, Ps2Context, PsBatch, Rdd, WorkCtx};
use ps2_data::{Example, SparseDatasetGen};
use ps2_simnet::SimCtx;

use crate::hyper::LrHyper;
use crate::metrics::{StepBreakdown, TrainingTrace};
use crate::optim::Optimizer;
use crate::sort_merge_pairs;

/// Which system's communication structure to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LrBackend {
    /// Spark MLlib: driver broadcasts the dense model, workers return dense
    /// gradients, the driver aggregates and updates — the "single-node
    /// bottleneck" of §2.
    SparkDriver,
    /// "PS-": parameter servers with pull/push only. Gradients go to the
    /// servers, but the optimizer update is done by workers that pull dense
    /// model slices and push them back (no server-side computation).
    PsPullPush,
    /// "PS2-": the full system — sparse pulls, gradient push, and the
    /// optimizer as a server-side DCV `zip`.
    Ps2Dcv,
    /// Petuum-style: parameter servers without sparse communication —
    /// workers pull the whole dense model and push dense updates (§6.3.1:
    /// "Petuum has to pull all of the model").
    PetuumStyle,
    /// DistML-style: dense pulls, sparse pushes, and an extra per-iteration
    /// monitor synchronization round.
    DistmlStyle,
}

impl LrBackend {
    pub fn label(&self, opt: &Optimizer) -> String {
        let prefix = match self {
            LrBackend::SparkDriver => "Spark",
            LrBackend::PsPullPush => "PS",
            LrBackend::Ps2Dcv => "PS2",
            LrBackend::PetuumStyle => "Petuum",
            LrBackend::DistmlStyle => "DistML",
        };
        format!("{prefix}-{}", opt.name())
    }
}

/// A complete LR training configuration.
#[derive(Clone, Debug)]
pub struct LrConfig {
    pub dataset: SparseDatasetGen,
    pub optimizer: Optimizer,
    pub hyper: LrHyper,
    pub iterations: usize,
}

impl LrConfig {
    pub fn new(dataset: SparseDatasetGen, optimizer: Optimizer, iterations: usize) -> LrConfig {
        LrConfig {
            dataset,
            optimizer,
            hyper: LrHyper::default(),
            iterations,
        }
    }
}

#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable `ln(1 + exp(-m))` (logistic loss at margin `m`).
#[inline]
pub fn log_loss(margin: f64) -> f64 {
    if margin > 0.0 {
        (-margin).exp().ln_1p()
    } else {
        -margin + margin.exp().ln_1p()
    }
}

/// Sorted distinct feature columns of a batch — the sparse-pull working set.
pub fn distinct_cols(batch: &[Example]) -> Vec<u64> {
    let mut cols: Vec<u64> = batch
        .iter()
        .flat_map(|ex| ex.features.iter().map(|&(j, _)| j))
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Gradient of the logistic loss over `batch`, aligned with `cols` (which
/// must contain every feature of the batch). Returns `(gradient, loss sum)`.
pub fn grad_aligned(batch: &[Example], cols: &[u64], w: &[f64]) -> (Vec<f64>, f64) {
    debug_assert_eq!(cols.len(), w.len());
    let mut grad = vec![0.0; cols.len()];
    let mut loss = 0.0;
    for ex in batch {
        let mut margin = 0.0;
        for &(j, v) in ex.features.iter() {
            let pos = cols
                .binary_search(&j)
                .expect("col missing from working set");
            margin += w[pos] * v;
        }
        let ym = ex.label * margin;
        loss += log_loss(ym);
        let coef = -ex.label * sigmoid(-ym);
        for &(j, v) in ex.features.iter() {
            let pos = cols
                .binary_search(&j)
                .expect("col missing from working set");
            grad[pos] += coef * v;
        }
    }
    (grad, loss)
}

/// Same gradient against a full dense weight vector (the broadcast path).
pub fn grad_dense(batch: &[Example], w: &[f64]) -> (Vec<(u64, f64)>, f64) {
    let mut pairs = Vec::new();
    let mut loss = 0.0;
    for ex in batch {
        let margin = ex.dot_dense(w);
        let ym = ex.label * margin;
        loss += log_loss(ym);
        let coef = -ex.label * sigmoid(-ym);
        for &(j, v) in ex.features.iter() {
            pairs.push((j, coef * v));
        }
    }
    (sort_merge_pairs(pairs), loss)
}

fn batch_nnz(batch: &[Example]) -> u64 {
    batch.iter().map(|e| e.features.len() as u64).sum()
}

/// Train LR and return the loss-versus-time trace.
pub fn train_lr(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LrConfig,
    backend: LrBackend,
) -> TrainingTrace {
    let gen = cfg.dataset.clone();
    let parts = gen.partitions;
    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let rows = gen2.partition(p);
            w.sim.charge_mem(16 * batch_nnz(&rows));
            rows
        })
        .cache();
    // Materialize the cache before the timed loop (data loading is not part
    // of the figures' training time).
    let _ = ps2.spark.count(ctx, &data);

    match backend {
        LrBackend::SparkDriver => train_spark_driver(ctx, ps2, cfg, &data),
        LrBackend::Ps2Dcv => train_ps_family(ctx, ps2, cfg, &data, PsMode::Ps2),
        LrBackend::PsPullPush => train_ps_family(ctx, ps2, cfg, &data, PsMode::PullPush),
        LrBackend::PetuumStyle => train_ps_family(ctx, ps2, cfg, &data, PsMode::Petuum),
        LrBackend::DistmlStyle => train_ps_family(ctx, ps2, cfg, &data, PsMode::Distml),
    }
}

// ---- Spark MLlib emulation ---------------------------------------------------

fn train_spark_driver(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LrConfig,
    data: &Rdd<Example>,
) -> TrainingTrace {
    let dim = cfg.dataset.dim as usize;
    let lr = cfg.hyper.learning_rate;
    let expected_batch = (cfg.dataset.rows as f64 * cfg.hyper.mini_batch_fraction).max(1.0);
    let opt = cfg.optimizer;

    let mut trace = TrainingTrace::new(LrBackend::SparkDriver.label(&opt));
    let mut breakdown = StepBreakdown::default();

    let mut w = vec![0.0; dim];
    let mut aux: Vec<Vec<f64>> = (0..opt.aux_rows()).map(|_| vec![0.0; dim]).collect();

    let start = ctx.now();
    for t in 1..=cfg.iterations {
        let t0 = ctx.now();
        // (1) Model broadcast: the driver ships the dense model to every
        // executor, serializing on its out-NIC.
        let b = ps2.spark.broadcast(ctx, w.clone(), 8 * dim as u64);
        let t1 = ctx.now();

        // (2)+(3) Gradient calculation and aggregation. Workers *compute*
        // sparsely but MLlib aggregates dense gradient vectors, so each
        // task result declares the dense wire size.
        let batch = data.sample(cfg.hyper.mini_batch_fraction, t as u64);
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    let c0 = wk.sim.now();
                    let wv = wk.broadcast(&b);
                    let (pairs, loss) = grad_dense(examples, &wv);
                    wk.sim.charge_flops(6 * batch_nnz(examples));
                    let compute = (wk.sim.now() - c0).as_secs_f64();
                    (pairs, loss, examples.len() as u64, compute)
                },
                move |_r| 24 + 8 * dim as u64, // dense aggregation on the wire
            )
            .expect("gradient job failed");
        let t2 = ctx.now();

        // (4) Model update at the driver.
        let mut g = vec![0.0; dim];
        let mut loss_sum = 0.0;
        let mut n = 0u64;
        let mut max_compute: f64 = 0.0;
        for (pairs, loss, cnt, compute) in results {
            for (j, v) in pairs {
                g[j as usize] += v;
            }
            loss_sum += loss;
            n += cnt;
            max_compute = max_compute.max(compute);
        }
        for gi in &mut g {
            *gi /= expected_batch;
        }
        ctx.charge_flops(dim as u64 * (2 + opt.flops_per_elem()));
        {
            let mut aux_refs: Vec<&mut [f64]> = aux.iter_mut().map(|v| v.as_mut_slice()).collect();
            opt.apply(lr, t as i32, &mut w, &mut aux_refs, &g);
        }
        ps2.spark.drop_broadcast(ctx, b);
        let t3 = ctx.now();

        breakdown.broadcast += (t1 - t0).as_secs_f64();
        breakdown.gradient_calc += max_compute;
        breakdown.aggregation += ((t2 - t1).as_secs_f64() - max_compute).max(0.0);
        breakdown.model_update += (t3 - t2).as_secs_f64();
        ctx.metric_add("ml.iterations", 1);
        ctx.metric_observe("ml.iteration", ctx.now() - t0);
        // Micros-integer loss gauge: the watchdog's convergence-stall
        // detector reads its windowed samples.
        ctx.metric_gauge_set(
            "ml.loss_micro",
            (loss_sum / (n.max(1) as f64) * 1e6).round() as i64,
        );
        trace.record(start, ctx.now(), loss_sum / (n.max(1) as f64));
    }
    let iters = cfg.iterations.max(1) as f64;
    breakdown.broadcast /= iters;
    breakdown.gradient_calc /= iters;
    breakdown.aggregation /= iters;
    breakdown.model_update /= iters;
    trace.breakdown = Some(breakdown);
    trace
}

// ---- parameter-server family -------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum PsMode {
    /// Sparse pulls, gradient push, server-side zip update.
    Ps2,
    /// Sparse pulls, gradient push, worker-side pull/push update.
    PullPush,
    /// Dense pulls, dense pushes (no sparse communication).
    Petuum,
    /// Dense pulls, sparse pushes, extra coordination round.
    Distml,
}

fn train_ps_family(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LrConfig,
    data: &Rdd<Example>,
    mode: PsMode,
) -> TrainingTrace {
    let dim = cfg.dataset.dim;
    let lr = cfg.hyper.learning_rate;
    let expected_batch = (cfg.dataset.rows as f64 * cfg.hyper.mini_batch_fraction).max(1.0);
    let opt = cfg.optimizer;
    let backend = match mode {
        PsMode::Ps2 => LrBackend::Ps2Dcv,
        PsMode::PullPush => LrBackend::PsPullPush,
        PsMode::Petuum => LrBackend::PetuumStyle,
        PsMode::Distml => LrBackend::DistmlStyle,
    };
    let mut trace = TrainingTrace::new(backend.label(&opt));

    // SGD with direct scaled pushes needs only `w`; stateful optimizers
    // need the aux vectors and a gradient accumulator.
    let direct_sgd = matches!(opt, Optimizer::Sgd) && mode != PsMode::PullPush;
    let k = if direct_sgd { 1 } else { 2 + opt.aux_rows() };
    let w = ps2.dense_dcv(ctx, dim, k);
    let aux: Vec<Dcv> = (0..opt.aux_rows()).map(|_| w.derive(ctx)).collect();
    let g = if direct_sgd {
        None
    } else {
        Some(w.derive(ctx))
    };

    // The worker-slice update job for pull/push mode.
    let workers = ps2.spark.num_executors();
    let slices = ps2.spark.source(workers, |p, _w| vec![p as u64]);

    let start = ctx.now();
    for t in 1..=cfg.iterations {
        let it0 = ctx.now();
        let batch = data.sample(cfg.hyper.mini_batch_fraction, t as u64);
        let wd = w.clone();
        let gd = g.clone();
        let scale = 1.0 / expected_batch;
        let dense_pull = matches!(mode, PsMode::Petuum | PsMode::Distml);
        let dense_push = mode == PsMode::Petuum;

        // Gradient phase (workers).
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    if examples.is_empty() {
                        return (0.0, 0u64);
                    }
                    let (pairs, loss) = if dense_pull {
                        let wv = wd.pull(wk.sim);
                        grad_dense(examples, &wv)
                    } else {
                        let cols = distinct_cols(examples);
                        let wv = wd.pull_indices(wk.sim, &cols);
                        let (grad, loss) = grad_aligned(examples, &cols, &wv);
                        (cols.into_iter().zip(grad).collect::<Vec<_>>(), loss)
                    };
                    wk.sim.charge_flops(6 * batch_nnz(examples));
                    let target = gd.as_ref().unwrap_or(&wd);
                    let factor = if gd.is_some() { scale } else { -lr * scale };
                    if dense_push {
                        let mut dense = vec![0.0; wd.dim() as usize];
                        for (j, v) in &pairs {
                            dense[*j as usize] = v * factor;
                        }
                        target.add_dense(wk.sim, &dense);
                    } else {
                        let scaled: Vec<(u64, f64)> =
                            pairs.into_iter().map(|(j, v)| (j, v * factor)).collect();
                        target.add_sparse(wk.sim, &scaled);
                    }
                    (loss, examples.len() as u64)
                },
                |_r| 24,
            )
            .expect("gradient job failed");
        // The action return is the paper's global barrier (Figure 3 line 19).

        // Model update phase.
        if let Some(gdcv) = &g {
            match mode {
                PsMode::Ps2 => {
                    // Server-side zip over [w, aux.., g]; no model bytes
                    // move. The zip and the gradient-reset coalesce into one
                    // envelope per server — one round trip per iteration for
                    // the whole update phase.
                    let rows: Vec<&Dcv> = aux.iter().chain(std::iter::once(gdcv)).collect();
                    let mut update = PsBatch::new();
                    w.zip(&rows).map_partitions_in(
                        ctx,
                        &mut update,
                        opt.zip_fn(lr, t as i32),
                        opt.flops_per_elem(),
                    );
                    gdcv.zero_in(ctx, &mut update);
                    update.flush(ctx);
                }
                PsMode::PullPush | PsMode::Petuum | PsMode::Distml => {
                    // Without server-side computation the update runs on the
                    // workers. The pull/push interface is *row-granular*
                    // (the §4.1 limitation DCV exists to fix), so every
                    // worker pulls the full model rows, updates its 1/W
                    // slice locally, and pushes that slice's deltas back as
                    // a sparse row update.
                    let wd = w.clone();
                    let auxd = aux.clone();
                    let gdcv = gdcv.clone();
                    let nw = workers as u64;
                    let dim_ = dim;
                    let t_ = t as i32;
                    ps2.spark
                        .for_each_partition(ctx, &slices, move |ids, wk| {
                            let r = ids[0];
                            let lo = (r * dim_ / nw) as usize;
                            let hi = ((r + 1) * dim_ / nw) as usize;
                            if lo == hi {
                                return;
                            }
                            // Row-granular pulls: the whole of every vector.
                            let wv_full = wd.pull(wk.sim);
                            let auxv_full: Vec<Vec<f64>> =
                                auxd.iter().map(|a| a.pull(wk.sim)).collect();
                            let gv_full = gdcv.pull(wk.sim);
                            let mut wv = wv_full[lo..hi].to_vec();
                            let w_old = wv.clone();
                            let mut auxv: Vec<Vec<f64>> =
                                auxv_full.iter().map(|a| a[lo..hi].to_vec()).collect();
                            let aux_old = auxv.clone();
                            let gv = &gv_full[lo..hi];
                            let mut aux_refs: Vec<&mut [f64]> =
                                auxv.iter_mut().map(|v| v.as_mut_slice()).collect();
                            opt.apply(lr, t_, &mut wv, &mut aux_refs, gv);
                            wk.sim.charge_flops((hi - lo) as u64 * opt.flops_per_elem());
                            // Sparse row updates for the owned slice.
                            let delta_pairs = |new: &[f64], old: &[f64]| -> Vec<(u64, f64)> {
                                new.iter()
                                    .zip(old)
                                    .enumerate()
                                    .filter(|(_, (n, o))| *n != *o)
                                    .map(|(i, (n, o))| ((lo + i) as u64, n - o))
                                    .collect()
                            };
                            wd.add_sparse(wk.sim, &delta_pairs(&wv, &w_old));
                            for (a, (new_a, old_a)) in auxd.iter().zip(auxv.iter().zip(&aux_old)) {
                                a.add_sparse(wk.sim, &delta_pairs(new_a, old_a));
                            }
                            let neg_g: Vec<(u64, f64)> = gv
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| **v != 0.0)
                                .map(|(i, v)| ((lo + i) as u64, -v))
                                .collect();
                            gdcv.add_sparse(wk.sim, &neg_g);
                        })
                        .expect("update job failed");
                }
            }
        }

        if mode == PsMode::Distml {
            // DistML's monitor: an extra coordination round per iteration.
            let dummy = ps2.spark.count(ctx, &slices);
            let _ = dummy;
        }

        let mut loss_sum = 0.0;
        let mut n = 0u64;
        for (loss, cnt) in results {
            loss_sum += loss;
            n += cnt;
        }
        ctx.metric_add("ml.iterations", 1);
        ctx.metric_observe("ml.iteration", ctx.now() - it0);
        ctx.metric_gauge_set(
            "ml.loss_micro",
            (loss_sum / (n.max(1) as f64) * 1e6).round() as i64,
        );
        trace.record(start, ctx.now(), loss_sum / (n.max(1) as f64));
    }
    trace
}

/// MLlib\* (the paper's reference [34]): Spark MLlib improved with local
/// model replicas and ring-AllReduce model averaging instead of driver
/// aggregation. No parameter servers at all; requires one partition per
/// worker. Included as the strongest driver-free baseline.
pub fn train_lr_mllib_star(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LrConfig,
) -> TrainingTrace {
    assert!(
        matches!(cfg.optimizer, Optimizer::Sgd),
        "MLlib* emulation implements SGD with model averaging"
    );
    let gen = cfg.dataset.clone();
    let workers = ps2.spark.num_executors();
    assert_eq!(
        gen.partitions, workers,
        "MLlib* needs one partition per worker (AllReduce ranks)"
    );
    let dim = gen.dim as usize;
    let lr = cfg.hyper.learning_rate;
    let fraction = cfg.hyper.mini_batch_fraction;
    let expected_batch = (gen.rows as f64 * fraction / workers as f64).max(1.0);
    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(workers, move |p, w| {
            let rows = gen2.partition(p);
            w.sim.charge_mem(16 * batch_nnz(&rows));
            rows
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    let peers: Vec<ps2_simnet::ProcId> = ps2.spark.executors().to_vec();
    let mut trace = TrainingTrace::new("MLlib*-SGD");
    const KEY_MODEL: u64 = 0x57;
    let start = ctx.now();
    for t in 1..=cfg.iterations {
        let it0 = ctx.now();
        let batch = data.sample(fraction, t as u64);
        let peers_c = peers.clone();
        let nw = workers as f64;
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    let mut w: Vec<f64> =
                        wk.take_state(KEY_MODEL).unwrap_or_else(|| vec![0.0; dim]);
                    // Local SGD step on the replica.
                    let (pairs, loss) = grad_dense(examples, &w);
                    for (j, g) in &pairs {
                        w[*j as usize] -= lr * g / expected_batch;
                    }
                    wk.sim.charge_flops(6 * batch_nnz(examples));
                    // Model averaging via ring AllReduce.
                    ps2_dataflow::ring_allreduce_sum(wk, &peers_c, wk.partition, &mut w, 8);
                    for wi in w.iter_mut() {
                        *wi /= nw;
                    }
                    wk.sim.charge_flops(dim as u64);
                    wk.put_state(KEY_MODEL, w);
                    (loss, examples.len() as u64)
                },
                |_| 24,
            )
            .expect("mllib* iteration failed");
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        ctx.metric_add("ml.iterations", 1);
        ctx.metric_observe("ml.iteration", ctx.now() - it0);
        ctx.metric_gauge_set(
            "ml.loss_micro",
            (loss_sum / n.max(1) as f64 * 1e6).round() as i64,
        );
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
    }
    trace
}

/// Per-iteration virtual time of one backend at a given dimension — the
/// Figure 1(a)/13(b) metric.
pub fn time_per_iteration(trace: &TrainingTrace) -> f64 {
    trace.time_per_iteration()
}

/// Convenience: evaluate mean logistic loss of a dense weight vector over a
/// sample of the dataset, locally (used by tests).
pub fn eval_loss_local(gen: &SparseDatasetGen, w: &[f64], rows: u64) -> f64 {
    let mut loss = 0.0;
    let n = rows.min(gen.rows);
    for r in 0..n {
        let ex = gen.example(r);
        loss += log_loss(ex.label * ex.dot_dense(w));
    }
    loss / n.max(1) as f64
}
