//! The paper's Table 3: which systems support which algorithms.

/// The systems compared in §6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum System {
    SparkMllib,
    DistMl,
    Glint,
    Petuum,
    Xgboost,
    Ps2,
}

impl System {
    pub fn name(&self) -> &'static str {
        match self {
            System::SparkMllib => "Spark MLlib",
            System::DistMl => "DistML",
            System::Glint => "Glint",
            System::Petuum => "Petuum",
            System::Xgboost => "XGBoost",
            System::Ps2 => "PS2",
        }
    }

    pub fn all() -> [System; 6] {
        [
            System::SparkMllib,
            System::DistMl,
            System::Glint,
            System::Petuum,
            System::Xgboost,
            System::Ps2,
        ]
    }
}

/// The workloads of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    Lr,
    DeepWalk,
    Gbdt,
    Lda,
}

impl Algorithm {
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Lr => "LR",
            Algorithm::DeepWalk => "DeepWalk",
            Algorithm::Gbdt => "GBDT",
            Algorithm::Lda => "LDA",
        }
    }

    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Lr,
            Algorithm::DeepWalk,
            Algorithm::Gbdt,
            Algorithm::Lda,
        ]
    }
}

/// Table 3 verbatim.
pub fn supports(system: System, algo: Algorithm) -> bool {
    use Algorithm::*;
    use System::*;
    match (system, algo) {
        (SparkMllib, Lr) | (SparkMllib, Gbdt) | (SparkMllib, Lda) => true,
        (SparkMllib, DeepWalk) => false,
        (DistMl, Lr) | (DistMl, Lda) => true,
        (DistMl, _) => false,
        (Glint, Lda) => true,
        (Glint, _) => false,
        (Petuum, Lr) | (Petuum, Lda) => true,
        (Petuum, _) => false,
        (Xgboost, Gbdt) => true,
        (Xgboost, _) => false,
        (Ps2, _) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_spot_checks() {
        assert!(supports(System::Ps2, Algorithm::DeepWalk));
        assert!(!supports(System::SparkMllib, Algorithm::DeepWalk));
        assert!(supports(System::SparkMllib, Algorithm::Gbdt));
        assert!(!supports(System::Glint, Algorithm::Lr));
        assert!(supports(System::Xgboost, Algorithm::Gbdt));
        assert!(!supports(System::Xgboost, Algorithm::Lda));
        assert!(!supports(System::Petuum, Algorithm::Gbdt));
    }

    #[test]
    fn ps2_supports_everything() {
        for a in Algorithm::all() {
            assert!(supports(System::Ps2, a));
        }
    }

    #[test]
    fn support_counts_match_paper() {
        let count = |s: System| {
            Algorithm::all()
                .into_iter()
                .filter(|&a| supports(s, a))
                .count()
        };
        assert_eq!(count(System::SparkMllib), 3);
        assert_eq!(count(System::DistMl), 2);
        assert_eq!(count(System::Glint), 1);
        assert_eq!(count(System::Petuum), 2);
        assert_eq!(count(System::Xgboost), 1);
        assert_eq!(count(System::Ps2), 4);
    }
}
