//! Hyperparameter settings from the paper's Table 4 (Appendix A).

/// LR: `learning_rate = 0.618`, `mini_batch_fraction = 0.01`,
/// Adam `β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`.
#[derive(Clone, Copy, Debug)]
pub struct LrHyper {
    pub learning_rate: f64,
    pub mini_batch_fraction: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub epsilon: f64,
}

impl Default for LrHyper {
    fn default() -> Self {
        LrHyper {
            learning_rate: 0.618,
            mini_batch_fraction: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// DeepWalk: `length_of_random_walk = 8`, `batch_size = 512`,
/// `learning_rate = 0.01`, `window_size = 4`, `negative_sampling = 5`.
#[derive(Clone, Copy, Debug)]
pub struct DeepWalkHyper {
    pub walk_len: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub window_size: usize,
    pub negative_samples: usize,
    /// Embedding dimension `K` (paper §5.2.2: "one hundred or bigger").
    pub embedding_dim: u64,
}

impl Default for DeepWalkHyper {
    fn default() -> Self {
        DeepWalkHyper {
            walk_len: 8,
            batch_size: 512,
            learning_rate: 0.01,
            window_size: 4,
            negative_samples: 5,
            embedding_dim: 100,
        }
    }
}

/// GBDT: `learning_rate = 0.1`, `number_of_trees = 100`, `max_depth = 7`,
/// `size_of_histogram = 100`.
#[derive(Clone, Copy, Debug)]
pub struct GbdtHyper {
    pub learning_rate: f64,
    pub num_trees: usize,
    pub max_depth: usize,
    pub histogram_bins: usize,
    /// Minimum hessian mass per child for a split to be accepted.
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
}

impl Default for GbdtHyper {
    fn default() -> Self {
        GbdtHyper {
            learning_rate: 0.1,
            num_trees: 100,
            max_depth: 7,
            histogram_bins: 100,
            min_child_weight: 1.0,
            lambda: 1.0,
        }
    }
}

/// LDA: `α = 0.5`, `β = 0.01`.
#[derive(Clone, Copy, Debug)]
pub struct LdaHyper {
    pub alpha: f64,
    pub beta: f64,
    pub topics: u32,
}

impl Default for LdaHyper {
    fn default() -> Self {
        LdaHyper {
            alpha: 0.5,
            beta: 0.01,
            topics: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let lr = LrHyper::default();
        assert_eq!(lr.learning_rate, 0.618);
        assert_eq!(lr.mini_batch_fraction, 0.01);
        assert_eq!((lr.beta1, lr.beta2, lr.epsilon), (0.9, 0.999, 1e-8));
        let dw = DeepWalkHyper::default();
        assert_eq!(
            (
                dw.walk_len,
                dw.batch_size,
                dw.window_size,
                dw.negative_samples
            ),
            (8, 512, 4, 5)
        );
        assert_eq!(dw.learning_rate, 0.01);
        let g = GbdtHyper::default();
        assert_eq!((g.num_trees, g.max_depth, g.histogram_bins), (100, 7, 100));
        assert_eq!(g.learning_rate, 0.1);
        let l = LdaHyper::default();
        assert_eq!((l.alpha, l.beta), (0.5, 0.01));
    }
}
