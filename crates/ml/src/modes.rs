//! First-class consistency modes: one worker loop, three synchronization
//! disciplines.
//!
//! This is the generalization of the SSP prototype (`ssp.rs`): the same
//! Spark-free pull → gradient → push topology now runs under any
//! [`ConsistencyMode`] —
//!
//! * **BSP** — every iteration gated by the clock service with `bound = 0`
//!   (a barrier), parameter cache effectively disabled, pushes acknowledged
//!   before the iteration ends.
//! * **SSP(s)** — gated with `bound = s`; pulls are served from the
//!   worker-local [`ParamCache`] while within the bound, and push(t)
//!   overlaps compute(t+1) (split-phase [`MatrixHandle::push_sparse_begin`]
//!   / [`MatrixHandle::push_wait`]).
//! * **async** — no clock traffic at all; free-running workers with a
//!   ttl-bounded cache and pipelined pushes.
//!
//! Each worker emits a per-mode loss gauge `ml.loss_micro.<mode>` (e.g.
//! `ml.loss_micro.ssp2`) so the watchdog's convergence-stall detector can
//! track runs of different modes separately, plus the usual
//! `ml.iterations` counter and `ml.iteration` histogram.

use std::sync::Arc;

use parking_lot::Mutex;
use ps2_core::{InitKind, MatrixHandle, Partitioning, PsConfig, PsMaster};
use ps2_data::{Example, SparseDatasetGen};
use ps2_ps::{clock_main, deploy_ps, ClockClient, ConsistencyMode, ParamCache, PendingPush};
use ps2_simnet::{ProcId, SimBuilder, SimReport, SimTime};

use crate::lr::{distinct_cols, grad_aligned};
use crate::metrics::TrainingTrace;
use crate::sort_merge_pairs;
use crate::svm::hinge_grad;

/// L2 regularization used by the SVM update (matches `SvmConfig::reg`).
const SVM_REG: f64 = 1e-4;

/// Configuration for a consistency-mode training run.
#[derive(Clone, Debug)]
pub struct ModeConfig {
    pub dataset: SparseDatasetGen,
    pub workers: usize,
    pub servers: usize,
    pub mode: ConsistencyMode,
    pub iterations: u32,
    pub learning_rate: f64,
    pub mini_batch: usize,
    /// Extra compute time per iteration for worker 0, simulating a
    /// straggler (heterogeneous hardware / co-located jobs).
    pub straggler_slowdown: SimTime,
    pub seed: u64,
}

impl ModeConfig {
    pub fn new(
        dataset: SparseDatasetGen,
        workers: usize,
        servers: usize,
        mode: ConsistencyMode,
    ) -> ModeConfig {
        ModeConfig {
            dataset,
            workers,
            servers,
            mode,
            iterations: 30,
            learning_rate: 2.0,
            mini_batch: 64,
            straggler_slowdown: SimTime::ZERO,
            seed: 11,
        }
    }
}

/// Which gradient the mode engine trains with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeAlgo {
    /// Logistic regression (log loss).
    Lr,
    /// Linear SVM (hinge loss, L2 shrinkage).
    Svm,
}

impl ModeAlgo {
    pub fn label(&self) -> &'static str {
        match self {
            ModeAlgo::Lr => "lr",
            ModeAlgo::Svm => "svm",
        }
    }

    pub fn parse(s: &str) -> Result<ModeAlgo, String> {
        match s {
            "lr" => Ok(ModeAlgo::Lr),
            "svm" => Ok(ModeAlgo::Svm),
            other => Err(format!("unknown mode algorithm '{other}' (want lr|svm)")),
        }
    }

    fn grad(&self, batch: &[Example], cols: &[u64], w: &[f64]) -> (Vec<f64>, f64) {
        match self {
            ModeAlgo::Lr => grad_aligned(batch, cols, w),
            ModeAlgo::Svm => hinge_grad(batch, cols, w),
        }
    }

    fn flops_per_nnz(&self) -> u64 {
        match self {
            ModeAlgo::Lr => 6,
            ModeAlgo::Svm => 5,
        }
    }

    /// The sparse update for one mini-batch, aligned with `cols`.
    fn update(
        &self,
        cols: &[u64],
        grad: &[f64],
        wv: &[f64],
        learning_rate: f64,
        mini_batch: usize,
    ) -> Vec<(u64, f64)> {
        let scale = learning_rate / mini_batch as f64;
        let pairs = match self {
            ModeAlgo::Lr => cols
                .iter()
                .zip(grad)
                .map(|(&j, &g)| (j, -scale * g))
                .collect(),
            // SGD step plus L2 shrinkage on the touched coordinates.
            ModeAlgo::Svm => cols
                .iter()
                .zip(grad.iter().zip(wv))
                .map(|(&j, (&g, &wj))| (j, -scale * g - learning_rate * SVM_REG * wj))
                .collect(),
        };
        sort_merge_pairs(pairs)
    }
}

/// A worker's `[lo, hi)` row shard: contiguous ranges, remainders to the
/// tail workers.
pub fn shard_range(rows: u64, worker: usize, workers: usize) -> (u64, u64) {
    let w = worker as u64;
    let n = workers as u64;
    (w * rows / n, (w + 1) * rows / n)
}

/// The rows of worker-shard `(lo, hi)`'s mini-batch at iteration `t`: a
/// wrapped window of `mini_batch` consecutive rows starting at a
/// per-iteration offset *within* the shard.
///
/// The offset arithmetic is entirely shard-relative — the old SSP loop
/// added the absolute `lo` on both sides of the modulo, which aliased the
/// window and skewed every worker with `lo > 0` toward the front of its
/// shard (see the regression test in `tests/consistency_modes.rs`).
pub fn shard_batch_rows(shard: (u64, u64), t: u32, mini_batch: usize) -> Vec<u64> {
    let (lo, hi) = shard;
    let span = (hi - lo).max(1);
    let start = (t as u64 * 131) % span;
    (0..mini_batch as u64)
        .map(|i| lo + (start + i) % span)
        .collect()
}

/// One `(worker, iter, virtual secs, mean batch loss)` measurement.
type LossSample = (usize, u32, f64, f64);

/// Run mode-gated training on a dedicated (Spark-free) topology with the
/// default simulator. Returns the merged loss trace — per iteration index,
/// the mean loss and the mean completion time across workers — and the
/// simulation report.
pub fn run_mode(cfg: &ModeConfig, algo: ModeAlgo) -> (TrainingTrace, SimReport) {
    run_mode_with(SimBuilder::new(), cfg, algo)
}

/// [`run_mode`] on a caller-supplied simulator builder (tracing, telemetry
/// windows, …). The builder's seed is overridden by `cfg.seed`.
pub fn run_mode_with(
    builder: SimBuilder,
    cfg: &ModeConfig,
    algo: ModeAlgo,
) -> (TrainingTrace, SimReport) {
    let mut sim = builder.seed(cfg.seed).build();
    let (servers, storage) = deploy_ps(&mut sim, cfg.servers, 500e6);
    // The clock daemon is spawned in every mode — async runs send it no
    // traffic, but keeping it pins identical ProcIds across modes, so runs
    // differ only in behavior, never in topology.
    let clock_proc = sim.spawn_daemon("mode-clock", clock_main(cfg.workers));

    let samples: Arc<Mutex<Vec<LossSample>>> = Arc::new(Mutex::new(Vec::new()));

    // Spawn order fixes the ids: servers (0..S), storage (S), clock (S+1),
    // coordinator (S+2), then the workers.
    let worker_ids: Vec<ProcId> = (0..cfg.workers)
        .map(|w| ProcId(cfg.servers + 3 + w))
        .collect();
    {
        let cfg = cfg.clone();
        let worker_ids = worker_ids.clone();
        sim.spawn("mode-coordinator", move |ctx| {
            let mut master = PsMaster::new(servers, storage, PsConfig::default());
            let h = master.create_matrix(
                ctx,
                cfg.dataset.dim,
                1,
                Partitioning::Column,
                InitKind::Zero,
            );
            for &w in &worker_ids {
                ctx.send(w, 7, h.clone(), 64);
            }
        });
    }

    let gauge = format!("ml.loss_micro.{}", cfg.mode.label());
    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        let samples = Arc::clone(&samples);
        let gauge = gauge.clone();
        sim.spawn(&format!("mode-worker-{w}"), move |ctx| {
            let h: MatrixHandle = ctx.recv().downcast::<MatrixHandle>();
            let clock = ClockClient::new(clock_proc, w);
            let mut cache = ParamCache::new(cfg.mode);
            let mut inflight: Option<PendingPush> = None;
            let gen = cfg.dataset.clone();
            let shard = shard_range(gen.rows, w, cfg.workers);
            let start = ctx.now();
            for t in 1..=cfg.iterations {
                // The consistency gate; async modes free-run.
                if let Some(bound) = cfg.mode.bound() {
                    let min = clock.wait(ctx, t, bound);
                    assert!(min + bound + 1 >= t, "clock grant out of bound");
                }
                let it0 = ctx.now();
                cache.advance_clock(t);
                let batch: Vec<Example> = shard_batch_rows(shard, t, cfg.mini_batch)
                    .into_iter()
                    .map(|r| gen.example(r))
                    .collect();
                let cols = distinct_cols(&batch);
                let wv = cache.pull_cols(ctx, &h, 0, &cols);
                let (grad, loss) = algo.grad(&batch, &cols, &wv);
                let nnz: u64 = batch.iter().map(|e| e.features.len() as u64).sum();
                ctx.charge_flops(algo.flops_per_nnz() * nnz);
                if w == 0 {
                    // The straggler pays extra compute every iteration.
                    ctx.advance(cfg.straggler_slowdown);
                }
                let pairs = algo.update(&cols, &grad, &wv, cfg.learning_rate, cfg.mini_batch);
                // Read-my-writes before the push even lands.
                cache.note_push(0, &pairs);
                if cfg.mode.pipelined() {
                    // Overlap: settle push(t-1) only now, then leave
                    // push(t) in flight across the next compute.
                    if let Some(p) = inflight.take() {
                        h.push_wait(ctx, p);
                    }
                    inflight = Some(h.push_sparse_begin(ctx, 0, &pairs));
                } else {
                    h.push_sparse(ctx, 0, &pairs);
                }
                if cfg.mode.bound().is_some() {
                    clock.report(ctx, t);
                }
                ctx.metric_add("ml.iterations", 1);
                ctx.metric_observe("ml.iteration", ctx.now() - it0);
                ctx.metric_gauge_set(&gauge, (loss / cfg.mini_batch as f64 * 1e6).round() as i64);
                samples.lock().push((
                    w,
                    t,
                    (ctx.now() - start).as_secs_f64(),
                    loss / cfg.mini_batch as f64,
                ));
            }
            // Settle the last in-flight push before exiting.
            if let Some(p) = inflight.take() {
                h.push_wait(ctx, p);
            }
        });
    }

    let report = sim.run().expect("mode simulation failed");
    // Merge per-worker samples: per iteration, the mean loss and the mean
    // completion time across workers — under BSP everyone is
    // straggler-paced; under SSP/async the fast workers pull the mean down.
    let samples = samples.lock();
    let mut trace = TrainingTrace::new(format!("{}-{}", algo.label(), cfg.mode.label()));
    for t in 1..=cfg.iterations {
        let iter: Vec<&LossSample> = samples.iter().filter(|s| s.1 == t).collect();
        if iter.is_empty() {
            continue;
        }
        let time = iter.iter().map(|s| s.2).sum::<f64>() / iter.len() as f64;
        let loss = iter.iter().map(|s| s.3).sum::<f64>() / iter.len() as f64;
        trace.points.push((time, loss));
    }
    (trace, report)
}
