//! # Serving scenarios — heavy pull traffic against a trained PS fleet
//!
//! The paper motivates PS2 with *serving* scale ("millions of users" of
//! Tencent's production models, §1) as much as with training. This module is
//! that workload: a pre-trained model table lives row-partitioned across a
//! PS fleet of steppable server agents, and a population of **tens of
//! thousands of simulated endpoints** — aggregate open-loop
//! [`ServeClientAgent`]s, each standing in for a thousand users — drives
//! pull traffic with NuPS-style Zipf row skew. The scenario reports pull
//! tail latency (p99/p999 from the run's log2 histograms) and plugs into the
//! same SLO/watchdog stack as training presets.
//!
//! None of the serving procs holds an OS thread (the one thread proc is the
//! coordinator that loads the model and spawns the population), which is
//! what lets a default dev machine step 10k+ endpoints.

use std::sync::Arc;

use ps2_ps::{
    create_serve_table, InitKind, MatrixId, PartitionPlan, Partitioning, PsServerAgent,
    ServeClientAgent, ServeClientConfig,
};
use ps2_simnet::{SimBuilder, SimReport, SimTime};

/// Geometry and load of one serving scenario.
#[derive(Clone, Debug)]
pub struct ServeSpec {
    pub name: &'static str,
    /// Rows in the served table (embedding-style: one vector per entity).
    pub rows: u32,
    /// Columns per row (the pulled vector's width).
    pub dim: u64,
    pub servers: usize,
    /// Aggregate client agents; endpoints = `agents × users_per_agent`.
    pub agents: usize,
    pub users_per_agent: u32,
    /// Per-user think time: each user pulls once per `user_period`.
    pub user_period: SimTime,
    /// Generation window; agents then drain outstanding pulls and finish.
    pub duration: SimTime,
    /// Probability a pull is Zipf-skewed (vs uniform) and the exponent.
    pub zipf_fraction: f64,
    pub zipf_exponent: f64,
}

impl ServeSpec {
    pub fn endpoints(&self) -> u64 {
        self.agents as u64 * self.users_per_agent as u64
    }

    /// Aggregate offered load in pulls per virtual second.
    pub fn offered_rate(&self) -> f64 {
        self.endpoints() as f64 / self.user_period.as_secs_f64()
    }
}

/// Names accepted by `--preset serve-*`, in the order usage text lists them.
pub const SERVE_PRESETS: &[&str] = &["serve-kddb", "serve-kdd12"];

/// The serving counterpart of the training presets: same model family names,
/// serving-shaped tables. `serve-kddb` is a 10k-endpoint moderate-skew
/// scenario; `serve-kdd12` is wider (20k endpoints) with heavier skew, the
/// NuPS-style stress case.
pub fn serve_spec(preset: &str) -> Option<ServeSpec> {
    match preset {
        "serve-kddb" => Some(ServeSpec {
            name: "serve-kddb",
            rows: 100_000,
            dim: 64,
            servers: 8,
            agents: 10,
            users_per_agent: 1000,
            user_period: SimTime::from_millis(20),
            duration: SimTime::from_millis(400),
            zipf_fraction: 0.5,
            zipf_exponent: 1.0,
        }),
        "serve-kdd12" => Some(ServeSpec {
            name: "serve-kdd12",
            rows: 200_000,
            dim: 32,
            servers: 8,
            agents: 20,
            users_per_agent: 1000,
            user_period: SimTime::from_millis(25),
            duration: SimTime::from_millis(400),
            zipf_fraction: 0.8,
            zipf_exponent: 1.2,
        }),
        _ => None,
    }
}

/// What a serving run measured, distilled from the run report's metrics.
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    pub endpoints: u64,
    /// Pulls issued (requests on the wire) and completed (replies gathered).
    pub issued: u64,
    pub completed: u64,
    pub virtual_ns: u64,
    /// Pull-latency tail, nanoseconds of virtual time.
    pub p99_ns: u64,
    pub p999_ns: u64,
}

/// Run one serving scenario: spawn the fleet as steppable daemon agents,
/// load the "trained" table (a deterministic [`InitKind::Uniform`] snapshot
/// standing in for a training checkpoint), then release the client
/// population. Returns the distilled summary plus the full report for SLO
/// evaluation and trace export.
pub fn run_serve(builder: SimBuilder, spec: &ServeSpec) -> (ServeSummary, SimReport) {
    let mut sim = builder.build();
    let servers: Vec<_> = (0..spec.servers)
        .map(|i| sim.spawn_agent_daemon(&format!("ps-server-{i}"), PsServerAgent::new()))
        .collect();
    let plan = Arc::new(PartitionPlan::new(
        spec.dim,
        spec.rows,
        spec.servers,
        Partitioning::Row,
    ));
    let matrix = MatrixId(1);
    let spec_c = spec.clone();
    sim.spawn("serve-coordinator", move |ctx| {
        // "Load the trained model": one idempotent CREATE per server with a
        // deterministic snapshot, the checkpoint stand-in.
        let init = InitKind::Uniform {
            lo: -0.5,
            hi: 0.5,
            seed: 42,
        };
        create_serve_table(ctx, &servers, matrix, &plan, init);
        // Release the population at the coordinator's post-load clock so the
        // open-loop schedules start only once the table is servable.
        for a in 0..spec_c.agents {
            let cfg = ServeClientConfig {
                servers: servers.clone(),
                matrix,
                plan: Arc::clone(&plan),
                users: spec_c.users_per_agent,
                user_period: spec_c.user_period,
                duration: spec_c.duration,
                zipf_fraction: spec_c.zipf_fraction,
                zipf_exponent: spec_c.zipf_exponent,
                value_bytes: 8,
            };
            ctx.spawn_agent(&format!("serve-clients-{a}"), ServeClientAgent::new(cfg));
        }
    });
    let report = sim.run().expect("serve simulation failed");
    let issued = report.metrics.counter("ps.client.envelopes");
    let completed = report.metrics.counter("ps.client.op.pull.count");
    let (p99_ns, p999_ns) = report
        .metrics
        .hist("ps.client.op.pull.latency")
        .map(|h| (h.quantile_ns(0.99), h.quantile_ns(0.999)))
        .unwrap_or((0, 0));
    let summary = ServeSummary {
        endpoints: spec.endpoints(),
        issued,
        completed,
        virtual_ns: report.virtual_time.as_nanos(),
        p99_ns,
        p999_ns,
    };
    (summary, report)
}
