//! Optimizers (§5.2.4: SGD, Adam, Adagrad, RMSProp) with two faces:
//! a local in-memory update (used by driver-side and pull/push baselines)
//! and a server-side DCV `zip` closure (used by PS2).

use std::sync::Arc;

use ps2_core::ZipSegs;
use ps2_ps::ZipMutFn;

/// Element-wise optimizer update rule. The model layout is
/// `[w, aux..., g]`: the weight vector, `aux_rows()` auxiliary vectors, and
/// the accumulated gradient.
#[derive(Clone, Copy, Debug)]
pub enum Optimizer {
    /// Plain SGD — no auxiliary state; the update is just `w -= η·g`, which
    /// pull/push systems can do with a scaled push.
    Sgd,
    /// Adam (paper Equation 1).
    Adam {
        beta1: f64,
        beta2: f64,
        epsilon: f64,
    },
    /// Adagrad: accumulate squared gradients.
    Adagrad { epsilon: f64 },
    /// RMSProp: exponentially decayed squared gradients.
    RmsProp { decay: f64, epsilon: f64 },
    /// FTRL-Proximal — the de-facto CTR optimizer: per-coordinate
    /// accumulators `z`, `n` and built-in L1 sparsification.
    Ftrl {
        alpha: f64,
        beta: f64,
        l1: f64,
        l2: f64,
    },
}

impl Optimizer {
    pub fn name(&self) -> &'static str {
        match self {
            Optimizer::Sgd => "SGD",
            Optimizer::Adam { .. } => "Adam",
            Optimizer::Adagrad { .. } => "Adagrad",
            Optimizer::RmsProp { .. } => "RMSProp",
            Optimizer::Ftrl { .. } => "FTRL",
        }
    }

    /// Number of auxiliary vectors between `w` and `g`.
    pub fn aux_rows(&self) -> u32 {
        match self {
            Optimizer::Sgd => 0,
            Optimizer::Adam { .. } => 2, // s (squared avg), v (grad avg)
            Optimizer::Adagrad { .. } => 1,
            Optimizer::RmsProp { .. } => 1,
            Optimizer::Ftrl { .. } => 2, // z (linear accumulator), n (squared)
        }
    }

    /// Approximate flops per element of one update, for compute charging.
    pub fn flops_per_elem(&self) -> u64 {
        match self {
            Optimizer::Sgd => 2,
            Optimizer::Adam { .. } => 14,
            Optimizer::Adagrad { .. } => 8,
            Optimizer::RmsProp { .. } => 9,
            Optimizer::Ftrl { .. } => 12,
        }
    }

    /// Apply one step in place. `segs` is `[w, aux..., g]` (gradient left
    /// untouched); `t` is the 1-based iteration (Adam bias correction).
    pub fn apply(&self, lr: f64, t: i32, w: &mut [f64], aux: &mut [&mut [f64]], g: &[f64]) {
        match *self {
            Optimizer::Sgd => {
                for (wi, gi) in w.iter_mut().zip(g) {
                    *wi -= lr * gi;
                }
            }
            Optimizer::Adam {
                beta1,
                beta2,
                epsilon,
            } => {
                let [s, v] = aux else {
                    panic!("Adam needs 2 aux vectors")
                };
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                for i in 0..w.len() {
                    s[i] = beta1 * s[i] + (1.0 - beta1) * g[i] * g[i];
                    v[i] = beta2 * v[i] + (1.0 - beta2) * g[i];
                    let s_hat = s[i] / bc1;
                    let v_hat = v[i] / bc2;
                    w[i] -= lr * v_hat / (s_hat.sqrt() + epsilon);
                }
            }
            Optimizer::Adagrad { epsilon } => {
                let [acc] = aux else {
                    panic!("Adagrad needs 1 aux vector")
                };
                for i in 0..w.len() {
                    acc[i] += g[i] * g[i];
                    w[i] -= lr * g[i] / (acc[i].sqrt() + epsilon);
                }
            }
            Optimizer::RmsProp { decay, epsilon } => {
                let [acc] = aux else {
                    panic!("RMSProp needs 1 aux vector")
                };
                for i in 0..w.len() {
                    acc[i] = decay * acc[i] + (1.0 - decay) * g[i] * g[i];
                    w[i] -= lr * g[i] / (acc[i].sqrt() + epsilon);
                }
            }
            Optimizer::Ftrl {
                alpha,
                beta,
                l1,
                l2,
            } => {
                // `lr` scales the gradient (usually 1.0 for FTRL; `alpha`
                // is the per-coordinate rate).
                let [z, n] = aux else {
                    panic!("FTRL needs 2 aux vectors")
                };
                for i in 0..w.len() {
                    let gi = lr * g[i];
                    let sigma = ((n[i] + gi * gi).sqrt() - n[i].sqrt()) / alpha;
                    z[i] += gi - sigma * w[i];
                    n[i] += gi * gi;
                    w[i] = if z[i].abs() <= l1 {
                        0.0
                    } else {
                        -(z[i] - l1 * z[i].signum()) / ((beta + n[i].sqrt()) / alpha + l2)
                    };
                }
            }
        }
    }

    /// The same update as a server-side zip over `[w, aux..., g]` segments
    /// (paper Figure 3 lines 21-26).
    pub fn zip_fn(&self, lr: f64, t: i32) -> ZipMutFn {
        let opt = *self;
        Arc::new(move |zs: &mut ZipSegs<'_>| {
            let n = zs.segs.len();
            debug_assert_eq!(n, 2 + opt.aux_rows() as usize);
            // Split [w | aux.. | g] without overlapping borrows.
            let (w, rest) = zs.segs.split_first_mut().expect("zip needs segments");
            let (g, aux) = rest.split_last_mut().expect("zip needs gradient row");
            opt.apply(lr, t, w, aux, g);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(opt: Optimizer, steps: usize) -> Vec<f64> {
        let mut w = vec![1.0, -2.0, 0.5];
        let mut aux_store: Vec<Vec<f64>> = (0..opt.aux_rows()).map(|_| vec![0.0; 3]).collect();
        let g = vec![0.5, -1.0, 0.0];
        for t in 1..=steps {
            let mut aux: Vec<&mut [f64]> = aux_store.iter_mut().map(|v| v.as_mut_slice()).collect();
            opt.apply(0.1, t as i32, &mut w, &mut aux, &g);
        }
        w
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let w = step(Optimizer::Sgd, 1);
        assert!((w[0] - 0.95).abs() < 1e-12);
        assert!((w[1] + 1.9).abs() < 1e-12);
        assert_eq!(w[2], 0.5);
    }

    #[test]
    fn adam_first_step_is_signed_learning_rate() {
        // With bias correction, Adam's first step is ~lr * sign(g).
        let w = step(
            Optimizer::Adam {
                beta1: 0.9,
                beta2: 0.999,
                epsilon: 1e-8,
            },
            1,
        );
        assert!((w[0] - (1.0 - 0.1)).abs() < 1e-6);
        assert!((w[1] - (-2.0 + 0.1)).abs() < 1e-6);
        assert_eq!(w[2], 0.5, "zero gradient must not move the weight");
    }

    #[test]
    fn adagrad_steps_shrink_over_time() {
        let opt = Optimizer::Adagrad { epsilon: 1e-8 };
        let w1 = step(opt, 1);
        let w5 = step(opt, 5);
        let first_step = (1.0 - w1[0]).abs();
        let avg_later = (w1[0] - w5[0]).abs() / 4.0;
        assert!(avg_later < first_step);
    }

    #[test]
    fn rmsprop_converges_on_constant_gradient() {
        let w = step(
            Optimizer::RmsProp {
                decay: 0.9,
                epsilon: 1e-8,
            },
            20,
        );
        assert!(w[0] < 1.0 && w[1] > -2.0);
    }

    #[test]
    fn ftrl_sparsifies_and_learns() {
        let opt = Optimizer::Ftrl {
            alpha: 0.5,
            beta: 1.0,
            l1: 0.05,
            l2: 0.0,
        };
        let mut w = vec![0.0; 3];
        let mut z = vec![0.0; 3];
        let mut n = vec![0.0; 3];
        // Coordinate 0 sees a persistent gradient, 1 a tiny one, 2 none.
        for _ in 0..20 {
            let g = vec![0.5, 0.001, 0.0];
            let mut aux: Vec<&mut [f64]> = vec![&mut z, &mut n];
            opt.apply(1.0, 1, &mut w, &mut aux, &g);
        }
        assert!(
            w[0] < -0.1,
            "persistent gradient moves the weight: {}",
            w[0]
        );
        assert_eq!(w[1], 0.0, "L1 zeroes out the noise coordinate");
        assert_eq!(w[2], 0.0, "untouched coordinate stays zero");
    }

    #[test]
    fn zip_fn_matches_apply() {
        let opt = Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        };
        // Local reference.
        let mut w_ref = vec![1.0; 4];
        let mut s_ref = vec![0.0; 4];
        let mut v_ref = vec![0.0; 4];
        let g = vec![0.3, -0.2, 0.0, 1.0];
        {
            let mut aux: Vec<&mut [f64]> = vec![&mut s_ref, &mut v_ref];
            opt.apply(0.05, 1, &mut w_ref, &mut aux, &g);
        }
        // Zip path.
        let f = opt.zip_fn(0.05, 1);
        let mut w2 = vec![1.0; 4];
        let mut s2 = vec![0.0; 4];
        let mut v2 = vec![0.0; 4];
        let mut g2 = g.clone();
        let mut zs = ZipSegs {
            segs: vec![&mut w2, &mut s2, &mut v2, &mut g2],
            lo: 0,
        };
        f(&mut zs);
        assert_eq!(w_ref, w2);
        assert_eq!(s_ref, s2);
        assert_eq!(v_ref, v2);
    }
}
