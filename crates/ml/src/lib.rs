//! # ps2-ml — the paper's ML workloads and baseline systems
//!
//! Every model from the paper's evaluation (§5.2, §6), each implemented
//! against one or more *execution backends* that reproduce the
//! communication structure of the compared systems:
//!
//! | model | backends |
//! |---|---|
//! | [`lr`] Logistic Regression (SGD/Adam/Adagrad/RMSProp) | `SparkDriver` (MLlib), `PsPullPush` (PS-), `Ps2Dcv` (PS2-), `PetuumStyle`, `DistmlStyle` |
//! | [`deepwalk`] DeepWalk graph embedding | `PsPullPush`, `Ps2Dcv` |
//! | [`gbdt`] Gradient Boosted Decision Trees | `Ps2Dcv`, `XgboostStyle` (ring AllReduce) |
//! | [`lda`] Latent Dirichlet Allocation (collapsed Gibbs) | `Ps2Dcv`, `PetuumStyle`, `GlintStyle`, `SparkDriver` (MLlib) |
//! | [`svm`] linear SVM (hinge loss) | `Ps2Dcv` |
//! | [`lbfgs`] L-BFGS for LR | `Ps2Dcv` (two-loop recursion on DCVs) |
//!
//! All training runs on the simulated cluster: the math is real (losses are
//! genuine convergence curves), the clock is virtual (a 10 Gbps cluster's
//! communication structure). Each run returns a [`TrainingTrace`] of
//! `(virtual seconds, loss)` points — the series behind every figure in the
//! paper's §6.

pub mod capabilities;
pub mod deepwalk;
pub mod fm;
pub mod gbdt;
pub mod hyper;
pub mod lbfgs;
pub mod lda;
pub mod lr;
mod metrics;
pub mod modes;
pub mod optim;
pub mod serve;
pub mod ssp;
pub mod svm;

pub use metrics::{auc, StepBreakdown, TrainingTrace};

/// Sort-and-merge raw `(index, value)` accumulations into the strictly
/// increasing form PS pushes require.
pub(crate) fn sort_merge_pairs(mut pairs: Vec<(u64, f64)>) -> Vec<(u64, f64)> {
    pairs.sort_unstable_by_key(|&(j, _)| j);
    pairs.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 += b.1;
            true
        } else {
            false
        }
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::sort_merge_pairs;

    #[test]
    fn sort_merge_accumulates_duplicates() {
        let merged = sort_merge_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (2, -1.0)]);
        assert_eq!(merged, vec![(2, 1.0), (5, 4.0)]);
    }

    #[test]
    fn sort_merge_handles_empty_and_single() {
        assert!(sort_merge_pairs(vec![]).is_empty());
        assert_eq!(sort_merge_pairs(vec![(0, 1.0)]), vec![(0, 1.0)]);
    }
}
