//! Gradient Boosted Decision Trees (paper §5.2.3, Figures 7/8, evaluated in
//! Figure 11 against XGBoost).
//!
//! Histogram-based GBDT for binary classification with logistic loss. Per
//! tree node (the paper's Figure 8 loop) the workers build first- and
//! second-order gradient histograms over `(feature, bin)` cells; the split
//! is found from the aggregated histograms. The two backends differ only in
//! *where the histograms meet*:
//!
//! * **PS2** — workers `add` their partial histograms to two co-located
//!   DCVs (`gradHist`, `hessHist`); split finding runs server-side as a
//!   `zip`-argmax, so only the winning `(gain, cell)` crosses the network.
//! * **XGBoost-style** — workers ring-AllReduce the full histograms among
//!   themselves (`2·(W-1)/W · |H|` values each way, `2(W-1)` sequential
//!   latency steps), then each finds the split locally — the cost the paper
//!   blames for XGBoost's slowdown (§6.3.2).

use std::sync::Arc;

use ps2_core::Ps2Context;
use ps2_data::{Example, SparseDatasetGen};
use ps2_dataflow::ring_allreduce_sum;
use ps2_simnet::{ProcId, SimCtx};

use crate::hyper::GbdtHyper;
use crate::lr::{log_loss, sigmoid};
use crate::metrics::TrainingTrace;

/// Execution backend for GBDT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GbdtBackend {
    /// Histograms on parameter servers, server-side split finding.
    Ps2Dcv,
    /// Ring-AllReduce of histograms among workers.
    XgboostStyle,
}

impl GbdtBackend {
    pub fn label(&self) -> &'static str {
        match self {
            GbdtBackend::Ps2Dcv => "PS2-GBDT",
            GbdtBackend::XgboostStyle => "XGBoost",
        }
    }
}

/// GBDT training configuration.
#[derive(Clone, Debug)]
pub struct GbdtConfig {
    pub dataset: SparseDatasetGen,
    pub hyper: GbdtHyper,
}

/// One node of a regression tree, in array form.
#[derive(Clone, Copy, Debug)]
pub enum TreeNode {
    /// Internal: instances with `feature` present and `bin(value) <= bin`
    /// go left; others (including absent) go right.
    Split {
        feature: u32,
        bin: u32,
    },
    Leaf {
        weight: f64,
    },
    /// Not expanded (child indices beyond the frontier).
    Empty,
}

/// A complete tree: heap-ordered nodes (children of `i` at `2i+1`, `2i+2`).
#[derive(Clone, Debug)]
pub struct Tree {
    pub nodes: Vec<TreeNode>,
    pub bins: u32,
}

impl Tree {
    fn new(max_depth: usize, bins: u32) -> Tree {
        Tree {
            nodes: vec![TreeNode::Empty; (1 << (max_depth + 1)) - 1],
            bins,
        }
    }

    /// Route an example to its leaf weight.
    pub fn predict(&self, ex: &Example) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                TreeNode::Leaf { weight } => return weight,
                TreeNode::Empty => return 0.0,
                TreeNode::Split { feature, bin } => {
                    let goes_left = ex
                        .features
                        .binary_search_by_key(&(feature as u64), |&(j, _)| j)
                        .map(|pos| value_bin(ex.features[pos].1, self.bins) <= bin)
                        .unwrap_or(false);
                    i = if goes_left { 2 * i + 1 } else { 2 * i + 2 };
                }
            }
        }
    }
}

#[inline]
fn value_bin(v: f64, bins: u32) -> u32 {
    ((v * bins as f64) as u32).min(bins - 1)
}

/// A trained boosted ensemble: prediction and introspection.
#[derive(Clone, Debug)]
pub struct GbdtModel {
    pub trees: Vec<Tree>,
}

impl GbdtModel {
    pub fn new(trees: Vec<Tree>) -> GbdtModel {
        GbdtModel { trees }
    }

    /// Raw additive margin (pass through a sigmoid for a probability).
    pub fn predict_margin(&self, ex: &Example) -> f64 {
        self.trees.iter().map(|t| t.predict(ex)).sum()
    }

    /// Class prediction in {−1, +1}.
    pub fn predict_label(&self, ex: &Example) -> f64 {
        if self.predict_margin(ex) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Split-count feature importance: how often each feature is chosen
    /// across the ensemble (a standard, cheap importance measure).
    pub fn feature_importance(&self, n_features: u32) -> Vec<u64> {
        let mut counts = vec![0u64; n_features as usize];
        for tree in &self.trees {
            for node in &tree.nodes {
                if let TreeNode::Split { feature, .. } = node {
                    counts[*feature as usize] += 1;
                }
            }
        }
        counts
    }

    /// Accuracy over a slice of examples.
    pub fn accuracy(&self, examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|ex| self.predict_label(ex) == ex.label)
            .count();
        correct as f64 / examples.len() as f64
    }
}

/// XGBoost gain for a split, with L2 regularization.
#[inline]
fn gain(gl: f64, hl: f64, g: f64, h: f64, lambda: f64) -> f64 {
    let gr = g - gl;
    let hr = h - hl;
    0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - g * g / (h + lambda))
}

/// Scan one histogram pair for the best split among the features whose bins
/// lie entirely in `[lo, lo + seg_len)`. Returns `(gain, global cell idx)`.
#[allow(clippy::too_many_arguments)]
fn best_split_in_segment(
    grad: &[f64],
    hess: &[f64],
    lo: u64,
    bins: u32,
    node_g: f64,
    node_h: f64,
    lambda: f64,
    min_child: f64,
) -> (f64, u64) {
    let b = bins as u64;
    let hi = lo + grad.len() as u64;
    let first_feat = lo.div_ceil(b);
    let mut best = (f64::NEG_INFINITY, u64::MAX);
    let mut f = first_feat;
    while (f + 1) * b <= hi {
        let off = (f * b - lo) as usize;
        let (mut gl, mut hl) = (0.0, 0.0);
        for t in 0..(b as usize - 1) {
            gl += grad[off + t];
            hl += hess[off + t];
            if hl < min_child || node_h - hl < min_child {
                continue;
            }
            let gn = gain(gl, hl, node_g, node_h, lambda);
            let cell = f * b + t as u64;
            if gn > best.0 || (gn == best.0 && cell < best.1) {
                best = (gn, cell);
            }
        }
        f += 1;
    }
    best
}

/// Features whose bin ranges straddle a boundary of `plan_ranges` — their
/// split scan cannot run inside one server and is fixed up client-side.
fn straddling_features(ranges: &[(u64, u64)], bins: u32, n_features: u32) -> Vec<u32> {
    let b = bins as u64;
    let mut out = Vec::new();
    for &(lo, _hi) in ranges.iter().skip(1) {
        if lo % b != 0 {
            let f = (lo / b) as u32;
            if f < n_features {
                out.push(f);
            }
        }
    }
    out.dedup();
    out
}

/// Build one local histogram pair for the instances currently in `node`.
fn build_local_histograms(
    examples: &[Example],
    assign: &[u32],
    grads: &[(f64, f64)],
    node: u32,
    bins: u32,
    cells: usize,
) -> (Vec<f64>, Vec<f64>, f64, f64, u64) {
    let mut gh = vec![0.0; cells];
    let mut hh = vec![0.0; cells];
    let (mut ng, mut nh) = (0.0, 0.0);
    let mut count = 0u64;
    for (i, ex) in examples.iter().enumerate() {
        if assign[i] != node {
            continue;
        }
        let (g, h) = grads[i];
        ng += g;
        nh += h;
        count += 1;
        for &(j, v) in ex.features.iter() {
            let cell = j as usize * bins as usize + value_bin(v, bins) as usize;
            gh[cell] += g;
            hh[cell] += h;
        }
    }
    (gh, hh, ng, nh, count)
}

// Known limitation: the per-partition assignment/gradient state lives in
// executor memory between stages. An executor lost *mid-tree* cannot
// rebuild it (it would require replaying the partial tree against the
// partition), so GBDT training aborts on mid-tree executor loss rather than
// recovering; losses between trees are tolerated (state is rebuilt from the
// margins at each tree start, and margins re-derive from the model).

/// State keys in the executor-resident store.
const KEY_MARGIN: u64 = 0x6d61;
const KEY_ASSIGN: u64 = 0x6173;
const KEY_GRADS: u64 = 0x6772;

/// Train a GBDT model; returns `(trace, trees)`. The trace has one point
/// per tree: `(virtual time, mean training logloss after that tree)`.
pub fn train_gbdt(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &GbdtConfig,
    backend: GbdtBackend,
) -> (TrainingTrace, Vec<Tree>) {
    let gen = cfg.dataset.clone();
    let parts = gen.partitions;
    let workers = ps2.spark.num_executors();
    if backend == GbdtBackend::XgboostStyle {
        assert_eq!(
            parts, workers,
            "the AllReduce backend needs exactly one partition per worker"
        );
    }
    let bins = cfg.hyper.histogram_bins as u32;
    let n_features = gen.dim as u32;
    let cells = (gen.dim * bins as u64) as usize;
    let lambda = cfg.hyper.lambda;
    let min_child = cfg.hyper.min_child_weight;
    let eta = cfg.hyper.learning_rate;
    let max_depth = cfg.hyper.max_depth;

    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let rows = gen2.partition(p);
            let nnz: u64 = rows.iter().map(|e| e.features.len() as u64).sum();
            w.sim.charge_mem(16 * nnz);
            rows
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    // The PS2 histograms: gradHist = dense(cells, 2), hessHist derived
    // (paper Figure 8 lines 2-3), reused across nodes.
    let (grad_hist, hess_hist) = if backend == GbdtBackend::Ps2Dcv {
        let g = ps2.dense_dcv(ctx, cells as u64, 2);
        let h = g.derive(ctx);
        (Some(g), Some(h))
    } else {
        (None, None)
    };
    let executors: Vec<ProcId> = ps2.spark.executors().to_vec();

    let mut trace = TrainingTrace::new(backend.label());
    let mut trees: Vec<Tree> = Vec::with_capacity(cfg.hyper.num_trees);
    let start = ctx.now();

    for _tree_idx in 0..cfg.hyper.num_trees {
        // Phase A: refresh gradients from current margins; reset assignment.
        ps2.spark
            .for_each_partition(ctx, &data, move |examples, w| {
                let margins: Vec<f64> = w
                    .take_state(KEY_MARGIN)
                    .unwrap_or_else(|| vec![0.0; examples.len()]);
                let grads: Vec<(f64, f64)> = examples
                    .iter()
                    .zip(&margins)
                    .map(|(ex, &m)| {
                        let p = sigmoid(m);
                        let y01 = if ex.label > 0.0 { 1.0 } else { 0.0 };
                        (p - y01, (p * (1.0 - p)).max(1e-12))
                    })
                    .collect();
                w.sim.charge_flops(4 * examples.len() as u64);
                w.put_state(KEY_MARGIN, margins);
                w.put_state(KEY_GRADS, grads);
                w.put_state(KEY_ASSIGN, vec![0u32; examples.len()]);
            })
            .expect("gradient refresh failed");

        // Phase B: grow the tree node by node (paper Figure 8's loop).
        let mut tree = Tree::new(max_depth, bins);
        // Frontier entries: (node index, depth, node G, node H, count).
        // Root stats are discovered by its histogram build.
        let mut frontier: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((node, depth)) = frontier.pop() {
            // B1: build + aggregate histograms for this node.
            let (node_g, node_h, count, split) = match backend {
                GbdtBackend::Ps2Dcv => {
                    let gh = grad_hist.as_ref().unwrap();
                    let hh = hess_hist.as_ref().unwrap();
                    gh.zero(ctx);
                    hh.zero(ctx);
                    let ghc = gh.clone();
                    let hhc = hh.clone();
                    let node_u = node as u32;
                    let stats = ps2
                        .spark
                        .run_job(
                            ctx,
                            &data,
                            move |examples, w| {
                                let assign: Vec<u32> =
                                    w.take_state(KEY_ASSIGN).expect("assignment missing");
                                let grads: Vec<(f64, f64)> =
                                    w.take_state(KEY_GRADS).expect("grads missing");
                                let (lg, lh, ng, nh, cnt) = build_local_histograms(
                                    examples, &assign, &grads, node_u, bins, cells,
                                );
                                w.sim.charge_flops(
                                    4 * examples
                                        .iter()
                                        .map(|e| e.features.len() as u64)
                                        .sum::<u64>(),
                                );
                                ghc.add_dense(w.sim, &lg);
                                hhc.add_dense(w.sim, &lh);
                                w.put_state(KEY_ASSIGN, assign);
                                w.put_state(KEY_GRADS, grads);
                                (ng, nh, cnt)
                            },
                            |_| 32,
                        )
                        .expect("histogram job failed");
                    let (mut g, mut h, mut c) = (0.0, 0.0, 0u64);
                    for (ng, nh, cnt) in stats {
                        g += ng;
                        h += nh;
                        c += cnt;
                    }
                    // B2: server-side split finding over complete features…
                    let (mut best_gain, mut best_cell) = gh.zip(&[hh]).map_argmax(
                        ctx,
                        Arc::new(move |segs, lo| {
                            best_split_in_segment(
                                segs[0], segs[1], lo, bins, g, h, lambda, min_child,
                            )
                        }),
                        3,
                    );
                    // …plus a client-side fix-up for boundary-straddling
                    // features (their bins span two servers).
                    let plan_ranges: Vec<(u64, u64)> = gh
                        .matrix()
                        .plan
                        .column_ranges()
                        .iter()
                        .map(|&(_, lo, hi)| (lo, hi))
                        .collect();
                    for f in straddling_features(&plan_ranges, bins, n_features) {
                        let lo = f as u64 * bins as u64;
                        let hi = lo + bins as u64;
                        let cols: Vec<u64> = (lo..hi).collect();
                        let gvals = gh.pull_indices(ctx, &cols);
                        let hvals = hh.pull_indices(ctx, &cols);
                        let (gn, cell) = best_split_in_segment(
                            &gvals, &hvals, lo, bins, g, h, lambda, min_child,
                        );
                        if gn > best_gain {
                            best_gain = gn;
                            best_cell = cell;
                        }
                    }
                    (g, h, c, (best_gain, best_cell))
                }
                GbdtBackend::XgboostStyle => {
                    let peers = executors.clone();
                    let node_u = node as u32;
                    let results = ps2
                        .spark
                        .run_job(
                            ctx,
                            &data,
                            move |examples, w| {
                                let assign: Vec<u32> =
                                    w.take_state(KEY_ASSIGN).expect("assignment missing");
                                let grads: Vec<(f64, f64)> =
                                    w.take_state(KEY_GRADS).expect("grads missing");
                                let (mut lg, mut lh, ng, nh, cnt) = build_local_histograms(
                                    examples, &assign, &grads, node_u, bins, cells,
                                );
                                w.sim.charge_flops(
                                    4 * examples
                                        .iter()
                                        .map(|e| e.features.len() as u64)
                                        .sum::<u64>(),
                                );
                                w.put_state(KEY_ASSIGN, assign);
                                w.put_state(KEY_GRADS, grads);
                                // AllReduce both histograms and the node stats.
                                let rank = w.partition;
                                let mut stats = vec![ng, nh, cnt as f64];
                                ring_allreduce_sum(w, &peers, rank, &mut lg, 8);
                                ring_allreduce_sum(w, &peers, rank, &mut lh, 8);
                                ring_allreduce_sum(w, &peers, rank, &mut stats, 8);
                                // Every worker finds the split locally.
                                let (gn, cell) = best_split_in_segment(
                                    &lg, &lh, 0, bins, stats[0], stats[1], lambda, min_child,
                                );
                                w.sim.charge_flops(3 * cells as u64);
                                (stats[0], stats[1], stats[2] as u64, gn, cell)
                            },
                            |_| 48,
                        )
                        .expect("histogram job failed");
                    let (g, h, c, gn, cell) = results[0];
                    (g, h, c, (gn, cell))
                }
            };

            // B3: decide split vs leaf.
            let (best_gain, best_cell) = split;
            let make_leaf =
                depth >= max_depth || count < 2 || best_gain <= 1e-9 || best_cell == u64::MAX;
            if make_leaf {
                tree.nodes[node] = TreeNode::Leaf {
                    weight: -eta * node_g / (node_h + lambda),
                };
                continue;
            }
            let feature = (best_cell / bins as u64) as u32;
            let bin = (best_cell % bins as u64) as u32;
            tree.nodes[node] = TreeNode::Split { feature, bin };
            frontier.push((2 * node + 1, depth + 1));
            frontier.push((2 * node + 2, depth + 1));

            // B4: reassign this node's instances to its children.
            let node_u = node as u32;
            ps2.spark
                .for_each_partition(ctx, &data, move |examples, w| {
                    let mut assign: Vec<u32> =
                        w.take_state(KEY_ASSIGN).expect("assignment missing");
                    for (i, ex) in examples.iter().enumerate() {
                        if assign[i] != node_u {
                            continue;
                        }
                        let left = ex
                            .features
                            .binary_search_by_key(&(feature as u64), |&(j, _)| j)
                            .map(|pos| value_bin(ex.features[pos].1, bins) <= bin)
                            .unwrap_or(false);
                        assign[i] = if left { 2 * node_u + 1 } else { 2 * node_u + 2 };
                    }
                    w.sim.charge_flops(examples.len() as u64);
                    w.put_state(KEY_ASSIGN, assign);
                })
                .expect("reassignment failed");
        }

        // Phase C: apply the tree to the margins and measure the loss.
        let tree_b = ps2
            .spark
            .broadcast(ctx, tree.clone(), 16 * tree.nodes.len() as u64);
        let results = ps2
            .spark
            .run_job(
                ctx,
                &data,
                move |examples, w| {
                    let t = w.broadcast(&tree_b);
                    let mut margins: Vec<f64> = w.take_state(KEY_MARGIN).expect("margins missing");
                    let mut loss = 0.0;
                    for (i, ex) in examples.iter().enumerate() {
                        margins[i] += t.predict(ex);
                        loss += log_loss(ex.label * margins[i]);
                    }
                    w.sim.charge_flops(10 * examples.len() as u64);
                    w.put_state(KEY_MARGIN, margins);
                    (loss, examples.len() as u64)
                },
                |_| 24,
            )
            .expect("margin update failed");
        ps2.spark.drop_broadcast(ctx, tree_b);
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
        trees.push(tree);
    }
    (trace, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ex(features: Vec<(u64, f64)>, label: f64) -> Example {
        Example {
            label,
            features: Arc::new(features),
        }
    }

    fn stump(bins: u32) -> Tree {
        // Split on feature 2 at bin <= 4; left leaf +1.5, right leaf -0.5.
        let mut t = Tree::new(1, bins);
        t.nodes[0] = TreeNode::Split { feature: 2, bin: 4 };
        t.nodes[1] = TreeNode::Leaf { weight: 1.5 };
        t.nodes[2] = TreeNode::Leaf { weight: -0.5 };
        t
    }

    #[test]
    fn tree_routes_present_absent_and_boundary_values() {
        let t = stump(10);
        // bin(0.3 * 10) = 3 <= 4 → left.
        assert_eq!(t.predict(&ex(vec![(2, 0.3)], 1.0)), 1.5);
        // bin(0.9 * 10) = 9 > 4 → right.
        assert_eq!(t.predict(&ex(vec![(2, 0.9)], 1.0)), -0.5);
        // Absent feature → default right.
        assert_eq!(t.predict(&ex(vec![(5, 0.3)], 1.0)), -0.5);
        // Exact bin boundary 0.4*10 = 4 → left (<=).
        assert_eq!(t.predict(&ex(vec![(2, 0.4)], 1.0)), 1.5);
    }

    #[test]
    fn gain_reflects_split_quality() {
        // Unregularized, splitting identical halves gains nothing.
        let g = gain(5.0, 5.0, 10.0, 10.0, 0.0);
        assert!(g.abs() < 1e-9, "{g}");
        // With L2, the same split is *penalized* (two regularized children).
        assert!(gain(5.0, 5.0, 10.0, 10.0, 1.0) < 0.0);
        // Separating opposite-signed gradients gains a lot.
        let g2 = gain(5.0, 5.0, 0.0, 10.0, 1.0);
        assert!(g2 > 1.0);
    }

    #[test]
    fn best_split_scans_only_complete_features() {
        let bins = 4u32;
        // Two features × 4 bins; a clear split inside feature 1.
        let grad = vec![0.0, 0.0, 0.0, 0.0, 5.0, 5.0, -5.0, -5.0];
        let hess = vec![1.0; 8];
        let (g_full, cell) = best_split_in_segment(&grad, &hess, 0, bins, 0.0, 8.0, 1.0, 0.5);
        assert!(g_full > 0.0);
        assert_eq!(cell / bins as u64, 1, "split must be inside feature 1");
        // A segment starting mid-feature must skip the partial feature.
        let (_, cell2) = best_split_in_segment(&grad[2..], &hess[2..], 2, bins, 0.0, 8.0, 1.0, 0.5);
        assert!(cell2 == u64::MAX || cell2 / bins as u64 >= 1);
    }

    #[test]
    fn model_api_predicts_and_ranks_features() {
        let model = GbdtModel::new(vec![stump(10), stump(10)]);
        let e = ex(vec![(2, 0.1)], 1.0);
        assert_eq!(model.predict_margin(&e), 3.0);
        assert_eq!(model.predict_label(&e), 1.0);
        let imp = model.feature_importance(5);
        assert_eq!(imp[2], 2);
        assert_eq!(imp.iter().sum::<u64>(), 2);
        assert_eq!(model.accuracy(&[e]), 1.0);
    }

    #[test]
    fn straddlers_are_detected() {
        // bins = 10; ranges split at 25 (not a multiple of 10) → feature 2
        // straddles.
        let ranges = vec![(0u64, 25u64), (25, 50)];
        assert_eq!(straddling_features(&ranges, 10, 5), vec![2]);
        // Aligned boundary → no straddlers.
        let ranges = vec![(0u64, 30u64), (30, 50)];
        assert!(straddling_features(&ranges, 10, 5).is_empty());
    }
}
