//! Latent Dirichlet Allocation by collapsed Gibbs sampling (paper §5.2.4,
//! evaluated in Figure 12 against Petuum, Glint and Spark MLlib).
//!
//! The shared state is the `K × V` word-topic count matrix plus the
//! length-`K` topic totals; per-document topic counts and per-token
//! assignments live in executor state. Backends differ in how workers sync
//! the word-topic matrix each sweep:
//!
//! * **PS2** — block-pull only the words present in the partition
//!   (co-location makes a word's whole topic column one server's reply),
//!   push sparse count deltas, 4-byte compressed values (§6.3.3).
//! * **Petuum-style** — pull the *full* model every sweep (no sparse
//!   communication), push sparse deltas.
//! * **Glint-style** — per-key granularity: one pull request per word and
//!   one dense push per touched word, uncompressed (Glint's "limited
//!   primitive interfaces", §7 — no batched block protocol).
//! * **Spark MLlib** — no parameter servers: the driver broadcasts the full
//!   model and collects dense per-worker count matrices (driver in-cast).

use ps2_core::{Dcv, Ps2Context, WorkCtx};
use ps2_data::{CorpusGen, Document};
use ps2_simnet::SimCtx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hyper::LdaHyper;
use crate::metrics::TrainingTrace;

/// Execution backend for LDA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LdaBackend {
    Ps2Dcv,
    PetuumStyle,
    GlintStyle,
    SparkDriver,
}

impl LdaBackend {
    pub fn label(&self) -> &'static str {
        match self {
            LdaBackend::Ps2Dcv => "PS2-LDA",
            LdaBackend::PetuumStyle => "Petuum-LDA",
            LdaBackend::GlintStyle => "Glint-LDA",
            LdaBackend::SparkDriver => "MLlib-LDA",
        }
    }
}

/// LDA training configuration.
#[derive(Clone, Debug)]
pub struct LdaConfig {
    pub corpus: CorpusGen,
    pub hyper: LdaHyper,
    pub iterations: usize,
}

/// Per-partition sampler state kept in executor memory between sweeps.
struct GibbsState {
    /// `z[doc][token]` topic assignments (tokens expanded by count).
    z: Vec<Vec<u32>>,
    /// `nd[doc][topic]` counts.
    nd: Vec<Vec<u32>>,
    /// Sorted distinct words of this partition.
    words: Vec<u64>,
    rng: StdRng,
}

const KEY_GIBBS: u64 = 0x1da;

fn expand_tokens(doc: &Document) -> Vec<u32> {
    let mut toks = Vec::with_capacity(doc.tokens() as usize);
    for &(w, c) in &doc.words {
        for _ in 0..c {
            toks.push(w);
        }
    }
    toks
}

/// Per-word topic-count deltas, keyed by global word id.
type WordDeltas = Vec<(u64, Vec<f64>)>;

/// Initialize assignments and return the partition's initial count deltas.
fn init_state(
    docs: &[Document],
    k: u32,
    seed: u64,
    part: usize,
) -> (GibbsState, WordDeltas, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ (part as u64) << 17);
    let mut z = Vec::with_capacity(docs.len());
    let mut nd = Vec::with_capacity(docs.len());
    let mut word_deltas: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
    let mut totals = vec![0.0; k as usize];
    let mut words: Vec<u64> = Vec::new();
    for doc in docs {
        let toks = expand_tokens(doc);
        let mut zd = Vec::with_capacity(toks.len());
        let mut ndd = vec![0u32; k as usize];
        for &w in &toks {
            let topic = rng.gen_range(0..k);
            zd.push(topic);
            ndd[topic as usize] += 1;
            word_deltas
                .entry(w as u64)
                .or_insert_with(|| vec![0.0; k as usize])[topic as usize] += 1.0;
            totals[topic as usize] += 1.0;
        }
        for &(w, _) in &doc.words {
            words.push(w as u64);
        }
        z.push(zd);
        nd.push(ndd);
    }
    words.sort_unstable();
    words.dedup();
    let state = GibbsState { z, nd, words, rng };
    (state, word_deltas.into_iter().collect(), totals)
}

/// One Gibbs sweep over a partition against local copies of the counts.
/// Returns `(log-likelihood proxy, token count, word deltas, total deltas)`.
#[allow(clippy::too_many_arguments)]
fn sweep(
    docs: &[Document],
    state: &mut GibbsState,
    nw: &mut [Vec<f64>], // [local word idx][topic]
    nk: &mut [f64],      // [topic]
    word_index: &dyn Fn(u64) -> usize,
    k: u32,
    alpha: f64,
    beta: f64,
    vocab: f64,
) -> (f64, u64, WordDeltas, Vec<f64>) {
    let kk = k as usize;
    let mut deltas: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
    let mut tot_delta = vec![0.0; kk];
    let mut loglik = 0.0;
    let mut tokens = 0u64;
    let mut probs = vec![0.0; kk];
    for (d, doc) in docs.iter().enumerate() {
        let toks = expand_tokens(doc);
        for (t, &w) in toks.iter().enumerate() {
            let wi = word_index(w as u64);
            let old = state.z[d][t] as usize;
            // Remove the token.
            state.nd[d][old] -= 1;
            nw[wi][old] -= 1.0;
            nk[old] -= 1.0;
            // Conditional distribution.
            let mut sum = 0.0;
            for topic in 0..kk {
                let p = (state.nd[d][topic] as f64 + alpha) * (nw[wi][topic] + beta)
                    / (nk[topic] + vocab * beta);
                probs[topic] = p;
                sum += p;
            }
            let mut u = state.rng.gen::<f64>() * sum;
            let mut new = kk - 1;
            for (topic, &p) in probs.iter().enumerate() {
                if u < p {
                    new = topic;
                    break;
                }
                u -= p;
            }
            // Add it back.
            state.z[d][t] = new as u32;
            state.nd[d][new] += 1;
            nw[wi][new] += 1.0;
            nk[new] += 1.0;
            let dv = deltas.entry(w as u64).or_insert_with(|| vec![0.0; kk]);
            dv[old] -= 1.0;
            dv[new] += 1.0;
            tot_delta[old] -= 1.0;
            tot_delta[new] += 1.0;
            loglik += (probs[new] / sum).max(1e-300).ln();
            tokens += 1;
        }
    }
    let deltas: WordDeltas = deltas
        .into_iter()
        .filter(|(_, d)| d.iter().any(|&x| x != 0.0))
        .collect();
    (loglik, tokens, deltas, tot_delta)
}

/// Train LDA; the trace records `(virtual time, negative mean token
/// log-likelihood)` per sweep — lower is better, like the paper's loss axes.
pub fn train_lda(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LdaConfig,
    backend: LdaBackend,
) -> TrainingTrace {
    let gen = cfg.corpus.clone();
    let parts = gen.partitions;
    let k = cfg.hyper.topics;
    let alpha = cfg.hyper.alpha;
    let beta = cfg.hyper.beta;
    let vocab = gen.vocab as u64;
    let seed = gen.seed;
    let mut trace = TrainingTrace::new(backend.label());

    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let docs = gen2.partition(p);
            let toks: u64 = docs.iter().map(|d| d.tokens()).sum();
            w.sim.charge_mem(8 * toks);
            docs
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    if backend == LdaBackend::SparkDriver {
        return train_lda_driver(ctx, ps2, cfg, &data, &mut trace);
    }

    // Word-topic counts: K rows over the vocabulary; topic totals: 1 row of
    // K. PS2 compresses values on the wire.
    let mut wt: Dcv = ps2.dense_dcv(ctx, vocab, k);
    let mut nk_dcv: Dcv = ps2.dense_dcv(ctx, k as u64, 1);
    if backend == LdaBackend::Ps2Dcv {
        wt = wt.compressed();
        nk_dcv = nk_dcv.compressed();
    }
    let all_rows: Vec<u32> = (0..k).collect();

    // Initialization sweep: random assignments pushed to the servers.
    {
        let wtc = wt.clone();
        let nkc = nk_dcv.clone();
        let rows = all_rows.clone();
        ps2.spark
            .for_each_partition(ctx, &data, move |docs, w| {
                let (state, word_deltas, totals) = init_state(docs, k, seed, w.partition);
                let toks: u64 = state.z.iter().map(|z| z.len() as u64).sum();
                w.sim.charge_flops(4 * toks);
                wtc.push_block(w.sim, &rows, &word_deltas);
                nkc.add_dense(w.sim, &totals);
                w.put_state(KEY_GIBBS, state);
            })
            .expect("LDA init failed");
    }

    let backend_kind = backend;

    let start = ctx.now();
    for _sweep in 0..cfg.iterations {
        let wtc = wt.clone();
        let nkc = nk_dcv.clone();
        let rows = all_rows.clone();
        let results = ps2
            .spark
            .run_job(
                ctx,
                &data,
                move |docs, w: &mut WorkCtx<'_, '_>| {
                    let mut state: GibbsState =
                        w.take_state(KEY_GIBBS).expect("gibbs state missing");
                    // Pull the word-topic counts this partition needs.
                    let (mut nw, index_words): (Vec<Vec<f64>>, Vec<u64>) = match backend_kind {
                        LdaBackend::PetuumStyle => {
                            // Full-model pull, batched but dense.
                            let all_cols: Vec<u64> = (0..wtc.dim()).collect();
                            let rows_data = wtc.pull_block(w.sim, &rows, &all_cols);
                            (rows_data, all_cols)
                        }
                        LdaBackend::GlintStyle => {
                            // Per-key granularity, but asynchronous (Glint
                            // is an async PS): all per-word requests are in
                            // flight at once, paying per-request headers
                            // instead of batched blocks.
                            let block = wtc.pull_cols_per_key(w.sim, &rows, &state.words);
                            (block, state.words.clone())
                        }
                        _ => {
                            // PS2: one batched block pull per server.
                            let block = wtc.pull_block(w.sim, &rows, &state.words);
                            (block, state.words.clone())
                        }
                    };
                    let mut nk = nkc.pull(w.sim);
                    let toks: u64 = state.z.iter().map(|z| z.len() as u64).sum();
                    // Two fused ops per (token, topic): the sampler keeps
                    // (nw+β)/(nk+Vβ) in a per-word cache.
                    w.sim.charge_flops(toks * 2 * k as u64);
                    let (loglik, tokens, deltas, tot_delta) = {
                        let lookup = |w_id: u64| -> usize {
                            index_words
                                .binary_search(&w_id)
                                .expect("word missing from pulled block")
                        };
                        sweep(
                            docs,
                            &mut state,
                            &mut nw,
                            &mut nk,
                            &lookup,
                            k,
                            alpha,
                            beta,
                            vocab as f64,
                        )
                    };
                    if backend_kind == LdaBackend::GlintStyle {
                        // Per-key dense pushes, all in flight at once.
                        wtc.push_cols_per_key(w.sim, &rows, &deltas);
                    } else {
                        wtc.push_block(w.sim, &rows, &deltas);
                    }
                    nkc.add_dense(w.sim, &tot_delta);
                    w.put_state(KEY_GIBBS, state);
                    (loglik, tokens)
                },
                |_| 24,
            )
            .expect("LDA sweep failed");
        let (ll, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        trace.record(start, ctx.now(), -ll / n.max(1) as f64);
    }
    trace
}

/// MLlib-style LDA: the driver owns the model, broadcasts it, and collects
/// dense per-worker count matrices.
fn train_lda_driver(
    ctx: &mut SimCtx,
    ps2: &mut Ps2Context,
    cfg: &LdaConfig,
    data: &ps2_core::Rdd<Document>,
    trace: &mut TrainingTrace,
) -> TrainingTrace {
    let gen = &cfg.corpus;
    let k = cfg.hyper.topics;
    let kk = k as usize;
    let alpha = cfg.hyper.alpha;
    let beta = cfg.hyper.beta;
    let vocab = gen.vocab as usize;
    let seed = gen.seed;
    let model_bytes = (vocab * kk) as u64 * 8;

    // Driver-resident model.
    let mut nw: Vec<Vec<f64>> = vec![vec![0.0; kk]; vocab];
    let mut nk: Vec<f64> = vec![0.0; kk];

    // Workers initialize local assignments and report initial counts.
    let init = ps2
        .spark
        .run_job(
            ctx,
            data,
            move |docs, w| {
                let (state, word_deltas, totals) = init_state(docs, k, seed, w.partition);
                let toks: u64 = state.z.iter().map(|z| z.len() as u64).sum();
                w.sim.charge_flops(4 * toks);
                w.put_state(KEY_GIBBS, state);
                (word_deltas, totals)
            },
            move |_r| 24 + model_bytes, // dense count matrices to the driver
        )
        .expect("LDA init failed");
    for (word_deltas, totals) in init {
        for (wid, dv) in word_deltas {
            for (t, v) in dv.iter().enumerate() {
                nw[wid as usize][t] += v;
            }
        }
        for (t, v) in totals.iter().enumerate() {
            nk[t] += v;
        }
    }

    let start = ctx.now();
    for _sweep in 0..cfg.iterations {
        // Broadcast the dense model.
        let b = ps2
            .spark
            .broadcast(ctx, (nw.clone(), nk.clone()), model_bytes + kk as u64 * 8);
        let results = ps2
            .spark
            .run_job(
                ctx,
                data,
                move |docs, w| {
                    let model = w.broadcast(&b);
                    let (mut nw_local, mut nk_local) = (model.0.clone(), model.1.clone());
                    let mut state: GibbsState =
                        w.take_state(KEY_GIBBS).expect("gibbs state missing");
                    let toks: u64 = state.z.iter().map(|z| z.len() as u64).sum();
                    w.sim.charge_flops(toks * 2 * k as u64);
                    let out = {
                        let lookup = |wid: u64| wid as usize;
                        sweep(
                            docs,
                            &mut state,
                            &mut nw_local,
                            &mut nk_local,
                            &lookup,
                            k,
                            alpha,
                            beta,
                            vocab as f64,
                        )
                    };
                    w.put_state(KEY_GIBBS, state);
                    out
                },
                move |_r| 24 + model_bytes, // dense deltas back to the driver
            )
            .expect("LDA sweep failed");
        ps2.spark.drop_broadcast(ctx, b);
        let mut ll = 0.0;
        let mut n = 0u64;
        for (loglik, tokens, deltas, tot_delta) in results {
            ll += loglik;
            n += tokens;
            for (wid, dv) in deltas {
                for (t, v) in dv.iter().enumerate() {
                    nw[wid as usize][t] += v;
                }
            }
            for (t, v) in tot_delta.iter().enumerate() {
                nk[t] += v;
            }
        }
        ctx.charge_flops((vocab * kk) as u64);
        trace.record(start, ctx.now(), -ll / n.max(1) as f64);
    }
    trace.clone()
}
