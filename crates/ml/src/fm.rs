//! Factorization Machines — the other classification model the paper's
//! introduction motivates for high-dimensional user profiling ("models like
//! logistic regression or factorization machine are used").
//!
//! The model is a bias, a weight vector `w` and a `k × dim` factor matrix
//! `V`; the prediction is
//!
//! ```text
//! ŷ(x) = b + Σⱼ wⱼ xⱼ + ½ Σ_f [ (Σⱼ V_{f,j} xⱼ)² − Σⱼ V_{f,j}² xⱼ² ]
//! ```
//!
//! On PS2 everything lives in one raw matrix (row 0 = `w`, rows 1..=k =
//! `V`), so a mini-batch's working set is a sparse *block*: one
//! `pull_block` fetches the weights and all factor rows of the touched
//! columns from their (co-located) servers, and one `push_block` returns
//! the updates — the LDA access pattern reused for a completely different
//! model.

use ps2_core::{Ps2Context, WorkCtx};
use ps2_data::{Example, SparseDatasetGen};
use ps2_simnet::SimCtx;

use crate::lr::{distinct_cols, log_loss, sigmoid};
use crate::metrics::TrainingTrace;

/// FM training configuration.
#[derive(Clone, Debug)]
pub struct FmConfig {
    pub dataset: SparseDatasetGen,
    /// Number of latent factors (`k`).
    pub factors: u32,
    pub learning_rate: f64,
    /// L2 on the factors.
    pub reg: f64,
    pub mini_batch_fraction: f64,
    pub iterations: usize,
    /// Factor initialization scale.
    pub init_scale: f64,
}

impl FmConfig {
    pub fn new(dataset: SparseDatasetGen, factors: u32, iterations: usize) -> FmConfig {
        FmConfig {
            dataset,
            factors,
            learning_rate: 0.05,
            reg: 1e-4,
            mini_batch_fraction: 0.05,
            iterations,
            init_scale: 0.05,
        }
    }
}

/// FM margin for one example given the *aligned* working set:
/// `w[i]`/`v[f][i]` correspond to `ex.features[i]`.
pub fn fm_margin(ex: &Example, w: &[f64], v: &[Vec<f64>]) -> f64 {
    let mut m = 0.0;
    for (i, &(_, x)) in ex.features.iter().enumerate() {
        m += w[i] * x;
    }
    for vf in v {
        let (mut s, mut s2) = (0.0, 0.0);
        for (i, &(_, x)) in ex.features.iter().enumerate() {
            let t = vf[i] * x;
            s += t;
            s2 += t * t;
        }
        m += 0.5 * (s * s - s2);
    }
    m
}

/// Train an FM classifier on PS2; returns the logistic-loss trace.
pub fn train_fm(ctx: &mut SimCtx, ps2: &mut Ps2Context, cfg: &FmConfig) -> TrainingTrace {
    let gen = cfg.dataset.clone();
    let parts = gen.partitions;
    let k = cfg.factors;
    let gen2 = gen.clone();
    let data = ps2
        .spark
        .source(parts, move |p, w| {
            let rows = gen2.partition(p);
            let nnz: u64 = rows.iter().map(|e| e.features.len() as u64).sum();
            w.sim.charge_mem(16 * nnz);
            rows
        })
        .cache();
    let _ = ps2.spark.count(ctx, &data);

    // Row 0 = w; rows 1..=k = V. Factors start small and random (an FM with
    // zero factors has zero interaction gradient).
    let model = ps2.dense_dcv_init(
        ctx,
        gen.dim,
        1 + k,
        ps2_core::InitKind::Uniform {
            lo: -cfg.init_scale,
            hi: cfg.init_scale,
            seed: gen.seed ^ 0xf4,
        },
    );
    // The weight row starts at zero.
    model.zero(ctx);
    let handle = model.matrix().clone();
    let rows: Vec<u32> = (0..=k).collect();

    let expected_batch = (gen.rows as f64 * cfg.mini_batch_fraction).max(1.0);
    let lr = cfg.learning_rate;
    let reg = cfg.reg;
    let mut trace = TrainingTrace::new("PS2-FM");
    let start = ctx.now();

    for t in 1..=cfg.iterations {
        let batch = data.sample(cfg.mini_batch_fraction, t as u64);
        let h = handle.clone();
        let rows_c = rows.clone();
        let scale = lr / expected_batch;
        let results = ps2
            .spark
            .run_job(
                ctx,
                &batch,
                move |examples, wk: &mut WorkCtx<'_, '_>| {
                    if examples.is_empty() {
                        return (0.0, 0u64);
                    }
                    let cols = distinct_cols(examples);
                    // One block pull: w and all k factor rows of the
                    // touched columns.
                    let block = h.pull_block(wk.sim, &rows_c, &cols);
                    // block[c] = [w_c, v_1c, .., v_kc]
                    let kk = rows_c.len() - 1;
                    let mut grad: Vec<Vec<f64>> = vec![vec![0.0; kk + 1]; cols.len()];
                    let mut loss = 0.0;
                    for ex in examples {
                        // Gather this example's aligned working set.
                        let idx: Vec<usize> = ex
                            .features
                            .iter()
                            .map(|&(j, _)| cols.binary_search(&j).expect("col missing"))
                            .collect();
                        let w_al: Vec<f64> = idx.iter().map(|&p| block[p][0]).collect();
                        let v_al: Vec<Vec<f64>> = (0..kk)
                            .map(|f| idx.iter().map(|&p| block[p][f + 1]).collect())
                            .collect();
                        let margin = fm_margin(ex, &w_al, &v_al);
                        let ym = ex.label * margin;
                        loss += log_loss(ym);
                        let coef = -ex.label * sigmoid(-ym);
                        // Linear part.
                        for (slot, &(_, x)) in idx.iter().zip(ex.features.iter()) {
                            grad[*slot][0] += coef * x;
                        }
                        // Interaction part: dV_{f,j} = x_j (s_f − V_{f,j} x_j).
                        for (f, vf) in v_al.iter().enumerate() {
                            let s: f64 = ex
                                .features
                                .iter()
                                .zip(vf)
                                .map(|(&(_, x), &vv)| vv * x)
                                .sum();
                            for ((slot, &(_, x)), &vv) in idx.iter().zip(ex.features.iter()).zip(vf)
                            {
                                grad[*slot][f + 1] += coef * (x * s - vv * x * x);
                            }
                        }
                    }
                    let nnz: u64 = examples.iter().map(|e| e.features.len() as u64).sum();
                    wk.sim.charge_flops(nnz * (6 + 8 * kk as u64));
                    // One block push: -lr·grad − lr·reg·param on factors.
                    let updates: Vec<(u64, Vec<f64>)> = cols
                        .iter()
                        .enumerate()
                        .map(|(c, &j)| {
                            let mut delta = vec![0.0; kk + 1];
                            delta[0] = -scale * grad[c][0];
                            for f in 0..kk {
                                delta[f + 1] = -scale * grad[c][f + 1] - lr * reg * block[c][f + 1];
                            }
                            (j, delta)
                        })
                        .collect();
                    h.push_block(wk.sim, &rows_c, &updates);
                    (loss, examples.len() as u64)
                },
                |_| 24,
            )
            .expect("fm iteration failed");
        let (loss_sum, n): (f64, u64) = results
            .into_iter()
            .fold((0.0, 0), |(l, c), (li, ci)| (l + li, c + ci));
        trace.record(start, ctx.now(), loss_sum / n.max(1) as f64);
    }
    trace
}
