//! Stale Synchronous Parallel (SSP) training — the consistency model of
//! Petuum [28] and the heterogeneity-aware parameter servers the paper
//! cites [16].
//!
//! Under BSP every iteration ends with a global barrier, so one straggler
//! stalls the fleet. Under SSP a worker at iteration `t` may run ahead as
//! long as the slowest worker is at least at `t − s` (staleness bound `s`);
//! `s = 0` degenerates to BSP, `s = ∞` to fully asynchronous.
//!
//! This mode bypasses the dataflow engine entirely: workers are standalone
//! simulated processes looping pull → gradient → push against the PS, with
//! a tiny *clock daemon* enforcing the staleness bound. That is exactly how
//! Petuum runs (no Spark), making this the natural home of straggler
//! experiments.

use std::sync::Arc;

use parking_lot::Mutex;
use ps2_core::{InitKind, MatrixHandle, Partitioning, PsConfig, PsMaster};
use ps2_data::SparseDatasetGen;
use ps2_ps::deploy_ps;
use ps2_simnet::{Envelope, ProcId, SimBuilder, SimCtx, SimReport, SimTime};

use crate::lr::{distinct_cols, grad_aligned};
use crate::metrics::TrainingTrace;
use crate::sort_merge_pairs;

/// SSP experiment configuration.
#[derive(Clone, Debug)]
pub struct SspConfig {
    pub dataset: SparseDatasetGen,
    pub workers: usize,
    pub servers: usize,
    /// Staleness bound `s` (0 = BSP).
    pub staleness: u32,
    pub iterations: u32,
    pub learning_rate: f64,
    pub mini_batch: usize,
    /// Extra compute time per iteration for worker 0, simulating a
    /// straggler (heterogeneous hardware / co-located jobs).
    pub straggler_slowdown: SimTime,
    pub seed: u64,
}

impl SspConfig {
    pub fn new(dataset: SparseDatasetGen, workers: usize, servers: usize) -> SspConfig {
        SspConfig {
            dataset,
            workers,
            servers,
            staleness: 0,
            iterations: 30,
            learning_rate: 2.0,
            mini_batch: 64,
            straggler_slowdown: SimTime::ZERO,
            seed: 11,
        }
    }
}

mod tags {
    /// Worker reports having *finished* iteration `t`.
    pub const REPORT: u32 = 60;
    /// Worker asks permission to *start* iteration `t`; the daemon replies
    /// once `min_clock >= t - s`.
    pub const WAIT: u32 = 61;
}

struct WaitReq {
    start_iter: u32,
}

/// The SSP clock daemon: tracks per-worker clocks and defers permission
/// replies until the staleness bound allows each requester to proceed.
fn clock_daemon(workers: usize, staleness: u32) -> impl FnOnce(&mut SimCtx) {
    move |ctx: &mut SimCtx| {
        let mut clocks = vec![0u32; workers]; // iterations completed
        let mut pending: Vec<(Envelope, u32)> = Vec::new();
        loop {
            let env = ctx.recv();
            match env.tag {
                tags::REPORT => {
                    let (worker, done): (usize, u32) = *env.downcast_ref::<(usize, u32)>();
                    clocks[worker] = clocks[worker].max(done);
                    ctx.reply(&env, (), 8);
                    // Wake any waiter the new min clock unblocks.
                    let min = *clocks.iter().min().expect("workers > 0");
                    let mut still_pending = Vec::new();
                    for (wenv, start_iter) in pending.drain(..) {
                        if start_iter <= min + staleness + 1 {
                            ctx.reply(&wenv, (), 8);
                        } else {
                            still_pending.push((wenv, start_iter));
                        }
                    }
                    pending = still_pending;
                }
                tags::WAIT => {
                    let req: &WaitReq = env.downcast_ref();
                    let start_iter = req.start_iter;
                    let min = *clocks.iter().min().expect("workers > 0");
                    // A worker may start iteration t when min >= t - s - 1,
                    // i.e. the slowest worker is within the bound.
                    if start_iter <= min + staleness + 1 {
                        ctx.reply(&env, (), 8);
                    } else {
                        pending.push((env, start_iter));
                    }
                }
                other => panic!("clock daemon: unknown tag {other}"),
            }
        }
    }
}

/// Run SSP LR training on a dedicated (Spark-free) topology. Returns the
/// merged loss trace (mean loss per iteration index, stamped with the last
/// One `(worker, iter, virtual secs, loss)` measurement.
type LossSample = (usize, u32, f64, f64);

/// worker's arrival at that iteration) and the simulation report.
pub fn run_lr_ssp(cfg: &SspConfig) -> (TrainingTrace, SimReport) {
    let mut sim = SimBuilder::new().seed(cfg.seed).build();
    let (servers, storage) = deploy_ps(&mut sim, cfg.servers, 500e6);
    let clock = sim.spawn_daemon("ssp-clock", clock_daemon(cfg.workers, cfg.staleness));

    // Shared collection of (worker, iter, virtual secs, loss) samples.
    let samples: Arc<Mutex<Vec<LossSample>>> = Arc::new(Mutex::new(Vec::new()));

    // The coordinator allocates the model, then hands the handle to the
    // workers. Spawn order fixes the ids: servers (0..S), storage (S),
    // clock (S+1), coordinator (S+2), then the workers.
    let worker_ids: Vec<ProcId> = (0..cfg.workers)
        .map(|w| ProcId(cfg.servers + 3 + w))
        .collect();
    {
        let cfg = cfg.clone();
        let worker_ids = worker_ids.clone();
        sim.spawn("ssp-coordinator", move |ctx| {
            let mut master = PsMaster::new(servers, storage, PsConfig::default());
            let h = master.create_matrix(
                ctx,
                cfg.dataset.dim,
                1,
                Partitioning::Column,
                InitKind::Zero,
            );
            for &w in &worker_ids {
                ctx.send(w, 7, h.clone(), 64);
            }
        });
    }

    for w in 0..cfg.workers {
        let cfg = cfg.clone();
        let samples = Arc::clone(&samples);
        sim.spawn(&format!("ssp-worker-{w}"), move |ctx| {
            let h: MatrixHandle = ctx.recv().downcast::<MatrixHandle>();
            let gen = cfg.dataset.clone();
            let rows = gen.partition_rows_range(w, cfg.workers);
            let start = ctx.now();
            for t in 1..=cfg.iterations {
                // SSP gate: may we start iteration t?
                let _ = ctx.call(clock, tags::WAIT, WaitReq { start_iter: t }, 24);
                // Mini-batch from this worker's shard.
                let lo = rows.0 + ((t as u64 * 131) % (rows.1 - rows.0).max(1));
                let batch: Vec<ps2_data::Example> = (0..cfg.mini_batch as u64)
                    .map(|i| gen.example(rows.0 + (lo + i) % (rows.1 - rows.0).max(1)))
                    .collect();
                let cols = distinct_cols(&batch);
                let wv = h.pull_cols(ctx, 0, &cols);
                let (grad, loss) = grad_aligned(&batch, &cols, &wv);
                let nnz: u64 = batch.iter().map(|e| e.features.len() as u64).sum();
                ctx.charge_flops(6 * nnz);
                if w == 0 {
                    // The straggler pays extra compute every iteration.
                    ctx.advance(cfg.straggler_slowdown);
                }
                let scale = cfg.learning_rate / cfg.mini_batch as f64;
                let pairs: Vec<(u64, f64)> = sort_merge_pairs(
                    cols.iter()
                        .zip(&grad)
                        .map(|(&j, &g)| (j, -scale * g))
                        .collect(),
                );
                h.push_sparse(ctx, 0, &pairs);
                let _ = ctx.call(clock, tags::REPORT, (w, t), 24);
                samples.lock().push((
                    w,
                    t,
                    (ctx.now() - start).as_secs_f64(),
                    loss / cfg.mini_batch as f64,
                ));
            }
        });
    }

    let report = sim.run().expect("SSP simulation failed");
    // Merge per-worker samples: per iteration, mean loss and max time.
    let samples = samples.lock();
    let mut trace = TrainingTrace::new(format!("SSP(s={})", cfg.staleness));
    for t in 1..=cfg.iterations {
        let iter: Vec<&LossSample> = samples.iter().filter(|s| s.1 == t).collect();
        if iter.is_empty() {
            continue;
        }
        // Mean completion time across workers: under BSP everyone is
        // straggler-paced; under SSP the fast workers pull the mean down.
        let time = iter.iter().map(|s| s.2).sum::<f64>() / iter.len() as f64;
        let loss = iter.iter().map(|s| s.3).sum::<f64>() / iter.len() as f64;
        trace.points.push((time, loss));
    }
    (trace, report)
}

/// Convenience extension: a worker's `[lo, hi)` row shard.
trait ShardExt {
    fn partition_rows_range(&self, worker: usize, workers: usize) -> (u64, u64);
}

impl ShardExt for SparseDatasetGen {
    fn partition_rows_range(&self, worker: usize, workers: usize) -> (u64, u64) {
        let w = worker as u64;
        let n = workers as u64;
        (w * self.rows / n, (w + 1) * self.rows / n)
    }
}
