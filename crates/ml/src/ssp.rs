//! Stale Synchronous Parallel (SSP) training — the consistency model of
//! Petuum [28] and the heterogeneity-aware parameter servers the paper
//! cites [16].
//!
//! Under BSP every iteration ends with a global barrier, so one straggler
//! stalls the fleet. Under SSP a worker at iteration `t` may run ahead as
//! long as the slowest worker is at least at `t − s` (staleness bound `s`);
//! `s = 0` degenerates to BSP, `s = ∞` to fully asynchronous.
//!
//! Historically this module carried its own clock daemon and worker loop;
//! both have been promoted into first-class machinery — the clock service
//! lives in `ps2_ps::consistency`, the mode-gated worker loop in
//! [`crate::modes`] — and this module keeps the original experiment-facing
//! surface ([`SspConfig`], [`run_lr_ssp`]) as a thin wrapper over
//! `ConsistencyMode::Ssp`.

use ps2_core::SimReport;
use ps2_data::SparseDatasetGen;
use ps2_ps::ConsistencyMode;
use ps2_simnet::SimTime;

use crate::metrics::TrainingTrace;
use crate::modes::{run_mode, ModeAlgo, ModeConfig};

/// SSP experiment configuration.
#[derive(Clone, Debug)]
pub struct SspConfig {
    pub dataset: SparseDatasetGen,
    pub workers: usize,
    pub servers: usize,
    /// Staleness bound `s` (0 = BSP).
    pub staleness: u32,
    pub iterations: u32,
    pub learning_rate: f64,
    pub mini_batch: usize,
    /// Extra compute time per iteration for worker 0, simulating a
    /// straggler (heterogeneous hardware / co-located jobs).
    pub straggler_slowdown: SimTime,
    pub seed: u64,
}

impl SspConfig {
    pub fn new(dataset: SparseDatasetGen, workers: usize, servers: usize) -> SspConfig {
        SspConfig {
            dataset,
            workers,
            servers,
            staleness: 0,
            iterations: 30,
            learning_rate: 2.0,
            mini_batch: 64,
            straggler_slowdown: SimTime::ZERO,
            seed: 11,
        }
    }
}

/// Run SSP LR training on a dedicated (Spark-free) topology. Returns the
/// merged loss trace — per iteration index, the mean loss and the *mean*
/// completion time across workers (under BSP everyone is straggler-paced,
/// so the mean equals the max; under SSP the fast workers pull it down) —
/// and the simulation report.
pub fn run_lr_ssp(cfg: &SspConfig) -> (TrainingTrace, SimReport) {
    let mode = ConsistencyMode::Ssp {
        bound: cfg.staleness,
    };
    let mode_cfg = ModeConfig {
        dataset: cfg.dataset.clone(),
        workers: cfg.workers,
        servers: cfg.servers,
        mode,
        iterations: cfg.iterations,
        learning_rate: cfg.learning_rate,
        mini_batch: cfg.mini_batch,
        straggler_slowdown: cfg.straggler_slowdown,
        seed: cfg.seed,
    };
    let (mut trace, report) = run_mode(&mode_cfg, ModeAlgo::Lr);
    // Keep the label this experiment has always published.
    trace.label = format!("SSP(s={})", cfg.staleness);
    (trace, report)
}
