//! Tests for the SSP training mode.

use ps2_data::SparseDatasetGen;
use ps2_ml::ssp::{run_lr_ssp, SspConfig};
use ps2_simnet::SimTime;

fn base_cfg() -> SspConfig {
    SspConfig::new(SparseDatasetGen::new(2_000, 3_000, 12, 4, 7), 4, 3)
}

#[test]
fn bsp_mode_converges() {
    let mut cfg = base_cfg();
    cfg.staleness = 0;
    cfg.iterations = 25;
    let (trace, report) = run_lr_ssp(&cfg);
    assert!(trace.is_sane());
    assert_eq!(trace.points.len(), 25);
    assert!(
        trace.final_loss() < trace.points[0].1 * 0.95,
        "{:?} -> {:?}",
        trace.points.first(),
        trace.points.last()
    );
    assert!(report.total_msgs > 0);
}

#[test]
fn staleness_bound_is_respected_by_the_clock_daemon() {
    // With a severe straggler and s = 2, fast workers can be at most 3
    // iterations ahead at any point. We verify via the merged trace's
    // per-iteration spread: the run completes (no deadlock) and the total
    // time is governed by the straggler under BSP.
    let mut bsp = base_cfg();
    bsp.staleness = 0;
    bsp.iterations = 10;
    bsp.straggler_slowdown = SimTime::from_millis(50);
    let (bsp_trace, _) = run_lr_ssp(&bsp);
    // Every BSP iteration waits for the straggler: ≥ 50ms apart.
    for w in bsp_trace.points.windows(2) {
        assert!(
            w[1].0 - w[0].0 > 0.045,
            "BSP iterations must be straggler-paced: {:?}",
            bsp_trace.points
        );
    }
}

#[test]
fn ssp_outpaces_bsp_under_stragglers() {
    let run = |staleness: u32| {
        let mut cfg = base_cfg();
        cfg.staleness = staleness;
        cfg.iterations = 20;
        cfg.straggler_slowdown = SimTime::from_millis(40);
        let (trace, _) = run_lr_ssp(&cfg);
        trace
    };
    let bsp = run(0);
    let ssp = run(4);
    // The non-straggler workers finish their 20 iterations much earlier
    // under SSP; the merged trace's final stamp is the straggler either
    // way, but intermediate iterations complete sooner.
    let mid = bsp.points.len() / 2;
    assert!(
        ssp.points[mid].0 < bsp.points[mid].0,
        "SSP should reach iteration {mid} sooner: {:.3} vs {:.3}",
        ssp.points[mid].0,
        bsp.points[mid].0
    );
    // And still actually learn.
    assert!(ssp.final_loss() < ssp.points[0].1);
}

#[test]
fn ssp_runs_are_deterministic() {
    let run = || {
        let mut cfg = base_cfg();
        cfg.staleness = 2;
        cfg.iterations = 8;
        let (trace, report) = run_lr_ssp(&cfg);
        (trace.points, report.total_bytes)
    };
    assert_eq!(run(), run());
}
