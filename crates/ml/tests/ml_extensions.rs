//! Tests for the extension workloads: Factorization Machines and the
//! MLlib* (AllReduce model-averaging) baseline.

use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::SparseDatasetGen;
use ps2_ml::fm::{fm_margin, train_fm, FmConfig};
use ps2_ml::lr::{train_lr, train_lr_mllib_star, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;

fn spec(w: usize, s: usize) -> ClusterSpec {
    ClusterSpec {
        workers: w,
        servers: s,
        ..ClusterSpec::default()
    }
}

#[test]
fn fm_margin_matches_naive_pairwise_formula() {
    use std::sync::Arc;
    let ex = ps2_data::Example {
        label: 1.0,
        features: Arc::new(vec![(0, 1.0), (1, 2.0), (2, 0.5)]),
    };
    let w = vec![0.1, -0.2, 0.3];
    let v = vec![vec![0.5, 0.1, -0.3], vec![-0.2, 0.4, 0.6]]; // k = 2
    let fast = fm_margin(&ex, &w, &v);
    // Naive: Σ w_i x_i + Σ_{i<j} ⟨v_i, v_j⟩ x_i x_j.
    let xs = [1.0, 2.0, 0.5];
    let mut naive = w.iter().zip(&xs).map(|(a, b)| a * b).sum::<f64>();
    for i in 0..3 {
        for j in (i + 1)..3 {
            let dot: f64 = (0..2).map(|f| v[f][i] * v[f][j]).sum();
            naive += dot * xs[i] * xs[j];
        }
    }
    assert!((fast - naive).abs() < 1e-12, "{fast} vs {naive}");
}

#[test]
fn fm_converges_on_ps2() {
    let (trace, _) = run_ps2(spec(4, 4), 61, |ctx, ps2| {
        let gen = SparseDatasetGen::new(3_000, 1_500, 10, 4, 17);
        let mut cfg = FmConfig::new(gen, 4, 40);
        // Gradients are normalized by batch size; scale the rate to match.
        cfg.learning_rate = 2.0;
        cfg.reg = 1e-5;
        train_fm(ctx, ps2, &cfg)
    });
    assert!(trace.is_sane());
    let first = trace.points[0].1;
    let last = trace.final_loss();
    assert!(last < 0.95 * first, "FM must learn: {first} -> {last}");
}

#[test]
fn fm_uses_block_access_not_full_pulls() {
    // The per-iteration bytes should scale with the batch working set, not
    // with (k+1) × dim.
    let ((bytes_small, bytes_big), _) = run_ps2(spec(2, 2), 61, |ctx, ps2| {
        let run = |ctx: &mut ps2_core::SimCtx, ps2: &mut ps2_core::Ps2Context, dim: u64| {
            let gen = SparseDatasetGen::new(500, dim, 8, 2, 3);
            let cfg = FmConfig::new(gen, 4, 3);
            let before = ctx.now();
            let _ = train_fm(ctx, ps2, &cfg);
            (ctx.now() - before).as_secs_f64()
        };
        let small = run(ctx, ps2, 2_000);
        let big = run(ctx, ps2, 2_000_000); // 1000x wider model
        (small, big)
    });
    assert!(
        bytes_big < 3.0 * bytes_small,
        "block access must not scale with model width: {bytes_small:.4}s vs {bytes_big:.4}s"
    );
}

#[test]
fn mllib_star_converges_and_beats_plain_mllib() {
    let gen = SparseDatasetGen::new(4_000, 150_000, 15, 8, 7);
    let star = {
        let g = gen.clone();
        let (t, _) = run_ps2(spec(8, 1), 3, move |ctx, ps2| {
            let mut cfg = LrConfig::new(g, Optimizer::Sgd, 10);
            cfg.hyper.learning_rate = 3.0;
            cfg.hyper.mini_batch_fraction = 0.05;
            train_lr_mllib_star(ctx, ps2, &cfg)
        });
        t
    };
    let plain = {
        let g = gen.clone();
        let (t, _) = run_ps2(spec(8, 1), 3, move |ctx, ps2| {
            let mut cfg = LrConfig::new(g, Optimizer::Sgd, 10);
            cfg.hyper.learning_rate = 3.0;
            cfg.hyper.mini_batch_fraction = 0.05;
            train_lr(ctx, ps2, &cfg, LrBackend::SparkDriver)
        });
        t
    };
    assert!(star.is_sane());
    assert!(star.final_loss() < star.points[0].1, "{:?}", star.points);
    assert!(
        star.total_time() < plain.total_time(),
        "AllReduce averaging must beat driver aggregation: {:.3} vs {:.3}",
        star.total_time(),
        plain.total_time()
    );
}

#[test]
fn mllib_star_still_loses_to_ps2_on_wide_sparse_models() {
    // Dense AllReduce moves 2×dim per worker; PS2 moves only the working
    // set. On wide sparse models PS2 wins — the niche MLlib* cannot cover.
    let gen = SparseDatasetGen::new(4_000, 800_000, 12, 8, 9);
    let time = |use_star: bool| {
        let g = gen.clone();
        let (t, _) = run_ps2(spec(8, 8), 3, move |ctx, ps2| {
            let mut cfg = LrConfig::new(g, Optimizer::Sgd, 6);
            cfg.hyper.mini_batch_fraction = 0.02;
            if use_star {
                train_lr_mllib_star(ctx, ps2, &cfg)
            } else {
                train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv)
            }
        });
        t.total_time()
    };
    let t_star = time(true);
    let t_ps2 = time(false);
    assert!(
        t_ps2 < t_star,
        "PS2 should win on wide sparse models: {t_ps2:.3} vs {t_star:.3}"
    );
}
