//! Tests for the first-class consistency modes: the shard-sampling fix,
//! per-mode convergence, pipelining, and determinism.

use ps2_data::SparseDatasetGen;
use ps2_ml::modes::{run_mode, shard_batch_rows, shard_range, ModeAlgo, ModeConfig};
use ps2_ps::ConsistencyMode;
use ps2_simnet::SimTime;

fn base_cfg(mode: ConsistencyMode) -> ModeConfig {
    ModeConfig::new(SparseDatasetGen::new(2_000, 3_000, 12, 4, 7), 4, 3, mode)
}

/// Regression test for the SSP mini-batch indexing bug: the old loop
/// computed an *absolute* start row `lo + offset` and then re-added the
/// shard base inside the modulo (`rows.0 + (start + i) % span`), skewing
/// and aliasing the sample for every worker with `rows.0 > 0`.
#[test]
fn batch_rows_stay_in_shard_without_double_offset() {
    let rows = 2_000u64;
    let workers = 4;
    for w in 0..workers {
        let shard = shard_range(rows, w, workers);
        let (lo, hi) = shard;
        let span = hi - lo;
        for t in 1..=40u32 {
            let batch = shard_batch_rows(shard, t, 64);
            assert_eq!(batch.len(), 64);
            for &r in &batch {
                assert!(
                    (lo..hi).contains(&r),
                    "worker {w} iter {t}: row {r} outside shard [{lo}, {hi})"
                );
            }
            // The exact expected window: a shard-relative offset, wrapped
            // within the shard. The buggy version started instead at
            // lo + (lo + (t·131 % span)) % span — for worker 1 of this
            // config (lo = 500) that is 250 rows away from the correct
            // start, which this equality catches.
            let start = (t as u64 * 131) % span;
            let expect: Vec<u64> = (0..64u64).map(|i| lo + (start + i) % span).collect();
            assert_eq!(batch, expect, "worker {w} iter {t}");
        }
    }
}

/// With `mini_batch = span`, successive batches must cover the shard
/// exactly — every row sampled once per batch, none aliased away.
#[test]
fn batch_covers_the_shard_uniformly() {
    let shard = (500u64, 600u64); // a worker-1-style shard with lo > 0
    let span = (shard.1 - shard.0) as usize;
    for t in 1..=5u32 {
        let mut batch = shard_batch_rows(shard, t, span);
        batch.sort_unstable();
        batch.dedup();
        assert_eq!(batch.len(), span, "iter {t} aliased rows within the shard");
        assert_eq!(batch[0], shard.0);
        assert_eq!(*batch.last().unwrap(), shard.1 - 1);
    }
}

#[test]
fn every_mode_converges() {
    for mode in [
        ConsistencyMode::Bsp,
        ConsistencyMode::Ssp { bound: 2 },
        ConsistencyMode::Async,
    ] {
        for algo in [ModeAlgo::Lr, ModeAlgo::Svm] {
            let mut cfg = base_cfg(mode);
            cfg.iterations = 20;
            let (trace, report) = run_mode(&cfg, algo);
            assert!(trace.is_sane(), "{}: {:?}", trace.label, trace.points);
            assert_eq!(trace.points.len(), 20);
            assert!(
                trace.final_loss() < trace.points[0].1,
                "{} did not learn: {:?} -> {:?}",
                trace.label,
                trace.points.first(),
                trace.points.last()
            );
            assert!(report.total_msgs > 0);
        }
    }
}

#[test]
fn relaxed_modes_outpace_bsp_under_a_straggler() {
    let run = |mode: ConsistencyMode| {
        let mut cfg = base_cfg(mode);
        cfg.iterations = 16;
        cfg.straggler_slowdown = SimTime::from_millis(40);
        let (trace, _) = run_mode(&cfg, ModeAlgo::Lr);
        trace
    };
    let bsp = run(ConsistencyMode::Bsp);
    let ssp = run(ConsistencyMode::Ssp { bound: 3 });
    let asy = run(ConsistencyMode::Async);
    let mid = 8;
    assert!(
        ssp.points[mid].0 < bsp.points[mid].0,
        "ssp {:?} vs bsp {:?}",
        ssp.points[mid],
        bsp.points[mid]
    );
    assert!(
        asy.points[mid].0 < bsp.points[mid].0,
        "async {:?} vs bsp {:?}",
        asy.points[mid],
        bsp.points[mid]
    );
}

#[test]
fn mode_runs_are_deterministic() {
    for mode in [
        ConsistencyMode::Bsp,
        ConsistencyMode::Ssp { bound: 2 },
        ConsistencyMode::Async,
    ] {
        let mut cfg = base_cfg(mode);
        cfg.iterations = 8;
        let (t1, r1) = run_mode(&cfg, ModeAlgo::Svm);
        let (t2, r2) = run_mode(&cfg, ModeAlgo::Svm);
        assert_eq!(t1.points, t2.points, "{}", t1.label);
        assert_eq!(r1.total_msgs, r2.total_msgs);
        assert_eq!(r1.total_bytes, r2.total_bytes);
        assert_eq!(r1.virtual_time, r2.virtual_time);
    }
}

/// The cache only pays off in modes that tolerate staleness: SSP must pull
/// fewer parameter values over the wire than BSP on the same workload.
#[test]
fn ssp_cache_cuts_pull_traffic() {
    let run = |mode: ConsistencyMode| {
        let mut cfg = base_cfg(mode);
        cfg.iterations = 12;
        let (_, report) = run_mode(&cfg, ModeAlgo::Lr);
        (
            report.metrics.counter("ps.cache.hit"),
            report.metrics.counter("ps.cache.miss"),
        )
    };
    let (bsp_hit, bsp_miss) = run(ConsistencyMode::Bsp);
    let (ssp_hit, ssp_miss) = run(ConsistencyMode::Ssp { bound: 3 });
    assert_eq!(bsp_hit, 0, "BSP must never serve a stale parameter");
    assert!(bsp_miss > 0);
    assert!(ssp_hit > 0, "SSP must serve some pulls from the cache");
    assert!(
        ssp_miss < bsp_miss,
        "SSP wire pulls {ssp_miss} must undercut BSP {bsp_miss}"
    );
}
