//! Behavioural tests for the ML workloads: every backend must actually
//! learn, and the virtual-time orderings the paper reports must hold at
//! test scale.

use ps2_core::{run_ps2, ClusterSpec};
use ps2_data::{presets, CorpusGen, GraphGen, RandomWalks, SparseDatasetGen};
use ps2_ml::deepwalk::{train_deepwalk, DeepWalkBackend, DeepWalkConfig};
use ps2_ml::gbdt::{train_gbdt, GbdtBackend, GbdtConfig};
use ps2_ml::hyper::{DeepWalkHyper, GbdtHyper, LdaHyper};
use ps2_ml::lbfgs::{train_lbfgs, LbfgsConfig};
use ps2_ml::lda::{train_lda, LdaBackend, LdaConfig};
use ps2_ml::lr::{train_lr, LrBackend, LrConfig};
use ps2_ml::optim::Optimizer;
use ps2_ml::svm::{train_svm, SvmConfig};
use ps2_ml::TrainingTrace;

fn spec(w: usize, s: usize) -> ClusterSpec {
    ClusterSpec {
        workers: w,
        servers: s,
        ..ClusterSpec::default()
    }
}

fn small_lr_dataset(parts: usize) -> SparseDatasetGen {
    SparseDatasetGen::new(4_000, 2_000, 12, parts, 7)
}

fn adam() -> Optimizer {
    Optimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        epsilon: 1e-8,
    }
}

fn run_lr(backend: LrBackend, opt: Optimizer, iters: usize) -> TrainingTrace {
    let (trace, _) = run_ps2(spec(4, 4), 3, move |ctx, ps2| {
        let mut cfg = LrConfig::new(small_lr_dataset(4), opt, iters);
        cfg.hyper.mini_batch_fraction = 0.05;
        // Adaptive optimizers take ~unit steps per coordinate; plain SGD on
        // a 1/batch-normalized sparse gradient needs a larger rate.
        cfg.hyper.learning_rate = match opt {
            Optimizer::Sgd => 3.0,
            _ => 0.05,
        };
        train_lr(ctx, ps2, &cfg, backend)
    });
    trace
}

fn improves(trace: &TrainingTrace) -> bool {
    assert!(trace.is_sane(), "bad trace for {}", trace.label);
    let first = trace.points.first().unwrap().1;
    let last = trace.final_loss();
    last < first * 0.92
}

#[test]
fn lr_every_backend_converges_with_sgd() {
    for backend in [
        LrBackend::Ps2Dcv,
        LrBackend::SparkDriver,
        LrBackend::PetuumStyle,
        LrBackend::DistmlStyle,
    ] {
        let trace = run_lr(backend, Optimizer::Sgd, 25);
        assert!(
            improves(&trace),
            "{}: {:?} -> {:?}",
            trace.label,
            trace.points.first(),
            trace.points.last()
        );
    }
}

#[test]
fn lr_adam_backends_converge_and_agree() {
    let ps2 = run_lr(LrBackend::Ps2Dcv, adam(), 25);
    let pull = run_lr(LrBackend::PsPullPush, adam(), 25);
    let spark = run_lr(LrBackend::SparkDriver, adam(), 25);
    assert!(improves(&ps2), "{:?}", ps2.points.last());
    assert!(improves(&pull));
    assert!(improves(&spark));
    // Same math, same seed, same batches: identical loss sequences.
    for ((_, a), (_, b)) in ps2.points.iter().zip(&pull.points) {
        assert!((a - b).abs() < 1e-9, "PS2 {a} vs PS- {b}");
    }
    for ((_, a), (_, b)) in ps2.points.iter().zip(&spark.points) {
        assert!((a - b).abs() < 1e-9, "PS2 {a} vs Spark {b}");
    }
}

#[test]
fn lr_adam_ps2_is_fastest_spark_slowest() {
    // The Figure 9(a) ordering: Spark- > PS- > PS2- in time for the same
    // number of iterations. Use a wider model so communication dominates.
    let run = |backend| {
        let (trace, _) = run_ps2(spec(8, 8), 3, move |ctx, ps2| {
            let mut cfg = LrConfig::new(SparseDatasetGen::new(8_000, 200_000, 20, 8, 7), adam(), 5);
            cfg.hyper.mini_batch_fraction = 0.02;
            cfg.hyper.learning_rate = 0.05;
            train_lr(ctx, ps2, &cfg, backend)
        });
        trace.total_time()
    };
    let t_ps2 = run(LrBackend::Ps2Dcv);
    let t_ps = run(LrBackend::PsPullPush);
    let t_spark = run(LrBackend::SparkDriver);
    assert!(
        t_ps2 < t_ps && t_ps < t_spark,
        "expected PS2 < PS < Spark, got {t_ps2:.3} / {t_ps:.3} / {t_spark:.3}"
    );
}

#[test]
fn lr_sgd_ps2_beats_petuum_via_sparse_pulls() {
    // Figure 10's mechanism at test scale.
    let run = |backend| {
        let (trace, _) = run_ps2(spec(4, 4), 5, move |ctx, ps2| {
            let cfg = LrConfig::new(
                SparseDatasetGen::new(4_000, 100_000, 15, 4, 9),
                Optimizer::Sgd,
                6,
            );
            train_lr(ctx, ps2, &cfg, backend)
        });
        trace.total_time()
    };
    let t_ps2 = run(LrBackend::Ps2Dcv);
    let t_petuum = run(LrBackend::PetuumStyle);
    assert!(
        t_petuum > 1.2 * t_ps2,
        "Petuum full pulls should cost: {t_ps2:.3} vs {t_petuum:.3}"
    );
}

#[test]
fn lr_spark_breakdown_shows_aggregation_dominating_at_high_dim() {
    // Figure 1(b): at high dimension the aggregation step dominates.
    let (trace, _) = run_ps2(spec(8, 1), 3, move |ctx, ps2| {
        let mut cfg = LrConfig::new(
            SparseDatasetGen::new(2_000, 400_000, 10, 8, 7),
            Optimizer::Sgd,
            4,
        );
        cfg.hyper.mini_batch_fraction = 0.05;
        train_lr(ctx, ps2, &cfg, LrBackend::SparkDriver)
    });
    let b = trace.breakdown.expect("spark backend records breakdown");
    assert!(
        b.aggregation > b.gradient_calc && b.aggregation > b.model_update,
        "aggregation must dominate: {b:?}"
    );
    assert!(b.total() > 0.0);
}

#[test]
fn lr_adagrad_and_rmsprop_work_on_ps2() {
    for opt in [
        Optimizer::Adagrad { epsilon: 1e-8 },
        Optimizer::RmsProp {
            decay: 0.9,
            epsilon: 1e-8,
        },
    ] {
        let trace = run_lr(LrBackend::Ps2Dcv, opt, 25);
        assert!(improves(&trace), "{}", trace.label);
    }
}

#[test]
fn deepwalk_learns_and_ps2_beats_pullpush_on_few_servers() {
    let run = |backend| {
        let (trace, _) = run_ps2(spec(4, 2), 11, move |ctx, ps2| {
            let g = GraphGen {
                vertices: 600,
                edges_per_vertex: 3,
                seed: 5,
            }
            .generate();
            let walks = RandomWalks::sample(&g, 600, 8, 6);
            let cfg = DeepWalkConfig {
                vertices: 600,
                hyper: DeepWalkHyper {
                    embedding_dim: 256,
                    ..DeepWalkHyper::default()
                },
                batch_per_worker: 256,
                // With word2vec's standard +-0.5/K init the initial dots are
                // ~2e-5, so per-iteration loss movement starts around 1e-7 —
                // below the negative-sampling noise floor of a 6-iteration
                // run. 32 iterations give the loss trend >10 sigma over that
                // noise while keeping the test fast.
                iterations: 32,
                seed: 13,
            };
            train_deepwalk(ctx, ps2, &cfg, &walks, backend)
        });
        trace
    };
    let ps2t = run(DeepWalkBackend::Ps2Dcv);
    let pst = run(DeepWalkBackend::PsPullPush);
    assert!(ps2t.is_sane() && pst.is_sane());
    assert!(
        ps2t.final_loss() < ps2t.points[0].1,
        "PS2-DeepWalk must reduce loss: {:?}",
        ps2t.points
    );
    assert!(
        pst.total_time() > 1.5 * ps2t.total_time(),
        "PS- must be slower with 2 servers: {:.3} vs {:.3}",
        ps2t.total_time(),
        pst.total_time()
    );
}

#[test]
fn deepwalk_advantage_shrinks_with_many_servers() {
    // Figure 9(d): more servers → the dot's partial-gather headers eat the
    // gain.
    let speedup = |servers: usize| {
        let run = |backend| {
            let (trace, _) = run_ps2(spec(4, servers), 11, move |ctx, ps2| {
                let g = GraphGen {
                    vertices: 200,
                    edges_per_vertex: 3,
                    seed: 5,
                }
                .generate();
                let walks = RandomWalks::sample(&g, 200, 8, 6);
                let cfg = DeepWalkConfig {
                    vertices: 200,
                    hyper: DeepWalkHyper {
                        embedding_dim: 64,
                        ..DeepWalkHyper::default()
                    },
                    batch_per_worker: 48,
                    iterations: 3,
                    seed: 13,
                };
                train_deepwalk(ctx, ps2, &cfg, &walks, backend)
            });
            trace.total_time()
        };
        run(DeepWalkBackend::PsPullPush) / run(DeepWalkBackend::Ps2Dcv)
    };
    let few = speedup(2);
    let many = speedup(16);
    assert!(
        few > many,
        "speedup should shrink with servers: {few:.2}x vs {many:.2}x"
    );
}

#[test]
fn gbdt_learns_and_ps2_beats_allreduce() {
    let dataset = SparseDatasetGen::new(2_000, 60, 12, 4, 21).continuous();
    let hyper = GbdtHyper {
        num_trees: 5,
        max_depth: 3,
        histogram_bins: 16,
        ..GbdtHyper::default()
    };
    let run = |backend| {
        let ds = dataset.clone();
        let (out, _) = run_ps2(spec(4, 4), 17, move |ctx, ps2| {
            let cfg = GbdtConfig { dataset: ds, hyper };
            train_gbdt(ctx, ps2, &cfg, backend)
        });
        out
    };
    let (t_ps2, trees) = run(GbdtBackend::Ps2Dcv);
    let (t_xgb, trees_xgb) = run(GbdtBackend::XgboostStyle);
    assert!(t_ps2.is_sane() && t_xgb.is_sane());
    assert_eq!(trees.len(), 5);
    assert_eq!(trees_xgb.len(), 5);
    assert!(
        t_ps2.final_loss() < t_ps2.points[0].1,
        "boosting must reduce loss: {:?}",
        t_ps2.points
    );
    // Identical math → identical losses, different clocks.
    for ((_, a), (_, b)) in t_ps2.points.iter().zip(&t_xgb.points) {
        assert!((a - b).abs() < 1e-9, "PS2 {a} vs XGB {b}");
    }
    assert!(
        t_xgb.total_time() > t_ps2.total_time(),
        "AllReduce should be slower: {:.1} vs {:.1}",
        t_ps2.total_time(),
        t_xgb.total_time()
    );
}

#[test]
fn lda_learns_topics_and_system_ordering_holds() {
    // Model big enough (V×K) that full pulls and driver aggregation hurt.
    let corpus = CorpusGen::new(800, 6_000, 10, 30, 8, 31);
    let run = |backend| {
        let c = corpus.clone();
        let (trace, _) = run_ps2(spec(8, 4), 23, move |ctx, ps2| {
            let cfg = LdaConfig {
                corpus: c,
                hyper: LdaHyper {
                    topics: 16,
                    ..LdaHyper::default()
                },
                iterations: 6,
            };
            train_lda(ctx, ps2, &cfg, backend)
        });
        trace
    };
    let ps2t = run(LdaBackend::Ps2Dcv);
    assert!(ps2t.is_sane());
    assert!(
        ps2t.final_loss() < ps2t.points[0].1 * 0.9,
        "Gibbs must improve likelihood: {:?}",
        ps2t.points
    );
    let petuum = run(LdaBackend::PetuumStyle);
    let glint = run(LdaBackend::GlintStyle);
    let mllib = run(LdaBackend::SparkDriver);
    assert!(
        ps2t.total_time() < petuum.total_time(),
        "PS2 {:.1}s vs Petuum {:.1}s",
        ps2t.total_time(),
        petuum.total_time()
    );
    assert!(
        petuum.total_time() < glint.total_time(),
        "Petuum {:.1}s vs Glint {:.1}s",
        petuum.total_time(),
        glint.total_time()
    );
    assert!(
        ps2t.total_time() < mllib.total_time(),
        "PS2 {:.1}s vs MLlib {:.1}s",
        ps2t.total_time(),
        mllib.total_time()
    );
}

#[test]
fn svm_converges_on_ps2() {
    let (trace, _) = run_ps2(spec(4, 4), 41, |ctx, ps2| {
        let mut cfg = SvmConfig::new(small_lr_dataset(4), 40);
        cfg.learning_rate = 2.0;
        train_svm(ctx, ps2, &cfg)
    });
    assert!(trace.is_sane());
    assert!(
        trace.final_loss() < trace.points[0].1 * 0.9,
        "{:?}",
        trace.points
    );
}

#[test]
fn lbfgs_converges_faster_per_iteration_than_sgd() {
    let dataset = SparseDatasetGen::new(2_000, 500, 10, 4, 7);
    let (lbfgs_trace, _) = run_ps2(spec(4, 4), 43, {
        let ds = dataset.clone();
        move |ctx, ps2| train_lbfgs(ctx, ps2, &LbfgsConfig::new(ds, 10))
    });
    assert!(lbfgs_trace.is_sane());
    let first = lbfgs_trace.points[0].1;
    let last = lbfgs_trace.final_loss();
    assert!(
        last < 0.8 * first,
        "L-BFGS should make strong progress: {first} -> {last}"
    );
    // Loss must be non-increasing-ish (allow small noise from batching).
    let min = lbfgs_trace
        .points
        .iter()
        .map(|&(_, l)| l)
        .fold(f64::INFINITY, f64::min);
    assert!(last <= min * 1.05);
}

#[test]
fn presets_run_end_to_end_at_tiny_iteration_counts() {
    // Smoke: the Table 2 presets plug into the trainers.
    let (ok, _) = run_ps2(spec(4, 4), 51, |ctx, ps2| {
        let kddb = presets::kddb(4, 1);
        let cfg = LrConfig::new(kddb.gen, Optimizer::Sgd, 2);
        let t1 = train_lr(ctx, ps2, &cfg, LrBackend::Ps2Dcv);
        t1.is_sane()
    });
    assert!(ok);
}
