//! Property-based tests for the simulator's invariants.

use proptest::prelude::*;
use ps2_simnet::{Envelope, NetConfig, Proc, ProcId, SimBuilder, SimTime, StepCtx, VtHistogram};

fn quiet_net() -> NetConfig {
    NetConfig {
        bandwidth_bps: 1e9,
        latency: SimTime::from_micros(100),
        per_msg_overhead: SimTime::ZERO,
        loopback: SimTime::from_micros(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arrival time is monotone in message size: a bigger message from the
    /// same idle sender never arrives earlier.
    #[test]
    fn arrival_monotone_in_bytes(b1 in 1u64..10_000_000, b2 in 1u64..10_000_000) {
        let (small, big) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let arr = |bytes: u64| {
            let mut sim = SimBuilder::new().network(quiet_net()).build();
            let rx = sim.spawn_collect("rx", |ctx| ctx.recv().arrival);
            sim.spawn("tx", move |ctx| ctx.send(ProcId(0), 0, (), bytes));
            sim.run().unwrap();
            rx.take()
        };
        prop_assert!(arr(small) <= arr(big));
    }

    /// Virtual clocks never decrease: each process's finish time is at
    /// least its total charged busy time.
    #[test]
    fn finish_time_bounds_busy_time(
        charges in prop::collection::vec(1u64..5_000_000, 1..20)
    ) {
        let mut sim = SimBuilder::new().build();
        let cs = charges.clone();
        sim.spawn("busy", move |ctx| {
            for c in &cs {
                ctx.advance(SimTime(*c));
            }
        });
        let report = sim.run().unwrap();
        let p = report.proc("busy").unwrap();
        let total: u64 = charges.iter().sum();
        prop_assert_eq!(p.busy, SimTime(total));
        prop_assert!(p.finished_at >= p.busy);
    }

    /// With N parallel one-shot senders to one sink, the sink's last arrival
    /// is at least N * wire-time (in-NIC serialization) and the whole run is
    /// deterministic across repetitions.
    #[test]
    fn incast_lower_bound_holds(n in 1usize..10, kb in 1u64..512) {
        let bytes = kb * 1024;
        let run = || {
            let mut sim = SimBuilder::new().network(quiet_net()).build();
            let nn = n;
            let sink = sim.spawn_collect("sink", move |ctx| {
                let mut last = SimTime::ZERO;
                for _ in 0..nn {
                    last = last.max(ctx.recv().arrival);
                }
                last
            });
            for i in 0..n {
                sim.spawn(&format!("tx{i}"), move |ctx| ctx.send(ProcId(0), 0, (), bytes));
            }
            sim.run().unwrap();
            sink.take()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
        let wire_ns = (bytes as f64 * 8.0 / 1e9 * 1e9).round() as u64;
        prop_assert!(a.as_nanos() >= wire_ns * n as u64);
    }

    /// Trace integrity under a randomized multi-proc workload: message
    /// pairing is an exact bijection on the explicit `seq` — every `Recv`
    /// consumes a strictly-earlier `Send` with the same seq, src, dst and
    /// tag; no seq is received twice or never sent — and the trace is
    /// non-decreasing in virtual time.
    #[test]
    fn trace_recvs_pair_with_earlier_sends(
        n_procs in 2usize..6,
        msgs in prop::collection::vec((0usize..6, 0usize..6, 0u32..8, 1u64..100_000), 1..30),
        pre_work in prop::collection::vec(0u64..2_000_000, 0..6),
    ) {
        // Assign each message to its sender; count how many each proc will
        // receive. Sends are non-blocking, so every proc can send all its
        // mail first and then drain exactly its expected count — no deadlock.
        let mut outbox: Vec<Vec<(usize, u32, u64)>> = vec![Vec::new(); n_procs];
        let mut expected_recv = vec![0usize; n_procs];
        for &(src, dst, tag, bytes) in &msgs {
            let (src, dst) = (src % n_procs, dst % n_procs);
            outbox[src].push((dst, tag, bytes));
            expected_recv[dst] += 1;
        }

        let mut sim = SimBuilder::new().network(quiet_net()).trace(true).build();
        for (i, mail) in outbox.iter().enumerate() {
            let mail = mail.clone();
            let n_recv = expected_recv[i];
            let warm = pre_work.get(i).copied().unwrap_or(0);
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.advance(SimTime(warm));
                for (dst, tag, bytes) in mail {
                    ctx.send(ProcId(dst), tag, (), bytes);
                }
                for _ in 0..n_recv {
                    let _ = ctx.recv();
                }
            });
        }
        let report = sim.run().unwrap();

        // Non-decreasing virtual time across the whole trace.
        let times: Vec<u64> = report.trace.iter().map(|e| e.at().as_nanos()).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));

        // Walk in trace order: every Recv names, via `seq`, exactly one
        // strictly-earlier Send with matching endpoints and tag (latency > 0
        // guarantees strictness), and no seq is reused or invented.
        let mut sent: std::collections::BTreeMap<u64, (SimTime, usize, usize, u32)> =
            std::collections::BTreeMap::new();
        let mut received: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut recvs = 0usize;
        for e in &report.trace {
            match e {
                ps2_simnet::TraceEvent::Send { at, src, dst, tag, seq, .. } => {
                    let dup = sent.insert(*seq, (*at, src.0, dst.0, *tag));
                    prop_assert!(dup.is_none(), "send seq {seq} allocated twice");
                }
                ps2_simnet::TraceEvent::Recv { at, proc, src, tag, seq } => {
                    recvs += 1;
                    let s = sent.get(seq);
                    prop_assert!(s.is_some(), "Recv seq {seq} has no earlier Send");
                    let &(sent_at, s_src, s_dst, s_tag) = s.unwrap();
                    prop_assert_eq!((s_src, s_dst, s_tag), (src.0, proc.0, *tag));
                    prop_assert!(sent_at < *at, "Recv at {at} not after Send at {sent_at}");
                    prop_assert!(received.insert(*seq), "seq {seq} received twice");
                }
                _ => {}
            }
        }
        prop_assert_eq!(recvs, msgs.len());
        // Exact bijection: everything sent was received (no drops here).
        prop_assert_eq!(received.len(), sent.len());
    }

    /// A mixed run — steppable agents (request/reply echo servers plus a
    /// timer-driven ticker) interleaved with legacy thread procs — is
    /// byte-identical across repeated same-seed executions: identical
    /// virtual time, identical full trace, identical metrics registry.
    #[test]
    fn mixed_agent_and_thread_runs_are_byte_identical(
        clients in 1usize..4,
        rounds in 1usize..8,
        charge in 0u64..500_000,
        tick_period in 1u64..2_000_000,
        ticks in 1u32..8,
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut sim = SimBuilder::new()
                .seed(seed)
                .network(quiet_net())
                .trace(true)
                .build();
            let echo_a = sim.spawn_agent_daemon("echo-a", EchoAgent { charge });
            let echo_b = sim.spawn_agent_daemon("echo-b", EchoAgent { charge });
            let sink = sim.spawn(
                "tick-sink",
                {
                    let n = ticks as usize;
                    move |ctx| {
                        for _ in 0..n {
                            let _ = ctx.recv();
                        }
                    }
                },
            );
            sim.spawn_agent(
                "ticker",
                TickerAgent { period: tick_period, left: ticks, dst: sink },
            );
            for c in 0..clients {
                sim.spawn(&format!("client-{c}"), move |ctx| {
                    for r in 0..rounds {
                        let dst = if (c + r) % 2 == 0 { echo_a } else { echo_b };
                        let x = (c * 100 + r) as u64;
                        let y: u64 = ctx.call(dst, 3, x, 16).downcast();
                        assert_eq!(y, x + 1);
                    }
                });
            }
            let report = sim.run().unwrap();
            let counters: Vec<String> = report
                .metrics
                .counters()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let hists: Vec<String> = report
                .metrics
                .hists()
                .map(|(k, h)| format!("{k}:{}", h.to_json()))
                .collect();
            format!(
                "{:?}|{:?}|{:?}|{counters:?}|{hists:?}",
                report.virtual_time, report.trace, report.procs,
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// RPC replies always match their requests even under interleaving.
    #[test]
    fn rpc_replies_match_under_interleaving(rounds in 1usize..20, clients in 1usize..6) {
        let mut sim = SimBuilder::new().build();
        let server = sim.spawn_daemon("server", |ctx| loop {
            let env = ctx.recv();
            let v: u64 = *env.downcast_ref::<u64>();
            ctx.reply(&env, v + 1, 8);
        });
        let mut slots = Vec::new();
        for c in 0..clients {
            let slot = sim.spawn_collect(&format!("c{c}"), move |ctx| {
                let mut ok = true;
                for r in 0..rounds {
                    let x = (c * 1000 + r) as u64;
                    let y: u64 = ctx.call(server, 0, x, 8).downcast();
                    ok &= y == x + 1;
                }
                ok
            });
            slots.push(slot);
        }
        sim.run().unwrap();
        for s in slots {
            prop_assert!(s.take());
        }
    }
}

/// Steppable echo server: charges fixed compute, replies `x + 1`.
struct EchoAgent {
    charge: u64,
}

impl Proc for EchoAgent {
    fn on_message(&mut self, ctx: &mut StepCtx<'_>, env: Envelope) {
        if env.is_reply() {
            return;
        }
        ctx.advance(SimTime(self.charge));
        let x: u64 = *env.downcast_ref::<u64>();
        ctx.reply(&env, x + 1, 8);
    }
}

/// Timer-driven agent: every `period` ns it sends one message to a thread
/// sink, then finishes after `left` ticks.
struct TickerAgent {
    period: u64,
    left: u32,
    dst: ProcId,
}

impl Proc for TickerAgent {
    fn on_start(&mut self, ctx: &mut StepCtx<'_>) {
        ctx.set_timer(SimTime(self.period));
    }

    fn on_message(&mut self, _ctx: &mut StepCtx<'_>, _env: Envelope) {}

    fn on_timer(&mut self, ctx: &mut StepCtx<'_>, _timer: u64) {
        ctx.send(self.dst, 7, self.left as u64, 24);
        self.left -= 1;
        if self.left == 0 {
            ctx.finish();
        } else {
            ctx.set_timer(SimTime(self.period));
        }
    }
}

fn hist_of(values: &[u64]) -> VtHistogram {
    let mut h = VtHistogram::default();
    for &v in values {
        h.observe(SimTime(v));
    }
    h
}

// Properties of the mergeable log-linear latency histogram: the quantile
// estimator is monotone in `q`, and merging two histograms (the wire form
// used by per-window timeseries deltas and cross-proc op summaries) never
// produces a quantile outside the interval spanned by the inputs' own
// quantiles at the same `q`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `quantile_ns` is monotone non-decreasing in `q` and pinned to the
    /// observed extremes at the ends: q=1 returns `max_ns` exactly, and q=0
    /// lands in the minimum's own bucket (within the log-linear relative
    /// error of 1/2^SUB_BITS).
    #[test]
    fn hist_quantile_monotone_in_q(
        values in prop::collection::vec(0u64..(1u64 << 44), 1..200),
        qs_milli in prop::collection::vec(0u64..=1000, 2..8),
    ) {
        let h = hist_of(&values);
        let mut qs: Vec<f64> = qs_milli.iter().map(|&m| m as f64 / 1000.0).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let estimates: Vec<u64> = qs.iter().map(|&q| h.quantile_ns(q)).collect();
        prop_assert!(
            estimates.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {qs:?} -> {estimates:?}"
        );
        let q0 = h.quantile_ns(0.0);
        prop_assert!(
            h.min_ns() <= q0 && q0 <= h.min_ns() + h.min_ns() / 32 + 1,
            "q=0 estimate {q0} outside min's bucket (min {})", h.min_ns()
        );
        prop_assert_eq!(h.quantile_ns(1.0), h.max_ns());
    }

    /// A merged histogram is exact on count/sum/min/max, and its quantile at
    /// any `q` stays within the interval spanned by the inputs' quantiles at
    /// the same `q` — merging shards can coarsen a tail estimate but never
    /// invent one outside what the shards saw.
    #[test]
    fn hist_merge_bounds_input_quantiles(
        a in prop::collection::vec(0u64..(1u64 << 44), 1..120),
        b in prop::collection::vec(0u64..(1u64 << 44), 1..120),
        qs_milli in prop::collection::vec(0u64..=1000, 1..6),
    ) {
        let qs: Vec<f64> = qs_milli.iter().map(|&m| m as f64 / 1000.0).collect();
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut hm = ha.clone();
        hm.merge(&hb);

        prop_assert_eq!(hm.count(), ha.count() + hb.count());
        prop_assert_eq!(hm.sum_ns(), ha.sum_ns() + hb.sum_ns());
        prop_assert_eq!(hm.min_ns(), ha.min_ns().min(hb.min_ns()));
        prop_assert_eq!(hm.max_ns(), ha.max_ns().max(hb.max_ns()));

        for &q in &qs {
            let (qa, qb, qm) = (ha.quantile_ns(q), hb.quantile_ns(q), hm.quantile_ns(q));
            prop_assert!(
                qa.min(qb) <= qm && qm <= qa.max(qb),
                "q={q}: merged {qm} outside [{}, {}]", qa.min(qb), qa.max(qb)
            );
        }
    }

    /// Merging is order-insensitive on everything the SLO report consumes:
    /// a⊕b and b⊕a agree on count, sum, extremes, buckets, and quantiles.
    #[test]
    fn hist_merge_is_commutative(
        a in prop::collection::vec(0u64..(1u64 << 44), 0..80),
        b in prop::collection::vec(0u64..(1u64 << 44), 0..80),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum_ns(), ba.sum_ns());
        prop_assert_eq!(ab.min_ns(), ba.min_ns());
        prop_assert_eq!(ab.max_ns(), ba.max_ns());
        prop_assert_eq!(ab.sparse_buckets(), ba.sparse_buckets());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(ab.quantile_ns(q), ba.quantile_ns(q));
        }
    }
}
