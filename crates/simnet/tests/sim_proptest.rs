//! Property-based tests for the simulator's invariants.

use proptest::prelude::*;
use ps2_simnet::{NetConfig, ProcId, SimBuilder, SimTime};

fn quiet_net() -> NetConfig {
    NetConfig {
        bandwidth_bps: 1e9,
        latency: SimTime::from_micros(100),
        per_msg_overhead: SimTime::ZERO,
        loopback: SimTime::from_micros(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arrival time is monotone in message size: a bigger message from the
    /// same idle sender never arrives earlier.
    #[test]
    fn arrival_monotone_in_bytes(b1 in 1u64..10_000_000, b2 in 1u64..10_000_000) {
        let (small, big) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let arr = |bytes: u64| {
            let mut sim = SimBuilder::new().network(quiet_net()).build();
            let rx = sim.spawn_collect("rx", |ctx| ctx.recv().arrival);
            sim.spawn("tx", move |ctx| ctx.send(ProcId(0), 0, (), bytes));
            sim.run().unwrap();
            rx.take()
        };
        prop_assert!(arr(small) <= arr(big));
    }

    /// Virtual clocks never decrease: each process's finish time is at
    /// least its total charged busy time.
    #[test]
    fn finish_time_bounds_busy_time(
        charges in prop::collection::vec(1u64..5_000_000, 1..20)
    ) {
        let mut sim = SimBuilder::new().build();
        let cs = charges.clone();
        sim.spawn("busy", move |ctx| {
            for c in &cs {
                ctx.advance(SimTime(*c));
            }
        });
        let report = sim.run().unwrap();
        let p = report.proc("busy").unwrap();
        let total: u64 = charges.iter().sum();
        prop_assert_eq!(p.busy, SimTime(total));
        prop_assert!(p.finished_at >= p.busy);
    }

    /// With N parallel one-shot senders to one sink, the sink's last arrival
    /// is at least N * wire-time (in-NIC serialization) and the whole run is
    /// deterministic across repetitions.
    #[test]
    fn incast_lower_bound_holds(n in 1usize..10, kb in 1u64..512) {
        let bytes = kb * 1024;
        let run = || {
            let mut sim = SimBuilder::new().network(quiet_net()).build();
            let nn = n;
            let sink = sim.spawn_collect("sink", move |ctx| {
                let mut last = SimTime::ZERO;
                for _ in 0..nn {
                    last = last.max(ctx.recv().arrival);
                }
                last
            });
            for i in 0..n {
                sim.spawn(&format!("tx{i}"), move |ctx| ctx.send(ProcId(0), 0, (), bytes));
            }
            sim.run().unwrap();
            sink.take()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
        let wire_ns = (bytes as f64 * 8.0 / 1e9 * 1e9).round() as u64;
        prop_assert!(a.as_nanos() >= wire_ns * n as u64);
    }

    /// RPC replies always match their requests even under interleaving.
    #[test]
    fn rpc_replies_match_under_interleaving(rounds in 1usize..20, clients in 1usize..6) {
        let mut sim = SimBuilder::new().build();
        let server = sim.spawn_daemon("server", |ctx| loop {
            let env = ctx.recv();
            let v: u64 = *env.downcast_ref::<u64>();
            ctx.reply(&env, v + 1, 8);
        });
        let mut slots = Vec::new();
        for c in 0..clients {
            let slot = sim.spawn_collect(&format!("c{c}"), move |ctx| {
                let mut ok = true;
                for r in 0..rounds {
                    let x = (c * 1000 + r) as u64;
                    let y: u64 = ctx.call(server, 0, x, 8).downcast();
                    ok &= y == x + 1;
                }
                ok
            });
            slots.push(slot);
        }
        sim.run().unwrap();
        for s in slots {
            prop_assert!(s.take());
        }
    }
}
