//! Tests for `simnet::whatif` counterfactual replay over real simulated
//! workloads (hand-built-DAG unit tests live in the module itself).

use ps2_simnet::{
    parse_spec, replay, run_battery, standard_battery, CausalDag, NetConfig, ProcId, SimBuilder,
    SimReport, SimTime,
};

fn quiet_net() -> NetConfig {
    NetConfig {
        bandwidth_bps: 1e9,
        latency: SimTime::from_micros(100),
        per_msg_overhead: SimTime::ZERO,
        loopback: SimTime::from_micros(1),
    }
}

fn rpc_workload(seed: u64) -> SimReport {
    let mut sim = SimBuilder::new().seed(seed).trace(true).build();
    let server = sim.spawn_daemon("server", |ctx| loop {
        let env = ctx.recv();
        ctx.op_label("serve");
        ctx.charge_flops(50_000);
        ctx.op_label_clear();
        ctx.reply(&env, (), 256);
    });
    for c in 0..3 {
        sim.spawn(&format!("client{c}"), move |ctx| {
            for _ in 0..5u64 {
                let _ = ctx.call(server, 1, (), 4096);
                ctx.charge_flops(20_000 * (c + 1) as u64);
            }
        });
    }
    sim.run().unwrap()
}

/// The acceptance-criterion invariant: replaying the unmodified DAG of a
/// real run reproduces the measured makespan exactly, across seeds and
/// workload shapes.
#[test]
fn unmodified_replay_reproduces_the_measured_makespan() {
    for seed in [1u64, 7, 11, 42] {
        let report = rpc_workload(seed);
        let dag = CausalDag::from_report(&report).unwrap();
        let r = replay(&dag, &[]).unwrap();
        assert_eq!(
            r.makespan_ns,
            report.virtual_time.as_nanos(),
            "seed {seed}: unmodified replay must be a fixed point"
        );
        // Every process, not just the bound one, reproduces its finish.
        for (p, st) in report.procs.iter().enumerate() {
            assert_eq!(
                r.proc_finish_ns[p],
                st.finished_at.as_nanos(),
                "seed {seed}: proc {} ({}) drifted",
                p,
                st.name
            );
        }
    }
}

#[test]
fn replay_is_a_fixed_point_across_deadline_waits() {
    // Expired recv_timeouts leave untraced gaps; replay must carry them
    // verbatim.
    let mut sim = SimBuilder::new().network(quiet_net()).trace(true).build();
    sim.spawn("poller", |ctx| {
        assert!(ctx.recv_timeout(SimTime::from_millis(3)).is_none());
        ctx.advance(SimTime::from_millis(1));
        assert!(ctx.recv_timeout(SimTime::from_millis(2)).is_none());
    });
    sim.spawn("worker", |ctx| ctx.advance(SimTime::from_millis(4)));
    let report = sim.run().unwrap();
    let dag = CausalDag::from_report(&report).unwrap();
    assert_eq!(
        replay(&dag, &[]).unwrap().makespan_ns,
        report.virtual_time.as_nanos()
    );
}

#[test]
fn global_compute_speedup_shrinks_a_compute_bound_run() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("p", |ctx| ctx.advance(SimTime::from_millis(8)));
    let report = sim.run().unwrap();
    let dag = CausalDag::from_report(&report).unwrap();
    let edits = parse_spec(&dag, "compute=0.5").unwrap();
    // A pure-compute run halves exactly.
    assert_eq!(
        replay(&dag, &edits).unwrap().makespan_ns,
        report.virtual_time.as_nanos() / 2
    );
}

#[test]
fn zeroing_queue_recovers_the_incast_surplus() {
    // Six senders converge on one sink: the in-NIC serializes them, so the
    // recorded makespan carries queueing the counterfactual can remove.
    let mut sim = SimBuilder::new().network(quiet_net()).trace(true).build();
    let n = 6usize;
    sim.spawn("sink", move |ctx| {
        for _ in 0..n {
            let _ = ctx.recv();
        }
    });
    for i in 0..n {
        sim.spawn(&format!("tx{i}"), |ctx| {
            ctx.send(ProcId(0), 0, (), 500_000);
        });
    }
    let report = sim.run().unwrap();
    let dag = CausalDag::from_report(&report).unwrap();
    let base = replay(&dag, &[]).unwrap().makespan_ns;
    assert_eq!(base, report.virtual_time.as_nanos());
    let noq = replay(&dag, &parse_spec(&dag, "queue=0").unwrap())
        .unwrap()
        .makespan_ns;
    assert!(
        noq < base,
        "removing queueing must shrink an incast-bound run ({noq} vs {base})"
    );
    // Zeroing queue into the sink specifically achieves the same thing here
    // (the sink is the only congested destination).
    let local = replay(&dag, &parse_spec(&dag, "queue@dst:sink=0").unwrap())
        .unwrap()
        .makespan_ns;
    assert_eq!(local, noq);
}

#[test]
fn speedups_are_absorbed_by_off_path_slack() {
    // client0 does 1 ms of work; client1 does 5 ms. Speeding up client0
    // cannot move the makespan; speeding up client1 must.
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("short", |ctx| ctx.advance(SimTime::from_millis(1)));
    sim.spawn("long", |ctx| ctx.advance(SimTime::from_millis(5)));
    let report = sim.run().unwrap();
    let dag = CausalDag::from_report(&report).unwrap();
    let base = report.virtual_time.as_nanos();
    let r = replay(&dag, &parse_spec(&dag, "compute@proc:short=0.5").unwrap()).unwrap();
    assert_eq!(r.makespan_ns, base, "off-path speedup must be absorbed");
    let r = replay(&dag, &parse_spec(&dag, "compute@proc:long=0.5").unwrap()).unwrap();
    assert!(r.makespan_ns < base, "on-path speedup must pay off");
}

#[test]
fn battery_report_is_ranked_and_byte_identical_across_same_seed_runs() {
    let mk = || {
        let report = rpc_workload(11);
        let dag = CausalDag::from_report(&report).unwrap();
        let specs = standard_battery(&dag);
        run_battery(&dag, &[], &specs).unwrap()
    };
    let w1 = mk();
    let w2 = mk();
    assert!(
        w1.experiments.len() >= 5,
        "battery too small: {}",
        w1.experiments.len()
    );
    for w in w1.experiments.windows(2) {
        assert!(w[0].delta_ns >= w[1].delta_ns, "experiments not ranked");
    }
    assert_eq!(w1.to_json(), w2.to_json());
    assert_eq!(w1.render(), w2.render());
}
