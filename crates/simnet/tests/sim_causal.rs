//! Tests for `simnet::causal` critical-path analysis and the Perfetto
//! exporter.

use ps2_simnet::{
    export_trace, CausalAnalysis, CausalError, NetConfig, PathCategory, ProcId, SimBuilder,
    SimReport, SimTime,
};

fn quiet_net() -> NetConfig {
    NetConfig {
        bandwidth_bps: 1e9,
        latency: SimTime::from_micros(100),
        per_msg_overhead: SimTime::ZERO,
        loopback: SimTime::from_micros(1),
    }
}

/// The analysis must partition [0, makespan] exactly: contiguous segments
/// from zero to the makespan, and category sums equal to it.
fn assert_partitions(report: &SimReport, a: &CausalAnalysis) {
    assert_eq!(a.makespan, report.virtual_time);
    assert_eq!(a.category_total_ns(), report.virtual_time.as_nanos());
    assert!(!a.segments.is_empty());
    assert_eq!(a.segments[0].start, SimTime::ZERO);
    assert_eq!(a.segments.last().unwrap().end, a.makespan);
    for w in a.segments.windows(2) {
        assert_eq!(w[0].end, w[1].start, "segments must be contiguous");
    }
}

#[test]
fn pure_compute_run_is_all_compute() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("p", |ctx| ctx.advance(SimTime::from_millis(7)));
    let report = sim.run().unwrap();
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_partitions(&report, &a);
    assert_eq!(a.compute_ns, SimTime::from_millis(7).as_nanos());
    assert_eq!(a.network_ns + a.queue_ns + a.idle_ns, 0);
}

#[test]
fn blocked_receive_crosses_the_message_edge_to_the_sender() {
    // Sender computes 1 ms, then sends; the receiver blocks from t=0. The
    // path must be: sender compute [0, 1ms] -> uncontended transit
    // (latency + wire) -> receiver compute. No queue, no idle.
    let net = quiet_net();
    let wire = net.wire_time(1000);
    let latency = net.latency;
    let mut sim = SimBuilder::new().network(net).trace(true).build();
    sim.spawn("rx", |ctx| {
        let _ = ctx.recv();
        ctx.advance(SimTime::from_millis(2));
    });
    sim.spawn("tx", |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.send(ProcId(0), 0, (), 1000);
    });
    let report = sim.run().unwrap();
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_partitions(&report, &a);
    assert_eq!(a.idle_ns, 0);
    assert_eq!(a.queue_ns, 0);
    assert_eq!(a.network_ns, (latency + wire).as_nanos());
    assert_eq!(
        a.compute_ns,
        (SimTime::from_millis(1) + SimTime::from_millis(2)).as_nanos()
    );
    // The path visits both processes.
    assert!(a.procs[0].critical_ns > 0);
    assert!(a.procs[1].critical_ns > 0);
    // Categories in forward order: tx compute, transit, rx compute.
    let cats: Vec<PathCategory> = a.segments.iter().map(|s| s.category).collect();
    assert_eq!(
        cats,
        vec![
            PathCategory::Compute,
            PathCategory::Network,
            PathCategory::Compute
        ]
    );
}

#[test]
fn incast_contention_shows_up_as_queue_time() {
    // Many senders fire large messages at one sink at t=0: the sink's
    // in-NIC serializes them, so later arrivals wait far longer than the
    // ideal transit — the surplus must be attributed as queue.
    let mut sim = SimBuilder::new().network(quiet_net()).trace(true).build();
    let n = 6usize;
    sim.spawn("sink", move |ctx| {
        for _ in 0..n {
            let _ = ctx.recv();
        }
    });
    for i in 0..n {
        sim.spawn(&format!("tx{i}"), |ctx| {
            ctx.send(ProcId(0), 0, (), 500_000);
        });
    }
    let report = sim.run().unwrap();
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_partitions(&report, &a);
    assert!(a.queue_ns > 0, "incast must surface as queue time");
    assert!(a.network_ns > 0);
}

#[test]
fn deadline_waits_are_idle_time() {
    let mut sim = SimBuilder::new().network(quiet_net()).trace(true).build();
    sim.spawn("poller", |ctx| {
        // Nothing ever arrives: both waits run to their deadlines.
        assert!(ctx.recv_timeout(SimTime::from_millis(3)).is_none());
        assert!(ctx.recv_timeout(SimTime::from_millis(2)).is_none());
        ctx.advance(SimTime::from_millis(1));
    });
    let report = sim.run().unwrap();
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_partitions(&report, &a);
    assert_eq!(a.idle_ns, SimTime::from_millis(5).as_nanos());
    assert_eq!(a.compute_ns, SimTime::from_millis(1).as_nanos());
}

#[test]
fn op_labels_split_critical_path_compute() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("p", |ctx| {
        ctx.op_label("pull");
        ctx.advance(SimTime::from_millis(2));
        ctx.op_label("push");
        ctx.advance(SimTime::from_millis(3));
        ctx.op_label_clear();
        ctx.advance(SimTime::from_millis(4));
    });
    let report = sim.run().unwrap();
    let a = CausalAnalysis::from_report(&report).unwrap();
    assert_partitions(&report, &a);
    assert_eq!(
        a.compute_by_label.get("pull").copied(),
        Some(SimTime::from_millis(2).as_nanos())
    );
    assert_eq!(
        a.compute_by_label.get("push").copied(),
        Some(SimTime::from_millis(3).as_nanos())
    );
    assert_eq!(
        a.compute_by_label.get("(unlabeled)").copied(),
        Some(SimTime::from_millis(4).as_nanos())
    );
}

#[test]
fn analysis_requires_a_trace() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("p", |ctx| ctx.advance(SimTime::from_millis(1)));
    let report = sim.run().unwrap();
    assert!(matches!(
        CausalAnalysis::from_report(&report),
        Err(CausalError::NoTrace)
    ));
}

fn rpc_workload(seed: u64) -> SimReport {
    let mut sim = SimBuilder::new().seed(seed).trace(true).build();
    let server = sim.spawn_daemon("server", |ctx| loop {
        let env = ctx.recv();
        ctx.op_label("serve");
        ctx.charge_flops(50_000);
        ctx.op_label_clear();
        ctx.reply(&env, (), 256);
    });
    for c in 0..3 {
        sim.spawn(&format!("client{c}"), move |ctx| {
            for i in 0..5u64 {
                ctx.trace_mark_with("iter", i);
                let _ = ctx.call(server, 1, (), 4096);
                ctx.charge_flops(20_000 * (c + 1) as u64);
            }
        });
    }
    sim.run().unwrap()
}

#[test]
fn analysis_and_export_are_byte_identical_across_same_seed_runs() {
    let r1 = rpc_workload(11);
    let r2 = rpc_workload(11);
    let a1 = CausalAnalysis::from_report(&r1).unwrap();
    let a2 = CausalAnalysis::from_report(&r2).unwrap();
    assert_partitions(&r1, &a1);
    assert_eq!(a1.render(), a2.render());
    assert_eq!(export_trace(&r1, Some(&a1)), export_trace(&r2, Some(&a2)));
}

#[test]
fn different_seeds_still_partition_exactly() {
    for seed in [1u64, 2, 3, 4] {
        let r = rpc_workload(seed);
        let a = CausalAnalysis::from_report(&r).unwrap();
        assert_partitions(&r, &a);
    }
}

#[test]
fn perfetto_export_contains_tracks_flows_and_analysis() {
    let r = rpc_workload(7);
    let a = CausalAnalysis::from_report(&r).unwrap();
    let json = export_trace(&r, Some(&a));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("\"name\":\"server\""));
    assert!(json.contains("\"name\":\"critical-path\""));
    // Flow events pair sends and receives.
    assert!(json.contains("\"ph\":\"s\""));
    assert!(json.contains("\"ph\":\"f\""));
    // Marks carry their payloads.
    assert!(json.contains("\"name\":\"iter\""));
    assert!(json.contains("\"payload\":4"));
    // Labeled compute slices.
    assert!(json.contains("\"name\":\"serve\""));
    // The embedded analysis section round-trips the makespan.
    assert!(json.contains(&format!("\"makespan_ns\": {}", r.virtual_time.as_nanos())));
}
