//! Edge-case tests for the simulator runtime.

use ps2_simnet::{ProcId, SimBuilder, SimTime};

#[test]
fn empty_simulation_completes() {
    let sim = SimBuilder::new().build();
    let report = sim.run().unwrap();
    assert_eq!(report.virtual_time, SimTime::ZERO);
    assert_eq!(report.total_msgs, 0);
}

#[test]
fn only_daemons_means_zero_duration() {
    let mut sim = SimBuilder::new().build();
    sim.spawn_daemon("lonely", |ctx| loop {
        let _ = ctx.recv();
    });
    let report = sim.run().unwrap();
    assert_eq!(report.virtual_time, SimTime::ZERO);
}

#[test]
fn self_send_uses_loopback() {
    let mut sim = SimBuilder::new().build();
    let out = sim.spawn_collect("solo", |ctx| {
        let me = ctx.id();
        ctx.send(me, 1, 42u32, 1_000_000_000); // a GB to itself
        let env = ctx.recv();
        (env.arrival, *env.downcast_ref::<u32>())
    });
    sim.run().unwrap();
    let (arrival, v) = out.take();
    assert_eq!(v, 42);
    // Loopback ignores NIC bandwidth entirely.
    assert!(arrival < SimTime::from_millis(1), "{arrival:?}");
}

#[test]
fn zero_byte_messages_cost_only_overheads() {
    let mut sim = SimBuilder::new().build();
    let rx = sim.spawn_collect("rx", |ctx| ctx.recv().arrival);
    sim.spawn("tx", |ctx| ctx.send(ProcId(0), 0, (), 0));
    sim.run().unwrap();
    let arrival = rx.take();
    assert!(arrival > SimTime::ZERO);
    assert!(arrival < SimTime::from_millis(1));
}

#[test]
fn messages_to_finished_processes_are_dropped() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("short", |ctx| {
        ctx.advance(SimTime::from_micros(1));
    });
    sim.spawn("late", |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.send(ProcId(0), 0, (), 64);
        ctx.advance(SimTime::from_millis(1));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.dropped_msgs, 1);
}

#[test]
fn many_processes_scale() {
    let n = 200usize;
    let mut sim = SimBuilder::new().build();
    let sink = sim.spawn_collect("sink", move |ctx| {
        let mut total = 0u64;
        for _ in 0..n {
            total += *ctx.recv().downcast_ref::<u64>();
        }
        total
    });
    for i in 0..n {
        sim.spawn(&format!("p{i}"), move |ctx| {
            ctx.send(ProcId(0), 0, i as u64, 8);
        });
    }
    let report = sim.run().unwrap();
    assert_eq!(sink.take(), (n as u64 - 1) * n as u64 / 2);
    assert_eq!(report.total_msgs, n as u64);
}

#[test]
fn nested_rpc_chains_work() {
    // client -> middle -> backend and back.
    let mut sim = SimBuilder::new().build();
    let backend = sim.spawn_daemon("backend", |ctx| loop {
        let env = ctx.recv();
        let x = *env.downcast_ref::<u64>();
        ctx.reply(&env, x * 10, 8);
    });
    let middle = sim.spawn_daemon("middle", move |ctx| loop {
        let env = ctx.recv();
        let x = *env.downcast_ref::<u64>();
        let y: u64 = ctx.call(backend, 0, x + 1, 8).downcast();
        ctx.reply(&env, y, 8);
    });
    let out = sim.spawn_collect("client", move |ctx| {
        let r: u64 = ctx.call(middle, 0, 4u64, 8).downcast();
        r
    });
    sim.run().unwrap();
    assert_eq!(out.take(), 50);
}

#[test]
fn kill_then_respawn_with_same_name_is_fine() {
    let mut sim = SimBuilder::new().build();
    let out = sim.spawn_collect("boss", |ctx| {
        let w1 = ctx.spawn_daemon("worker", |c| loop {
            let env = c.recv();
            c.reply(&env, 1u32, 4);
        });
        let a: u32 = ctx.call(w1, 0, (), 4).downcast();
        ctx.kill(w1);
        let w2 = ctx.spawn_daemon("worker", |c| loop {
            let env = c.recv();
            c.reply(&env, 2u32, 4);
        });
        let b: u32 = ctx.call(w2, 0, (), 4).downcast();
        a + b
    });
    sim.run().unwrap();
    assert_eq!(out.take(), 3);
}

#[test]
fn per_process_rngs_differ_but_are_reproducible() {
    use rand::Rng;
    let draws = |seed: u64| {
        let mut sim = SimBuilder::new().seed(seed).build();
        let a = sim.spawn_collect("a", |ctx| ctx.rng().gen::<u64>());
        let b = sim.spawn_collect("b", |ctx| ctx.rng().gen::<u64>());
        sim.run().unwrap();
        (a.take(), b.take())
    };
    let (a1, b1) = draws(5);
    let (a2, b2) = draws(5);
    assert_eq!((a1, b1), (a2, b2), "same seed, same draws");
    assert_ne!(a1, b1, "processes get distinct streams");
    let (a3, _) = draws(6);
    assert_ne!(a1, a3, "different seed, different draws");
}

#[test]
fn virtual_time_is_far_ahead_of_wall_time_for_big_transfers() {
    // Moving a (virtual) 10 GB costs 8 s of cluster time but almost no
    // wall time — the point of simulating.
    let mut sim = SimBuilder::new().build();
    let rx = sim.spawn_collect("rx", |ctx| ctx.recv().arrival);
    sim.spawn("tx", |ctx| ctx.send(ProcId(0), 0, (), 10_000_000_000));
    let report = sim.run().unwrap();
    assert!(rx.take() > SimTime::from_secs_f64(7.9));
    assert!(report.wall_time.as_millis() < 1000);
}
