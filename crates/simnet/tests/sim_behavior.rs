//! Behavioural tests for the discrete-event runtime: determinism, NIC
//! serialization, RPC, deadlines, failures.

use ps2_simnet::{NetConfig, ProcId, SimBuilder, SimReport, SimTime};

fn net(bw_gbps: f64, latency_us: u64) -> NetConfig {
    NetConfig {
        bandwidth_bps: bw_gbps * 1e9,
        latency: SimTime::from_micros(latency_us),
        per_msg_overhead: SimTime::ZERO,
        loopback: SimTime::from_micros(1),
    }
}

#[test]
fn single_process_advances_clock() {
    let mut sim = SimBuilder::new().build();
    let out = sim.spawn_collect("solo", |ctx| {
        ctx.advance(SimTime::from_millis(5));
        ctx.now()
    });
    let report = sim.run().unwrap();
    assert_eq!(out.take(), SimTime::from_millis(5));
    assert_eq!(report.virtual_time, SimTime::from_millis(5));
}

#[test]
fn message_transfer_time_matches_model() {
    // 8 MB over 8 Gbps = 8ms wire; latency 1 ms; no overheads.
    let mut sim = SimBuilder::new().network(net(8.0, 1000)).build();
    let receiver = sim.spawn_collect("rx", |ctx| {
        let env = ctx.recv();
        env.arrival
    });
    let _sender = sim.spawn("tx", move |ctx| {
        ctx.send(receiver_id(), 0, (), 8_000_000);
    });
    // The receiver id is the first spawned proc: ProcId(0).
    fn receiver_id() -> ProcId {
        ProcId(0)
    }
    let _ = receiver;
    let report = sim.run().unwrap();
    // arrival = 0 + latency(1ms) + wire(8ms) = 9ms
    let rx = report.proc("rx").unwrap();
    assert_eq!(rx.finished_at, SimTime::from_millis(9));
}

#[test]
fn incast_serializes_on_receiver_nic() {
    // W senders each push B bytes to one sink: the sink's in-NIC serializes,
    // so completion ~= W * wire(B). This is the Spark-driver bottleneck.
    let w = 8u64;
    let bytes = 10_000_000u64; // 10 MB, wire = 10ms at 8 Gbps
    let mut sim = SimBuilder::new().network(net(8.0, 100)).build();
    let sink = sim.spawn_collect("sink", move |ctx| {
        let mut last = SimTime::ZERO;
        for _ in 0..w {
            let env = ctx.recv();
            last = last.max(env.arrival);
        }
        last
    });
    let sink_id = ProcId(0);
    for i in 0..w {
        sim.spawn(&format!("w{i}"), move |ctx| {
            ctx.send(sink_id, 0, (), bytes);
        });
    }
    let report = sim.run().unwrap();
    let last = sink.take();
    let wire_each = SimTime::from_millis(10);
    // All senders start at t=0; transfers serialize at the sink.
    let expected_min = SimTime(wire_each.as_nanos() * w);
    assert!(
        last >= expected_min,
        "incast did not serialize: {last:?} < {expected_min:?}"
    );
    assert!(last.as_nanos() < expected_min.as_nanos() + 10_000_000);
    let _ = report;
}

#[test]
fn fanout_from_one_sender_serializes_on_sender_nic() {
    // Broadcast from one node serializes on its out-NIC — the MLlib model
    // broadcast cost.
    let w = 8u64;
    let bytes = 10_000_000u64;
    let mut sim = SimBuilder::new().network(net(8.0, 100)).build();
    let mut arrivals = Vec::new();
    for i in 0..w {
        let slot = sim.spawn_collect(&format!("rx{i}"), |ctx| ctx.recv().arrival);
        arrivals.push(slot);
    }
    sim.spawn("bcast", move |ctx| {
        for i in 0..w {
            ctx.send(ProcId(i as usize), 0, (), bytes);
        }
    });
    sim.run().unwrap();
    let last = arrivals.iter().map(|s| s.take()).max().unwrap();
    assert!(last >= SimTime::from_millis(10 * w));
}

#[test]
fn rpc_round_trip_and_selective_receive() {
    let mut sim = SimBuilder::new().build();
    let mut sb = SimBuilder::new(); // keep builder pattern exercised
    let _ = &mut sb;
    let server = sim.spawn_daemon("server", |ctx| loop {
        let env = ctx.recv();
        let x: u64 = *env.downcast_ref::<u64>();
        ctx.reply(&env, x * 2, 8);
    });
    let out = sim.spawn_collect("client", move |ctx| {
        // Interleave: a stray one-way message must not satisfy the call.
        let me = ctx.id();
        ctx.send(me, 99, 123u64, 8); // self-send queued
        let doubled: u64 = ctx.call(server, 1, 21u64, 8).downcast();
        let stray = ctx.recv();
        (doubled, stray.tag)
    });
    sim.run().unwrap();
    assert_eq!(out.take(), (42, 99));
}

#[test]
fn call_many_gathers_in_request_order() {
    let n = 5;
    let mut sim = SimBuilder::new().build();
    let mut servers = Vec::new();
    for i in 0..n {
        let id = sim.spawn_daemon(&format!("s{i}"), move |ctx| loop {
            let env = ctx.recv();
            ctx.reply(&env, i as u64, 8);
        });
        servers.push(id);
    }
    let out = sim.spawn_collect("client", move |ctx| {
        let reqs = servers
            .iter()
            .rev() // reversed dispatch order
            .map(|&s| (s, 0u32, Box::new(()) as Box<dyn std::any::Any + Send>, 8u64))
            .collect();
        ctx.call_many(reqs)
            .into_iter()
            .map(|env| *env.downcast_ref::<u64>())
            .collect::<Vec<_>>()
    });
    sim.run().unwrap();
    assert_eq!(out.take(), vec![4, 3, 2, 1, 0]);
}

#[test]
fn recv_deadline_times_out() {
    let mut sim = SimBuilder::new().build();
    let out = sim.spawn_collect("waiter", |ctx| {
        let got = ctx.recv_timeout(SimTime::from_millis(50));
        (got.is_none(), ctx.now())
    });
    sim.run().unwrap();
    let (timed_out, now) = out.take();
    assert!(timed_out);
    assert_eq!(now, SimTime::from_millis(50));
}

#[test]
fn recv_deadline_prefers_earlier_mail() {
    let mut sim = SimBuilder::new().network(net(10.0, 10)).build();
    let waiter = sim.spawn_collect("waiter", |ctx| {
        let got = ctx.recv_timeout(SimTime::from_millis(500));
        got.map(|e| e.tag)
    });
    let waiter_id = ProcId(0);
    sim.spawn("sender", move |ctx| {
        ctx.advance(SimTime::from_millis(5));
        ctx.send(waiter_id, 7, (), 16);
    });
    sim.run().unwrap();
    assert_eq!(waiter.take(), Some(7));
}

#[test]
fn deadlock_is_reported() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("stuck", |ctx| {
        let _ = ctx.recv(); // nobody ever sends
    });
    let err = sim.run().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "unexpected error: {msg}");
    assert!(msg.contains("stuck"), "missing process name: {msg}");
}

#[test]
fn real_panic_is_reported_with_process_name() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("bad", |_ctx| panic!("kaboom"));
    let err = sim.run().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("bad") && msg.contains("kaboom"), "{msg}");
}

#[test]
fn killed_process_unwinds_and_messages_are_dropped() {
    let mut sim = SimBuilder::new().build();
    let victim = sim.spawn_daemon("victim", |ctx| loop {
        let env = ctx.recv();
        ctx.reply(&env, (), 0);
    });
    let out = sim.spawn_collect("killer", move |ctx| {
        // One successful round trip first.
        let _ = ctx.call(victim, 0, (), 8);
        ctx.kill(victim);
        ctx.advance(SimTime::from_millis(1));
        let alive = ctx.is_alive(victim);
        // Sends to the dead victim are dropped, not delivered.
        ctx.send(victim, 0, (), 8);
        alive
    });
    let report = sim.run().unwrap();
    assert!(!out.take());
    assert!(report.dropped_msgs >= 1);
}

#[test]
fn daemons_do_not_keep_simulation_alive() {
    let mut sim = SimBuilder::new().build();
    sim.spawn_daemon("forever", |ctx| loop {
        let _ = ctx.recv();
    });
    sim.spawn("quick", |ctx| {
        ctx.advance(SimTime::from_micros(1));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.virtual_time, SimTime::from_micros(1));
}

#[test]
fn dynamic_spawn_inherits_clock() {
    let mut sim = SimBuilder::new().build();
    let out = sim.spawn_collect("parent", |ctx| {
        ctx.advance(SimTime::from_millis(3));
        let me = ctx.id();
        ctx.spawn("child", move |cctx| {
            let start = cctx.now();
            cctx.send(me, 0, start, 8);
        });
        let env = ctx.recv();
        *env.downcast_ref::<SimTime>()
    });
    sim.run().unwrap();
    assert_eq!(out.take(), SimTime::from_millis(3));
}

fn run_pipeline(seed: u64) -> SimReport {
    let mut sim = SimBuilder::new().seed(seed).network(net(10.0, 50)).build();
    let n_workers = 6usize;
    let sink = sim.spawn_daemon("agg", move |ctx| {
        let mut total = 0u64;
        loop {
            let env = ctx.recv();
            total += *env.downcast_ref::<u64>();
            ctx.reply(&env, total, 8);
        }
    });
    for i in 0..n_workers {
        sim.spawn(&format!("w{i}"), move |ctx| {
            for round in 0..10u64 {
                let work = (ctx.rng_sample() % 1000) + round;
                ctx.charge_flops(work * 1000);
                let _ = ctx.call(sink, 0, work, 256);
            }
        });
    }
    sim.run().unwrap()
}

// small helper via extension trait to pull a deterministic sample
trait RngSample {
    fn rng_sample(&mut self) -> u64;
}
impl RngSample for ps2_simnet::SimCtx {
    fn rng_sample(&mut self) -> u64 {
        use rand::Rng;
        self.rng().gen()
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = run_pipeline(42);
    let b = run_pipeline(42);
    assert_eq!(a.virtual_time, b.virtual_time);
    assert_eq!(a.total_msgs, b.total_msgs);
    assert_eq!(a.total_bytes, b.total_bytes);
    for (pa, pb) in a.procs.iter().zip(&b.procs) {
        assert_eq!(pa.finished_at, pb.finished_at, "proc {}", pa.name);
        assert_eq!(pa.bytes_sent, pb.bytes_sent, "proc {}", pa.name);
    }
    let c = run_pipeline(43);
    assert_ne!(
        a.virtual_time, c.virtual_time,
        "different seeds should change the workload"
    );
}

#[test]
fn report_counts_messages_and_bytes() {
    let mut sim = SimBuilder::new().build();
    let rx = sim.spawn_collect("rx", |ctx| {
        let e1 = ctx.recv();
        let e2 = ctx.recv();
        e1.bytes + e2.bytes
    });
    sim.spawn("tx", |ctx| {
        ctx.send(ProcId(0), 0, (), 100);
        ctx.send(ProcId(0), 0, (), 200);
    });
    let report = sim.run().unwrap();
    assert_eq!(rx.take(), 300);
    assert_eq!(report.total_msgs, 2);
    assert_eq!(report.total_bytes, 300);
    let tx = report.proc("tx").unwrap();
    assert_eq!(tx.msgs_sent, 2);
    assert_eq!(tx.bytes_sent, 300);
}
