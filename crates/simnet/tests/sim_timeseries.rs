//! The windowed-telemetry invariant: scraping must not perturb the
//! simulation. A scraped run's `SimReport` — timing, trace, metrics, per-proc
//! stats — is byte-identical to an unscraped same-seed run's.

use ps2_simnet::{SimBuilder, SimReport, SimTime};

/// A small but busy workload: a server daemon answering calls, four clients
/// computing and calling in a loop, metrics of all three kinds recorded.
fn workload(scrape: Option<SimTime>) -> SimReport {
    let mut builder = SimBuilder::new().seed(11).trace(true);
    if let Some(window) = scrape {
        builder = builder.timeseries(window);
    }
    let mut sim = builder.build();
    let server = sim.spawn_daemon("server", |ctx| loop {
        let env = ctx.recv();
        ctx.metric_add("srv.reqs", 1);
        ctx.advance(SimTime::from_micros(50));
        ctx.reply(&env, 1u64, 64);
    });
    for c in 0..4 {
        sim.spawn(&format!("client-{c}"), move |ctx| {
            for i in 0..20i64 {
                let t0 = ctx.now();
                ctx.advance(SimTime::from_micros(100 + 37 * c));
                let _ = ctx.call(server, 1, i as u64, 256);
                ctx.metric_add("cli.calls", 1);
                ctx.metric_gauge_set("cli.last_iter", i);
                ctx.metric_observe("cli.rtt", ctx.now() - t0);
            }
        });
    }
    sim.run().unwrap()
}

#[test]
fn scraped_run_is_byte_identical_to_unscraped_run() {
    let plain = workload(None);
    let scraped = workload(Some(SimTime::from_millis(1)));

    assert!(plain.timeseries.is_none());
    assert!(scraped.timeseries.is_some());

    // Every observable of the run is unchanged by scraping.
    assert_eq!(plain.virtual_time, scraped.virtual_time);
    assert_eq!(plain.total_msgs, scraped.total_msgs);
    assert_eq!(plain.total_bytes, scraped.total_bytes);
    assert_eq!(plain.dropped_msgs, scraped.dropped_msgs);
    assert_eq!(plain.procs, scraped.procs);
    assert_eq!(plain.trace, scraped.trace);
    assert_eq!(plain.metrics, scraped.metrics);
    assert_eq!(plain.labels, scraped.labels);
}

#[test]
fn scraping_itself_is_deterministic() {
    let a = workload(Some(SimTime::from_millis(1)));
    let b = workload(Some(SimTime::from_millis(1)));
    assert_eq!(a.timeseries, b.timeseries);
    assert_eq!(
        a.timeseries.unwrap().to_json(),
        b.timeseries.unwrap().to_json()
    );
}

#[test]
fn window_deltas_sum_to_final_counters() {
    let report = workload(Some(SimTime::from_millis(1)));
    let ts = report.timeseries.as_ref().unwrap();
    assert!(ts.windows.len() > 1, "workload must span several windows");
    assert_eq!(ts.dropped_windows, 0);

    for name in ["cli.calls", "srv.reqs", "net.wire_ns"] {
        let windowed: u64 = ts.windows.iter().map(|w| w.counter(name)).sum();
        assert_eq!(windowed, report.metrics.counter(name), "{name}");
    }
    let rtts: u64 = ts
        .windows
        .iter()
        .filter_map(|w| w.hists.get("cli.rtt"))
        .map(|h| h.count)
        .sum();
    assert_eq!(rtts, report.metrics.hist("cli.rtt").unwrap().count());

    // Per-proc busy deltas add up the same way.
    for (i, p) in report.procs.iter().enumerate() {
        let windowed: u64 = ts
            .windows
            .iter()
            .filter_map(|w| w.procs.get(i))
            .map(|s| s.busy_ns)
            .sum();
        assert_eq!(windowed, p.busy.as_nanos(), "busy of proc {i} ({})", p.name);
    }

    // Complete windows end on boundaries; the tail ends at the run's end.
    for w in &ts.windows[..ts.windows.len() - 1] {
        assert_eq!(w.end_ns, (w.index + 1) * ts.window_ns);
    }
    let last = ts.windows.last().unwrap();
    assert!(last.end_ns <= report.virtual_time.as_nanos() + ts.window_ns);

    // The final gauge sample matches the registry.
    assert_eq!(
        last.gauge("cli.last_iter"),
        report.metrics.gauge("cli.last_iter")
    );
}

#[test]
fn ring_capacity_bounds_memory_and_counts_evictions() {
    let mut sim = SimBuilder::new()
        .seed(3)
        .timeseries_capacity(SimTime::from_micros(10), 8)
        .build();
    sim.spawn("lone", |ctx| {
        for _ in 0..50 {
            ctx.advance(SimTime::from_micros(10));
            ctx.metric_add("ticks", 1);
        }
    });
    let report = sim.run().unwrap();
    let ts = report.timeseries.unwrap();
    assert!(ts.windows.len() <= 8);
    assert!(ts.dropped_windows > 0);
    // Retained windows are contiguous and end at the newest.
    let first = ts.windows.first().unwrap().index;
    for (k, w) in ts.windows.iter().enumerate() {
        assert_eq!(w.index, first + k as u64);
    }
    assert_eq!(first, ts.dropped_windows);
}

#[test]
fn marks_on_dead_runs_do_not_panic_the_scraper() {
    // A killed proc mid-run: scraping must survive mailbox/process churn.
    let mut sim = SimBuilder::new()
        .seed(5)
        .timeseries(SimTime::from_micros(100))
        .build();
    let victim = sim.spawn_daemon("victim", |ctx| loop {
        let _ = ctx.recv();
    });
    sim.spawn("killer", move |ctx| {
        for _ in 0..5 {
            ctx.send(victim, 1, 0u64, 128);
            ctx.advance(SimTime::from_micros(120));
        }
        ctx.kill(victim);
        ctx.send(victim, 1, 0u64, 128);
        ctx.advance(SimTime::from_micros(500));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.dropped_msgs, 1);
    assert!(report.timeseries.unwrap().windows.len() >= 5);
}
