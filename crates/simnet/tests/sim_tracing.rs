//! Tests for the optional event trace.

use ps2_simnet::{ProcId, SimBuilder, SimTime, TraceEvent};

#[test]
fn trace_records_sends_recvs_compute_and_finishes() {
    let mut sim = SimBuilder::new().trace(true).build();
    let rx = sim.spawn_collect("rx", |ctx| {
        let env = ctx.recv();
        ctx.advance(SimTime::from_millis(2));
        *env.downcast_ref::<u64>()
    });
    sim.spawn("tx", |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.send(ProcId(0), 7, 99u64, 64);
    });
    let report = sim.run().unwrap();
    assert_eq!(rx.take(), 99);

    let sends: Vec<_> = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Send { .. }))
        .collect();
    assert_eq!(sends.len(), 1);
    if let TraceEvent::Send {
        src,
        dst,
        tag,
        bytes,
        ..
    } = sends[0]
    {
        assert_eq!((*src, *dst, *tag, *bytes), (ProcId(1), ProcId(0), 7, 64));
    }
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Recv {
            proc: ProcId(0),
            tag: 7,
            ..
        }
    )));
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Compute {
            proc: ProcId(0),
            ..
        }
    )));
    let finishes = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Finish { .. }))
        .count();
    assert_eq!(finishes, 2);

    // Events come back in virtual-time order.
    let times: Vec<u64> = report.trace.iter().map(|e| e.at().as_nanos()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn tracing_is_off_by_default_and_costs_nothing() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("p", |ctx| {
        let me = ctx.id();
        ctx.send(me, 0, (), 8);
        let _ = ctx.recv();
        ctx.advance(SimTime::from_millis(1));
    });
    let report = sim.run().unwrap();
    assert!(report.trace.is_empty());
}

#[test]
fn traced_and_untraced_runs_have_identical_timing() {
    let run = |trace: bool| {
        let mut sim = SimBuilder::new().seed(9).trace(trace).build();
        let server = sim.spawn_daemon("s", |ctx| loop {
            let env = ctx.recv();
            ctx.reply(&env, (), 8);
        });
        sim.spawn("c", move |ctx| {
            for _ in 0..20 {
                let _ = ctx.call(server, 0, (), 128);
                ctx.advance(SimTime::from_micros(10));
            }
        });
        sim.run().unwrap().virtual_time
    };
    assert_eq!(run(false), run(true));
}
