//! Tests for the optional event trace.

use ps2_simnet::{ProcId, SimBuilder, SimTime, TraceEvent};

#[test]
fn trace_records_sends_recvs_compute_and_finishes() {
    let mut sim = SimBuilder::new().trace(true).build();
    let rx = sim.spawn_collect("rx", |ctx| {
        let env = ctx.recv();
        ctx.advance(SimTime::from_millis(2));
        *env.downcast_ref::<u64>()
    });
    sim.spawn("tx", |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.send(ProcId(0), 7, 99u64, 64);
    });
    let report = sim.run().unwrap();
    assert_eq!(rx.take(), 99);

    let sends: Vec<_> = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Send { .. }))
        .collect();
    assert_eq!(sends.len(), 1);
    if let TraceEvent::Send {
        src,
        dst,
        tag,
        bytes,
        ..
    } = sends[0]
    {
        assert_eq!((*src, *dst, *tag, *bytes), (ProcId(1), ProcId(0), 7, 64));
    }
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Recv {
            proc: ProcId(0),
            tag: 7,
            ..
        }
    )));
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Compute {
            proc: ProcId(0),
            ..
        }
    )));
    let finishes = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Finish { .. }))
        .count();
    assert_eq!(finishes, 2);

    // Events come back in virtual-time order.
    let times: Vec<u64> = report.trace.iter().map(|e| e.at().as_nanos()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn dropped_message_is_attributed_to_sender() {
    let mut sim = SimBuilder::new().trace(true).build();
    let victim = sim.spawn_daemon("victim", |ctx| loop {
        let _ = ctx.recv();
    });
    sim.spawn("killer-sender", move |ctx| {
        ctx.send(victim, 3, 1u64, 32);
        ctx.advance(SimTime::from_millis(1));
        ctx.kill(victim);
        ctx.send(victim, 4, 2u64, 64);
    });
    let report = sim.run().unwrap();

    // Global count and per-proc attribution: the sender (not the dead
    // destination) owns the drop.
    assert_eq!(report.dropped_msgs, 1);
    assert_eq!(report.proc("killer-sender").unwrap().msgs_dropped, 1);
    assert_eq!(report.proc("victim").unwrap().msgs_dropped, 0);

    let drops: Vec<_> = report
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Drop { .. }))
        .collect();
    assert_eq!(drops.len(), 1);
    if let TraceEvent::Drop {
        src,
        dst,
        tag,
        bytes,
        ..
    } = drops[0]
    {
        assert_eq!((*src, *dst, *tag, *bytes), (ProcId(1), victim, 4, 64));
    }
}

#[test]
fn trace_marks_record_labels_at_current_clock() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("p", |ctx| {
        ctx.advance(SimTime::from_millis(5));
        ctx.trace_mark("job.submit");
        ctx.trace_mark_with("task.start", 17);
    });
    let report = sim.run().unwrap();
    let submit = report.label_id("job.submit").expect("label interned");
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Mark {
            at,
            label,
            payload: None,
            ..
        } if *at == SimTime::from_millis(5) && *label == submit
    )));
    let start = report.label_id("task.start").expect("label interned");
    assert!(report.trace.iter().any(|e| matches!(
        e,
        TraceEvent::Mark {
            label,
            payload: Some(17),
            ..
        } if *label == start
    )));
    assert_eq!(report.label_name(submit), "job.submit");
}

#[test]
fn send_and_recv_share_a_run_unique_seq() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("rx", |ctx| {
        let _ = ctx.recv();
        let _ = ctx.recv();
    });
    sim.spawn("tx", move |ctx| {
        ctx.send(ProcId(0), 1, (), 32);
        ctx.send(ProcId(0), 2, (), 32);
    });
    let report = sim.run().unwrap();
    let send_seqs: Vec<u64> = report
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Send { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    let recv_seqs: Vec<u64> = report
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Recv { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    assert_eq!(send_seqs.len(), 2);
    assert_ne!(send_seqs[0], send_seqs[1]);
    let mut sorted_sends = send_seqs.clone();
    sorted_sends.sort_unstable();
    let mut sorted_recvs = recv_seqs.clone();
    sorted_recvs.sort_unstable();
    assert_eq!(sorted_sends, sorted_recvs);
}

#[test]
fn op_labels_tag_compute_events() {
    let mut sim = SimBuilder::new().trace(true).build();
    sim.spawn("p", |ctx| {
        ctx.advance(SimTime::from_millis(1));
        ctx.op_label("pull");
        ctx.advance(SimTime::from_millis(2));
        ctx.op_label_clear();
        ctx.advance(SimTime::from_millis(3));
    });
    let report = sim.run().unwrap();
    let pull = report.label_id("pull").expect("label interned");
    let labels: Vec<Option<ps2_simnet::LabelId>> = report
        .trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Compute { label, .. } => Some(*label),
            _ => None,
        })
        .collect();
    assert_eq!(labels, vec![None, Some(pull), None]);
}

#[test]
fn metrics_registry_is_captured_in_report() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("p", |ctx| {
        ctx.metric_add("test.counter", 2);
        ctx.metric_add("test.counter", 3);
        ctx.metric_gauge_set("test.gauge", -7);
        ctx.advance(SimTime::from_millis(1));
        ctx.metric_observe("test.hist", SimTime::from_micros(50));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.metrics.counter("test.counter"), 5);
    assert_eq!(report.metrics.gauge("test.gauge"), Some(-7));
    let h = report.metrics.hist("test.hist").unwrap();
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum_ns(), 50_000);
}

#[test]
fn metric_calls_do_not_perturb_timing() {
    let run = |instrument: bool| {
        let mut sim = SimBuilder::new().seed(5).build();
        let server = sim.spawn_daemon("s", move |ctx| loop {
            let env = ctx.recv();
            if instrument {
                ctx.metric_add("srv.reqs", 1);
            }
            ctx.reply(&env, (), 8);
        });
        sim.spawn("c", move |ctx| {
            for i in 0..20 {
                let t0 = ctx.now();
                let _ = ctx.call(server, 0, (), 128);
                if instrument {
                    ctx.metric_observe("cli.latency", ctx.now() - t0);
                    ctx.metric_add("cli.reqs", 1);
                }
                ctx.advance(SimTime::from_micros(10 + i));
            }
        });
        sim.run().unwrap().virtual_time
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn procs_named_returns_all_matches() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("worker", |ctx| ctx.advance(SimTime::from_millis(1)));
    sim.spawn("worker", |ctx| ctx.advance(SimTime::from_millis(2)));
    sim.spawn("solo", |ctx| ctx.advance(SimTime::from_millis(3)));
    let report = sim.run().unwrap();
    assert_eq!(report.procs_named("worker").len(), 2);
    assert_eq!(report.procs_named("solo").len(), 1);
    assert_eq!(report.procs_named("missing").len(), 0);
    // Unique lookup still works through `proc`.
    assert_eq!(report.proc("solo").unwrap().busy, SimTime::from_millis(3));
}

#[test]
#[should_panic(expected = "not unique")]
#[cfg(debug_assertions)]
fn proc_debug_asserts_name_uniqueness() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("dup", |ctx| ctx.advance(SimTime::from_millis(1)));
    sim.spawn("dup", |ctx| ctx.advance(SimTime::from_millis(2)));
    let report = sim.run().unwrap();
    let _ = report.proc("dup");
}

#[test]
fn tracing_is_off_by_default_and_costs_nothing() {
    let mut sim = SimBuilder::new().build();
    sim.spawn("p", |ctx| {
        let me = ctx.id();
        ctx.send(me, 0, (), 8);
        let _ = ctx.recv();
        ctx.advance(SimTime::from_millis(1));
    });
    let report = sim.run().unwrap();
    assert!(report.trace.is_empty());
}

#[test]
fn traced_and_untraced_runs_have_identical_timing() {
    // Marks, payload marks and op labels only run when tracing is on, so
    // this also pins down that the tracing instrumentation itself (label
    // interning included) never moves a clock.
    let run = |trace: bool| {
        let mut sim = SimBuilder::new().seed(9).trace(trace).build();
        let server = sim.spawn_daemon("s", |ctx| loop {
            let env = ctx.recv();
            ctx.op_label("serve");
            ctx.advance(SimTime::from_micros(3));
            ctx.op_label_clear();
            ctx.reply(&env, (), 8);
        });
        sim.spawn("c", move |ctx| {
            for i in 0..20 {
                ctx.trace_mark_with("iter", i);
                let _ = ctx.call(server, 0, (), 128);
                ctx.advance(SimTime::from_micros(10));
            }
        });
        let report = sim.run().unwrap();
        let stats: Vec<(String, u64, u64)> = report
            .procs
            .iter()
            .map(|p| (p.name.clone(), p.finished_at.as_nanos(), p.busy.as_nanos()))
            .collect();
        (report.virtual_time, stats)
    };
    assert_eq!(run(false), run(true));
}
