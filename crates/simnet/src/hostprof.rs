//! Host-side self-profiler: wall-clock and allocation attribution for the
//! simulator itself.
//!
//! Everything else in this crate measures the *simulated* world in virtual
//! time; this module measures what the simulator costs the *host* — real
//! nanoseconds and real allocations, attributed to a small fixed taxonomy of
//! subsystem scopes (scheduler handoff, codec, fabric, scraping, trace
//! export). It exists to turn ROADMAP's "payload clones and per-send
//! allocations" from guesses into numbers.
//!
//! ## Design constraints
//!
//! - **Always compiled, off by default.** When disabled, [`scope`] is a
//!   single relaxed atomic load returning an inert guard, and the counting
//!   allocator is a relaxed load in front of `System` — cheap enough to leave
//!   in every build.
//! - **Strictly outside the virtual clock.** Nothing here reads or moves
//!   `SimTime`, wakes a process, or consumes a sequence number. Enabling the
//!   profiler must leave the simulated run bit-for-bit identical (a test in
//!   `tests/hostprof_determinism.rs` holds this line).
//! - **Per-OS-thread accumulation.** Each sim proc is an OS thread; guards
//!   record into plain thread-local counters (no atomics, no locks on the
//!   hot path) which merge into a global table when the thread exits or on
//!   an explicit [`flush_thread`].
//! - **Nesting-safe self/children split.** A guard's elapsed time includes
//!   everything beneath it; on drop the child time already attributed to
//!   inner scopes is subtracted, so `self_ns` sums tell the truth. The
//!   dedicated [`Scope::SchedPark`] scope keeps condvar-parked wall time
//!   (when *other* procs run) out of every enclosing scope's self time.
//!
//! ## Allocation counting
//!
//! [`CountingAlloc`] wraps [`System`] as the `#[global_allocator]`
//! (installed in `lib.rs`). When [`set_alloc_counting`] is on it bumps two
//! const-initialized thread-local `Cell<u64>`s — no `Drop`, no lazy
//! allocation, so the hook can never recurse or touch TLS destructors. Scope
//! guards snapshot the cells on entry and attribute the delta (minus the
//! children's share) on drop. Counters saturate rather than wrap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The fixed scope taxonomy. Adding a variant: extend [`Scope::ALL`] and
/// [`Scope::name`] — everything else (tables, JSON, rendering) follows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Ready-process selection + handoff notify in the scheduler.
    SchedDispatch,
    /// Condvar-parked wall time while *other* procs hold the turn.
    SchedPark,
    /// `send_env`: NIC accounting, mailbox insert, trace push.
    SchedSend,
    /// `block_recv`: mailbox scan, consume, re-block loop.
    SchedRecv,
    /// Declared-wire-size computation on the send side (`WireSize` walks).
    CodecEncode,
    /// Payload downcasts on the receive side.
    CodecDecode,
    /// Fabric reliable-RPC pipeline (scatter/gather, dispatcher waits).
    FabricCall,
    /// Metrics registry mutation (counters/gauges/histograms).
    MetricsRecord,
    /// Windowed-telemetry scrape (`ts_roll` window boundaries).
    ScrapeRoll,
    /// End-of-run trace sort and Perfetto/JSON export.
    TraceExport,
    /// Inline stepping of event-driven agents (`Proc` callbacks plus the
    /// per-step event selection and bookkeeping around them).
    SchedStep,
}

pub const SCOPE_COUNT: usize = 11;

impl Scope {
    pub const ALL: [Scope; SCOPE_COUNT] = [
        Scope::SchedDispatch,
        Scope::SchedPark,
        Scope::SchedSend,
        Scope::SchedRecv,
        Scope::CodecEncode,
        Scope::CodecDecode,
        Scope::FabricCall,
        Scope::MetricsRecord,
        Scope::ScrapeRoll,
        Scope::TraceExport,
        Scope::SchedStep,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Scope::SchedDispatch => "sched.dispatch",
            Scope::SchedPark => "sched.park",
            Scope::SchedSend => "sched.send",
            Scope::SchedRecv => "sched.recv",
            Scope::CodecEncode => "codec.encode",
            Scope::CodecDecode => "codec.decode",
            Scope::FabricCall => "fabric.call",
            Scope::MetricsRecord => "metrics.record",
            Scope::ScrapeRoll => "scrape.roll",
            Scope::TraceExport => "trace.export",
            Scope::SchedStep => "sched.step",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

// ---- global switches --------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOC_COUNTING: AtomicBool = AtomicBool::new(false);

/// Turn scope timing on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether scope timing is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn allocation counting on or off (process-wide). Only meaningful with
/// timing enabled — the counters are read by scope guards.
pub fn set_alloc_counting(on: bool) {
    ALLOC_COUNTING.store(on, Ordering::Relaxed);
}

/// Whether the counting allocator hook is currently on.
pub fn alloc_counting() -> bool {
    ALLOC_COUNTING.load(Ordering::Relaxed)
}

/// Configure from `PS2_HOSTPROF`: `1`/`time` → timers, `alloc` → timers +
/// allocation counting, anything else → off. Binaries call this at startup;
/// explicit flags take precedence by calling the setters afterwards.
pub fn init_from_env() {
    match std::env::var("PS2_HOSTPROF").as_deref() {
        Ok("1") | Ok("time") => set_enabled(true),
        Ok("alloc") => {
            set_enabled(true);
            set_alloc_counting(true);
        }
        _ => {}
    }
}

// ---- per-scope accumulators -------------------------------------------------

/// Accumulated cost of one scope: call count, inclusive and exclusive wall
/// nanoseconds, and allocations attributed exclusively to the scope.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ScopeTotals {
    pub calls: u64,
    /// Inclusive wall time (children counted).
    pub total_ns: u64,
    /// Exclusive wall time (children subtracted).
    pub self_ns: u64,
    /// Allocations attributed exclusively to the scope.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl ScopeTotals {
    fn absorb(&mut self, o: &ScopeTotals) {
        self.calls = self.calls.saturating_add(o.calls);
        self.total_ns = self.total_ns.saturating_add(o.total_ns);
        self.self_ns = self.self_ns.saturating_add(o.self_ns);
        self.allocs = self.allocs.saturating_add(o.allocs);
        self.alloc_bytes = self.alloc_bytes.saturating_add(o.alloc_bytes);
    }
}

static GLOBAL: Mutex<[ScopeTotals; SCOPE_COUNT]> = Mutex::new(
    [ScopeTotals {
        calls: 0,
        total_ns: 0,
        self_ns: 0,
        allocs: 0,
        alloc_bytes: 0,
    }; SCOPE_COUNT],
);

fn global_lock() -> std::sync::MutexGuard<'static, [ScopeTotals; SCOPE_COUNT]> {
    // Poisoning is irrelevant: the table is plain counters.
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

// ---- allocation counters ----------------------------------------------------
//
// Const-initialized Cell<u64> thread-locals: no destructor is ever
// registered and no allocation happens on first access, which makes them
// safe to touch from inside the global allocator.

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    /// True while the profiler itself is allocating (growing its frame
    /// stack). Those allocations must not be charged to whatever scope
    /// happens to be open — the instrument may not measure itself.
    static TL_ALLOC_PAUSED: Cell<bool> = const { Cell::new(false) };
}

/// Bump this thread's allocation counters (saturating). Public so the
/// saturation behavior is directly testable; the allocator hook is the real
/// caller.
pub fn record_alloc(count: u64, bytes: u64) {
    // try_with: never panic inside the allocator, even during thread
    // teardown when TLS may be unavailable.
    if TL_ALLOC_PAUSED.try_with(Cell::get).unwrap_or(false) {
        return;
    }
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().saturating_add(count)));
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get().saturating_add(bytes)));
}

/// Run `f` with allocation counting paused on this thread, for
/// profiler-internal bookkeeping that allocates.
fn alloc_paused<R>(f: impl FnOnce() -> R) -> R {
    let prev = TL_ALLOC_PAUSED
        .try_with(|c| c.replace(true))
        .unwrap_or(true);
    let out = f();
    let _ = TL_ALLOC_PAUSED.try_with(|c| c.set(prev));
    out
}

/// This thread's raw (allocs, bytes) counters.
pub fn thread_alloc_counters() -> (u64, u64) {
    (TL_ALLOCS.get(), TL_ALLOC_BYTES.get())
}

/// A `GlobalAlloc` wrapper over [`System`] that counts allocations into
/// thread-local cells when [`set_alloc_counting`] is on. Frees are not
/// counted: the profiler attributes allocation *pressure*, not live bytes.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            record_alloc(1, layout.size() as u64);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            record_alloc(1, layout.size() as u64);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            record_alloc(1, new_size as u64);
        }
        System.realloc(ptr, layout, new_size)
    }
}

// ---- thread-local frame stack ----------------------------------------------

struct Frame {
    scope: usize,
    start: Instant,
    /// Wall ns already attributed to nested scopes (their inclusive time).
    child_ns: u64,
    /// Alloc counters at entry.
    allocs_at_entry: u64,
    bytes_at_entry: u64,
    /// Alloc deltas already attributed to nested scopes.
    child_allocs: u64,
    child_bytes: u64,
}

struct ThreadProf {
    stack: Vec<Frame>,
    totals: [ScopeTotals; SCOPE_COUNT],
}

impl ThreadProf {
    const fn new() -> ThreadProf {
        ThreadProf {
            stack: Vec::new(),
            totals: [ScopeTotals {
                calls: 0,
                total_ns: 0,
                self_ns: 0,
                allocs: 0,
                alloc_bytes: 0,
            }; SCOPE_COUNT],
        }
    }

    fn merge_into_global(&mut self) {
        if self.totals.iter().all(|t| t.calls == 0) {
            return;
        }
        let mut g = global_lock();
        for (dst, src) in g.iter_mut().zip(self.totals.iter()) {
            dst.absorb(src);
        }
        self.totals = [ScopeTotals::default(); SCOPE_COUNT];
    }
}

impl Drop for ThreadProf {
    fn drop(&mut self) {
        // Thread exit: fold whatever this thread accumulated into the
        // global table so short-lived sim-proc threads are not lost.
        self.merge_into_global();
    }
}

thread_local! {
    static PROF: RefCell<ThreadProf> = const { RefCell::new(ThreadProf::new()) };
}

/// RAII scope timer. Obtain via [`scope`]; cost is recorded on drop.
pub struct ScopeGuard {
    active: bool,
}

/// Enter `s`. When the profiler is disabled this is one atomic load and an
/// inert guard.
#[inline]
pub fn scope(s: Scope) -> ScopeGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return ScopeGuard { active: false };
    }
    let (a, b) = thread_alloc_counters();
    // alloc_paused: growing the frame stack must not count against the
    // enclosing scope.
    alloc_paused(|| {
        PROF.with(|p| {
            p.borrow_mut().stack.push(Frame {
                scope: s.idx(),
                start: Instant::now(),
                child_ns: 0,
                allocs_at_entry: a,
                bytes_at_entry: b,
                child_allocs: 0,
                child_bytes: 0,
            });
        });
    });
    ScopeGuard { active: true }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let (a_now, b_now) = thread_alloc_counters();
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            let Some(f) = p.stack.pop() else { return };
            let elapsed = f.start.elapsed().as_nanos() as u64;
            let d_allocs = a_now.saturating_sub(f.allocs_at_entry);
            let d_bytes = b_now.saturating_sub(f.bytes_at_entry);
            let t = &mut p.totals[f.scope];
            t.calls = t.calls.saturating_add(1);
            t.total_ns = t.total_ns.saturating_add(elapsed);
            t.self_ns = t.self_ns.saturating_add(elapsed.saturating_sub(f.child_ns));
            t.allocs = t
                .allocs
                .saturating_add(d_allocs.saturating_sub(f.child_allocs));
            t.alloc_bytes = t
                .alloc_bytes
                .saturating_add(d_bytes.saturating_sub(f.child_bytes));
            if let Some(parent) = p.stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed);
                parent.child_allocs = parent.child_allocs.saturating_add(d_allocs);
                parent.child_bytes = parent.child_bytes.saturating_add(d_bytes);
            }
        });
    }
}

// ---- lifecycle --------------------------------------------------------------

/// Merge this thread's accumulated totals into the global table. Sim-proc
/// threads do this implicitly on exit; long-lived threads (the one calling
/// `SimRuntime::run`, test threads) call it before [`take_profile`].
pub fn flush_thread() {
    PROF.with(|p| p.borrow_mut().merge_into_global());
}

/// Zero the global table and this thread's totals (open frames survive: a
/// guard entered before `reset` records normally on drop). Called at the
/// start of a profiled run so leftovers from earlier runs don't leak in.
pub fn reset() {
    PROF.with(|p| {
        p.borrow_mut().totals = [ScopeTotals::default(); SCOPE_COUNT];
    });
    *global_lock() = [ScopeTotals::default(); SCOPE_COUNT];
}

/// Snapshot of this thread's totals (unmerged), for unit tests.
pub fn thread_totals() -> [ScopeTotals; SCOPE_COUNT] {
    PROF.with(|p| p.borrow().totals)
}

/// Drop this thread's unmerged totals and any open frames, for unit tests.
pub fn reset_thread() {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        p.stack.clear();
        p.totals = [ScopeTotals::default(); SCOPE_COUNT];
    });
}

// ---- profile snapshot -------------------------------------------------------

/// One scope's row in a finished [`HostProfile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScopeStat {
    pub name: &'static str,
    pub calls: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// Host-side cost profile of one run: wall time plus per-scope attribution.
/// Lives in [`crate::SimReport::host`]; contains **host** data only — nothing
/// in here feeds back into the virtual clock.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct HostProfile {
    /// Wall nanoseconds of the profiled region (the whole `run()` for sim
    /// reports).
    pub wall_ns: u64,
    /// Whether the counting allocator was on (alloc columns are meaningful).
    pub alloc_counted: bool,
    /// Scopes with at least one call, sorted by `self_ns` descending (name
    /// as tiebreak).
    pub scopes: Vec<ScopeStat>,
}

impl HostProfile {
    /// Fold another profile into this one (summing scope rows, summing
    /// wall). Used by `ps2-run` to add post-run export cost captured after
    /// the in-run snapshot.
    pub fn merge(&mut self, other: &HostProfile) {
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.alloc_counted |= other.alloc_counted;
        for s in &other.scopes {
            match self.scopes.iter_mut().find(|m| m.name == s.name) {
                Some(m) => {
                    m.calls = m.calls.saturating_add(s.calls);
                    m.total_ns = m.total_ns.saturating_add(s.total_ns);
                    m.self_ns = m.self_ns.saturating_add(s.self_ns);
                    m.allocs = m.allocs.saturating_add(s.allocs);
                    m.alloc_bytes = m.alloc_bytes.saturating_add(s.alloc_bytes);
                }
                None => self.scopes.push(s.clone()),
            }
        }
        sort_scopes(&mut self.scopes);
    }

    /// Human-readable per-scope table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "host profile: wall {:.1} ms, alloc counting {}\n",
            self.wall_ns as f64 / 1e6,
            if self.alloc_counted { "on" } else { "off" }
        ));
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>10} {:>12}\n",
            "scope", "calls", "total_ms", "self_ms", "allocs", "alloc_bytes"
        ));
        for s in &self.scopes {
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.3} {:>12.3} {:>10} {:>12}\n",
                s.name,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
                s.allocs,
                s.alloc_bytes
            ));
        }
        out
    }
}

pub(crate) fn sort_scopes(scopes: &mut [ScopeStat]) {
    scopes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
}

/// Flush nothing, take the global table (zeroing it), and package it as a
/// [`HostProfile`] with the given wall time. Call [`flush_thread`] first on
/// any thread whose totals should be included.
pub fn take_profile(wall_ns: u64) -> HostProfile {
    let table = {
        let mut g = global_lock();
        std::mem::replace(&mut *g, [ScopeTotals::default(); SCOPE_COUNT])
    };
    let mut scopes: Vec<ScopeStat> = Scope::ALL
        .iter()
        .map(|&s| {
            let t = table[s.idx()];
            ScopeStat {
                name: s.name(),
                calls: t.calls,
                total_ns: t.total_ns,
                self_ns: t.self_ns,
                allocs: t.allocs,
                alloc_bytes: t.alloc_bytes,
            }
        })
        .filter(|s| s.calls > 0)
        .collect();
    sort_scopes(&mut scopes);
    HostProfile {
        wall_ns,
        alloc_counted: alloc_counting(),
        scopes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The switches and the global table are process-wide; serialize every
    // test that flips them so `cargo test`'s parallel runner can't
    // interleave two profiled sections.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn spin_for(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_scopes_split_self_and_child_time() {
        let _l = locked();
        set_enabled(true);
        reset_thread();
        {
            let _outer = scope(Scope::FabricCall);
            spin_for(Duration::from_millis(4));
            {
                let _inner = scope(Scope::CodecEncode);
                spin_for(Duration::from_millis(4));
            }
            spin_for(Duration::from_millis(1));
        }
        set_enabled(false);
        let t = thread_totals();
        let outer = t[Scope::FabricCall.idx()];
        let inner = t[Scope::CodecEncode.idx()];
        reset_thread();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Inner is wholly contained in outer's inclusive time...
        assert!(outer.total_ns >= inner.total_ns);
        // ...and fully excluded from outer's exclusive time.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        // The inner scope spun for ~4ms of the outer's ~9ms: exclusive time
        // must be visibly smaller than inclusive (coarse bound, CI-safe).
        assert!(outer.self_ns < outer.total_ns);
        assert!(inner.total_ns >= Duration::from_millis(3).as_nanos() as u64);
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn per_thread_totals_merge_into_global_on_exit() {
        let _l = locked();
        set_enabled(true);
        reset();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = scope(Scope::SchedSend);
                    spin_for(Duration::from_millis(1));
                    // No explicit flush: the TLS destructor merges.
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        set_enabled(false);
        let profile = take_profile(0);
        let send = profile
            .scopes
            .iter()
            .find(|s| s.name == "sched.send")
            .expect("sched.send row");
        assert_eq!(send.calls, 3);
        assert!(send.total_ns >= 3 * Duration::from_millis(1).as_nanos() as u64);
    }

    #[test]
    fn explicit_flush_merges_current_thread() {
        let _l = locked();
        set_enabled(true);
        reset();
        reset_thread();
        {
            let _g = scope(Scope::ScrapeRoll);
        }
        set_enabled(false);
        flush_thread();
        let profile = take_profile(7);
        assert_eq!(profile.wall_ns, 7);
        assert_eq!(
            profile
                .scopes
                .iter()
                .find(|s| s.name == "scrape.roll")
                .map(|s| s.calls),
            Some(1)
        );
        // Taking drained the table: a second take is empty.
        assert!(take_profile(0).scopes.is_empty());
    }

    #[test]
    fn alloc_counters_saturate_instead_of_wrapping() {
        let _l = locked();
        // Drain whatever this thread has accumulated so far.
        let (a0, _) = thread_alloc_counters();
        record_alloc(u64::MAX - a0 - 1, 0);
        record_alloc(10, 0); // would overflow; must pin at MAX
        let (a, _) = thread_alloc_counters();
        assert_eq!(a, u64::MAX);
        record_alloc(1, u64::MAX);
        record_alloc(0, u64::MAX); // bytes counter saturates too
        let (_, b) = thread_alloc_counters();
        assert_eq!(b, u64::MAX);
    }

    #[test]
    fn scopes_attribute_allocations_to_self_not_parent() {
        let _l = locked();
        set_enabled(true);
        set_alloc_counting(true);
        reset_thread();
        {
            let _outer = scope(Scope::SchedRecv);
            {
                let _inner = scope(Scope::CodecDecode);
                let v: Vec<u64> = Vec::with_capacity(1024);
                std::hint::black_box(&v);
            }
        }
        set_alloc_counting(false);
        set_enabled(false);
        let t = thread_totals();
        let inner = t[Scope::CodecDecode.idx()];
        let outer = t[Scope::SchedRecv.idx()];
        reset_thread();
        assert!(inner.allocs >= 1, "inner Vec allocation not counted");
        assert!(inner.alloc_bytes >= 1024 * 8);
        // The parent saw the same allocation flow through but must not
        // double-count it as its own.
        assert_eq!(outer.allocs, 0);
        assert_eq!(outer.alloc_bytes, 0);
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _l = locked();
        set_enabled(false);
        reset_thread();
        {
            let _g = scope(Scope::TraceExport);
        }
        let t = thread_totals();
        assert!(t.iter().all(|s| s.calls == 0));
    }

    #[test]
    fn profile_merge_sums_rows_and_resorts() {
        let mut a = HostProfile {
            wall_ns: 100,
            alloc_counted: false,
            scopes: vec![ScopeStat {
                name: "sched.send",
                calls: 1,
                total_ns: 10,
                self_ns: 10,
                allocs: 0,
                alloc_bytes: 0,
            }],
        };
        let b = HostProfile {
            wall_ns: 50,
            alloc_counted: true,
            scopes: vec![
                ScopeStat {
                    name: "sched.send",
                    calls: 2,
                    total_ns: 5,
                    self_ns: 5,
                    allocs: 3,
                    alloc_bytes: 64,
                },
                ScopeStat {
                    name: "trace.export",
                    calls: 1,
                    total_ns: 99,
                    self_ns: 99,
                    allocs: 1,
                    alloc_bytes: 8,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.wall_ns, 150);
        assert!(a.alloc_counted);
        assert_eq!(a.scopes[0].name, "trace.export"); // resorted by self_ns
        let send = a.scopes.iter().find(|s| s.name == "sched.send").unwrap();
        assert_eq!((send.calls, send.total_ns, send.allocs), (3, 15, 3));
    }
}
