//! Messages and wire-size accounting.

use std::any::Any;

use crate::hostprof::{self, Scope as ProfScope};
use crate::reqtrace::ReqToken;
use crate::runtime::ProcId;
use crate::time::SimTime;

/// A delivered message.
///
/// Payloads travel as `Box<dyn Any>` — all processes share one address space,
/// so no bytes are actually serialized; instead every send *declares* its
/// as-if serialized size, which is the currency of the network cost model.
pub struct Envelope {
    pub src: ProcId,
    pub dst: ProcId,
    /// Application-level tag (protocol message kind).
    pub tag: u32,
    /// Correlation id: non-zero on RPC requests and their replies.
    pub corr: u64,
    /// True when this envelope is the reply half of an RPC.
    pub(crate) is_reply: bool,
    pub payload: Box<dyn Any + Send>,
    /// Declared wire size in bytes.
    pub bytes: u64,
    /// Run-unique message sequence number — the same value recorded on the
    /// `TraceEvent::Send`/`Recv` pair, so application code can correlate a
    /// delivered message with the trace.
    pub seq: u64,
    /// Sender clock at send time.
    pub sent_at: SimTime,
    /// Receiver clock when the transfer completed.
    pub arrival: SimTime,
    /// Request-trace token (None unless request tracing is enabled and the
    /// fabric issued this envelope). `SimCtx::reply*` copies it onto the
    /// reply, carrying the trace context end to end.
    pub(crate) req: Option<ReqToken>,
}

impl Envelope {
    /// Whether this envelope is the reply half of an RPC rather than a fresh
    /// request. Receive-anything server loops should skip stray replies —
    /// e.g. a reply from a slow peer arriving after the caller already timed
    /// out, re-resolved its route, and retried elsewhere.
    pub fn is_reply(&self) -> bool {
        self.is_reply
    }

    /// Borrow the payload as `T`, panicking with a diagnostic on mismatch.
    ///
    /// Transparent to `Arc`: a payload sent as `Arc<T>` (the fabric wraps
    /// request payloads in an `Arc` once so retries resend without a deep
    /// clone) is borrowed through the `Arc` — the receiver never notices.
    pub fn downcast_ref<T: 'static>(&self) -> &T {
        let _prof = hostprof::scope(ProfScope::CodecDecode);
        self.payload
            .downcast_ref::<T>()
            .or_else(|| {
                self.payload
                    .downcast_ref::<std::sync::Arc<T>>()
                    .map(|a| &**a)
            })
            .unwrap_or_else(|| {
                panic!(
                    "envelope tag {} from {:?}: payload is not a {}",
                    self.tag,
                    self.src,
                    std::any::type_name::<T>()
                )
            })
    }

    /// Take the payload as `T`, panicking with a diagnostic on mismatch.
    pub fn downcast<T: 'static>(self) -> T {
        let _prof = hostprof::scope(ProfScope::CodecDecode);
        match self.payload.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "envelope tag {} from {:?}: payload is not a {}",
                self.tag,
                self.src,
                std::any::type_name::<T>()
            ),
        }
    }
}

/// As-if serialized size of a value, in bytes.
///
/// Implementations mirror a compact binary codec: fixed-width numerics, an
/// 8-byte length prefix per collection. The figures in the paper are driven
/// by *how many bytes cross which NIC*, so this trait is what ties algorithm
/// code to the network model.
pub trait WireSize {
    fn wire_size(&self) -> u64;
}

macro_rules! fixed_wire {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl WireSize for $t {
            #[inline]
            fn wire_size(&self) -> u64 { $n }
        })*
    };
}

fixed_wire! {
    u8 => 1, i8 => 1, bool => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    () => 0,
}

impl WireSize for String {
    fn wire_size(&self) -> u64 {
        8 + self.len() as u64
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_size).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize + ?Sized> WireSize for &T {
    fn wire_size(&self) -> u64 {
        (**self).wire_size()
    }
}

impl<T: WireSize> WireSize for [T] {
    fn wire_size(&self) -> u64 {
        8 + self.iter().map(WireSize::wire_size).sum::<u64>()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> u64 {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_size(&self) -> u64 {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1u8.wire_size(), 1);
        assert_eq!(1u32.wire_size(), 4);
        assert_eq!(1.0f64.wire_size(), 8);
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!(vec![1.0f64; 10].wire_size(), 8 + 80);
        assert_eq!("abc".to_string().wire_size(), 11);
        assert_eq!((1u32, 2.0f64).wire_size(), 12);
        assert_eq!(Some(5u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        // sparse (index, value) pairs: 12 bytes each, the figure the paper's
        // sparse-communication advantage rests on.
        let sparse: Vec<(u32, f64)> = vec![(0, 1.0), (7, 2.0)];
        assert_eq!(sparse.wire_size(), 8 + 2 * 12);
    }
}
