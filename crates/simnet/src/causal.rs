//! Causal analysis of a recorded event trace: critical path and category
//! attribution.
//!
//! The trace recorded by [`crate::SimBuilder::trace`] forms a DAG: each
//! process's events are totally ordered by its clock (program-order edges),
//! and every delivered message adds an edge from its `Send` to its `Recv`,
//! keyed by the run-unique `seq`. The **critical path** is the chain of
//! events that bounds the run's makespan: starting from the last non-daemon
//! process to finish, walk backwards — through local history while the
//! process was busy, and across a message edge to the sender whenever the
//! process was blocked waiting for that message.
//!
//! Every nanosecond of `[0, makespan]` is attributed to exactly one
//! category:
//!
//! * **compute** — a `Compute` charge on the path (split by op label);
//! * **network** — uncontended transit of a path message: the part of a
//!   blocked wait the message would still have needed on idle NICs (link
//!   latency plus one wire time; loopback latency for self-sends);
//! * **queue** — the rest of a blocked wait: the message landed later than
//!   its uncontended arrival because a NIC was serializing other traffic
//!   (the paper's driver-incast effect);
//! * **idle** — untraced gaps: receive-deadline waits (scheduler idle),
//!   per-message send overhead, and time before a process's first event.
//!
//! The attribution therefore *sums exactly to the makespan*, and — because
//! the trace and the walk are deterministic — is byte-identical across
//! same-seed runs.

use std::collections::BTreeMap;
use std::fmt;

use crate::report::{SimReport, TraceEvent};
use crate::time::SimTime;

/// What a critical-path interval was spent on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PathCategory {
    Compute,
    Network,
    Queue,
    Idle,
}

impl PathCategory {
    pub fn name(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::Network => "network",
            PathCategory::Queue => "queue",
            PathCategory::Idle => "idle",
        }
    }
}

/// One attributed interval of the critical path, on one process.
#[derive(Clone, Debug)]
pub struct PathSegment {
    /// Index of the process the interval is attributed to.
    pub proc: usize,
    pub start: SimTime,
    pub end: SimTime,
    pub category: PathCategory,
    /// Op label for `Compute` segments that carried one.
    pub label: Option<&'static str>,
}

impl PathSegment {
    pub fn duration_ns(&self) -> u64 {
        self.end.as_nanos() - self.start.as_nanos()
    }
}

/// Per-process summary: how much of the critical path ran here, and how much
/// slack the process had.
#[derive(Clone, Debug)]
pub struct ProcSummary {
    pub proc: usize,
    pub name: String,
    pub daemon: bool,
    pub finished_at: SimTime,
    pub busy: SimTime,
    /// Time between this process finishing and the makespan — how much it
    /// could slow down before becoming the straggler (daemons excluded from
    /// the makespan keep their raw difference).
    pub slack_ns: u64,
    /// Critical-path time attributed to this process.
    pub critical_ns: u64,
}

/// Why the analysis could not run.
#[derive(Clone, Debug)]
pub enum CausalError {
    /// The report has no event trace (tracing was off, or nothing ran).
    NoTrace,
    /// A `Recv` referenced a `seq` with no recorded `Send`.
    MissingSend { seq: u64 },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::NoTrace => {
                write!(f, "report has no event trace (enable SimBuilder::trace)")
            }
            CausalError::MissingSend { seq } => {
                write!(
                    f,
                    "trace is inconsistent: Recv references unknown send seq {seq}"
                )
            }
        }
    }
}

impl std::error::Error for CausalError {}

/// Result of the critical-path walk over one run's trace.
#[derive(Clone, Debug)]
pub struct CausalAnalysis {
    /// The run's virtual makespan (latest non-daemon clock).
    pub makespan: SimTime,
    /// Critical-path intervals in forward time order, partitioning
    /// `[0, makespan]`.
    pub segments: Vec<PathSegment>,
    pub compute_ns: u64,
    pub network_ns: u64,
    pub queue_ns: u64,
    pub idle_ns: u64,
    /// Critical-path compute split by op label (`"(unlabeled)"` for charges
    /// recorded without one).
    pub compute_by_label: BTreeMap<&'static str, u64>,
    /// One summary per process, in process-id order.
    pub procs: Vec<ProcSummary>,
}

/// End of an event's time interval; events other than `Compute` are points.
fn event_end(e: &TraceEvent) -> SimTime {
    match e {
        TraceEvent::Compute { at, dt, .. } => *at + *dt,
        other => other.at(),
    }
}

fn proc_of(e: &TraceEvent) -> usize {
    match e {
        TraceEvent::Send { src, .. } | TraceEvent::Drop { src, .. } => src.0,
        TraceEvent::Recv { proc, .. }
        | TraceEvent::Compute { proc, .. }
        | TraceEvent::Finish { proc, .. }
        | TraceEvent::Mark { proc, .. } => proc.0,
    }
}

impl CausalAnalysis {
    /// Walk the trace of `report` and attribute the critical path.
    pub fn from_report(report: &SimReport) -> Result<CausalAnalysis, CausalError> {
        if report.trace.is_empty() {
            return Err(CausalError::NoTrace);
        }
        let nprocs = report.procs.len();
        let makespan = report.virtual_time;

        // Per-process event lists in program order. The trace is stably
        // sorted by time and per-process clocks are monotone, so filtering
        // preserves each process's execution order.
        let mut per_proc: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
        // seq -> (sender proc, position within sender's list).
        let mut send_pos: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        for (i, e) in report.trace.iter().enumerate() {
            let p = proc_of(e);
            if let TraceEvent::Send { seq, .. } = e {
                send_pos.insert(*seq, (p, per_proc[p].len()));
            }
            per_proc[p].push(i);
        }

        // Start at the non-daemon process that finished last (the one whose
        // clock *is* the makespan); ties break to the smallest id, matching
        // the determinism of the rest of the simulator.
        let start_proc = report
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.daemon)
            .max_by(|(ia, a), (ib, b)| {
                a.finished_at.cmp(&b.finished_at).then(ib.cmp(ia)) // prefer the smaller id on ties
            })
            .map(|(i, _)| i)
            .ok_or(CausalError::NoTrace)?;

        let mut segments: Vec<PathSegment> = Vec::new();
        let mut critical_ns = vec![0u64; nprocs];
        let push = |segments: &mut Vec<PathSegment>,
                    critical_ns: &mut Vec<u64>,
                    proc: usize,
                    start: SimTime,
                    end: SimTime,
                    category: PathCategory,
                    label: Option<&'static str>| {
            debug_assert!(start <= end, "segment with negative duration");
            if start == end {
                return;
            }
            critical_ns[proc] += end.as_nanos() - start.as_nanos();
            segments.push(PathSegment {
                proc,
                start,
                end,
                category,
                label,
            });
        };

        let mut p = start_proc;
        let mut t = makespan;
        let mut idx: isize = per_proc[p].len() as isize - 1;
        while t > SimTime::ZERO {
            if idx < 0 {
                // Nothing earlier on this process: the remaining prefix is
                // time before its first event (spawn offset / quiet start).
                push(
                    &mut segments,
                    &mut critical_ns,
                    p,
                    SimTime::ZERO,
                    t,
                    PathCategory::Idle,
                    None,
                );
                break;
            }
            let e = &report.trace[per_proc[p][idx as usize]];
            let end = event_end(e);
            if end > t {
                // Event beyond the cursor (e.g. daemon activity after the
                // makespan): not on the path.
                idx -= 1;
                continue;
            }
            if end < t {
                // Untraced clock movement: receive-deadline waits and
                // per-message send overhead.
                push(
                    &mut segments,
                    &mut critical_ns,
                    p,
                    end,
                    t,
                    PathCategory::Idle,
                    None,
                );
                t = end;
                continue;
            }
            // end == t: this event's completion is on the path.
            match e {
                TraceEvent::Compute { at, label, .. } => {
                    let label = label.map(|l| report.label_name(l));
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        *at,
                        t,
                        PathCategory::Compute,
                        label,
                    );
                    t = *at;
                    idx -= 1;
                }
                TraceEvent::Recv { seq, .. } => {
                    let prev_end = if idx == 0 {
                        SimTime::ZERO
                    } else {
                        event_end(&report.trace[per_proc[p][idx as usize - 1]])
                    };
                    if prev_end == t {
                        // The message was already waiting when the process
                        // got here — consuming it cost nothing.
                        idx -= 1;
                        continue;
                    }
                    let &(src, src_pos) = send_pos
                        .get(seq)
                        .ok_or(CausalError::MissingSend { seq: *seq })?;
                    let TraceEvent::Send {
                        at: sent_at,
                        bytes,
                        arrival,
                        ..
                    } = &report.trace[per_proc[src][src_pos]]
                    else {
                        unreachable!("send_pos points at a non-Send event");
                    };
                    if *arrival != t {
                        // The process's clock had already passed the arrival
                        // (deadline waits moved it): the gap is idle time,
                        // not a network wait.
                        push(
                            &mut segments,
                            &mut critical_ns,
                            p,
                            prev_end,
                            t,
                            PathCategory::Idle,
                            None,
                        );
                        t = prev_end;
                        idx -= 1;
                        continue;
                    }
                    // Genuine blocked wait: [hop, t] where hop is when both
                    // the sender had sent and this process was free. Had the
                    // NICs been idle the message would have landed at
                    // `sent_at + ideal`; every nanosecond waited beyond that
                    // is congestion (NIC serialization), not transit.
                    let hop = (*sent_at).max(prev_end);
                    let raw = t.as_nanos() - hop.as_nanos();
                    let ideal = if src == p {
                        report.net.loopback
                    } else {
                        report.net.latency + report.net.wire_time(*bytes)
                    };
                    let ideal_arrival = *sent_at + ideal;
                    let queue_ns = t
                        .as_nanos()
                        .saturating_sub(ideal_arrival.as_nanos())
                        .min(raw);
                    let net_ns = raw - queue_ns;
                    let transit_start = SimTime(t.as_nanos() - net_ns);
                    // NIC serialization (congestion) first, transit last —
                    // the message physically lands at `t`.
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        hop,
                        transit_start,
                        PathCategory::Queue,
                        None,
                    );
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        transit_start,
                        t,
                        PathCategory::Network,
                        None,
                    );
                    t = hop;
                    if *sent_at >= prev_end {
                        // The sender bound us: follow the message edge.
                        p = src;
                        idx = src_pos as isize;
                    } else {
                        // Our own earlier work bound us.
                        idx -= 1;
                    }
                }
                // Point events: Send/Drop/Mark/Finish take no time.
                _ => idx -= 1,
            }
        }
        segments.reverse();

        let mut compute_ns = 0u64;
        let mut network_ns = 0u64;
        let mut queue_ns = 0u64;
        let mut idle_ns = 0u64;
        let mut compute_by_label: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in &segments {
            let d = s.duration_ns();
            match s.category {
                PathCategory::Compute => {
                    compute_ns += d;
                    *compute_by_label
                        .entry(s.label.unwrap_or("(unlabeled)"))
                        .or_insert(0) += d;
                }
                PathCategory::Network => network_ns += d,
                PathCategory::Queue => queue_ns += d,
                PathCategory::Idle => idle_ns += d,
            }
        }
        debug_assert_eq!(
            compute_ns + network_ns + queue_ns + idle_ns,
            makespan.as_nanos(),
            "critical-path attribution must partition [0, makespan]"
        );

        let procs = report
            .procs
            .iter()
            .enumerate()
            .map(|(i, st)| ProcSummary {
                proc: i,
                name: st.name.clone(),
                daemon: st.daemon,
                finished_at: st.finished_at,
                busy: st.busy,
                slack_ns: makespan
                    .as_nanos()
                    .saturating_sub(st.finished_at.as_nanos()),
                critical_ns: critical_ns[i],
            })
            .collect();

        Ok(CausalAnalysis {
            makespan,
            segments,
            compute_ns,
            network_ns,
            queue_ns,
            idle_ns,
            compute_by_label,
            procs,
        })
    }

    /// Sum of all category attributions — always equals the makespan.
    pub fn category_total_ns(&self) -> u64 {
        self.compute_ns + self.network_ns + self.queue_ns + self.idle_ns
    }

    /// `(category name, attributed nanoseconds)` in fixed category order.
    pub fn categories(&self) -> [(&'static str, u64); 4] {
        [
            ("compute", self.compute_ns),
            ("network", self.network_ns),
            ("queue", self.queue_ns),
            ("idle", self.idle_ns),
        ]
    }

    /// Deterministic human-readable breakdown.
    pub fn render(&self) -> String {
        let total = self.makespan.as_nanos().max(1);
        let pct = |ns: u64| ns as f64 * 100.0 / total as f64;
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: makespan {:.6}s, {} segments\n",
            secs(self.makespan.as_nanos()),
            self.segments.len()
        ));
        for (name, ns) in self.categories() {
            out.push_str(&format!(
                "  {:<8} {:>12.6}s  {:>5.1}%\n",
                name,
                secs(ns),
                pct(ns)
            ));
        }
        if !self.compute_by_label.is_empty() {
            out.push_str("critical-path compute by op:\n");
            let mut rows: Vec<(&&'static str, &u64)> = self.compute_by_label.iter().collect();
            // Largest first; ties resolve alphabetically via the BTreeMap
            // iteration order being stable under the stable sort.
            rows.sort_by(|a, b| b.1.cmp(a.1));
            for (label, ns) in rows {
                out.push_str(&format!(
                    "  {:<24} {:>12.6}s  {:>5.1}%\n",
                    label,
                    secs(*ns),
                    pct(*ns)
                ));
            }
        }
        out.push_str("top processes by critical-path time:\n");
        let mut rows: Vec<&ProcSummary> = self.procs.iter().collect();
        rows.sort_by(|a, b| b.critical_ns.cmp(&a.critical_ns).then(a.proc.cmp(&b.proc)));
        for ps in rows.iter().take(10) {
            if ps.critical_ns == 0 {
                break;
            }
            out.push_str(&format!(
                "  {:<20} critical {:>10.6}s  busy {:>10.6}s  slack {:>10.6}s\n",
                ps.name,
                secs(ps.critical_ns),
                secs(ps.busy.as_nanos()),
                secs(ps.slack_ns)
            ));
        }
        out
    }
}
