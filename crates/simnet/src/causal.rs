//! Causal analysis of a recorded event trace: the retained event DAG,
//! critical-path extraction, and category attribution.
//!
//! The trace recorded by [`crate::SimBuilder::trace`] forms a DAG: each
//! process's events are totally ordered by its clock (program-order edges),
//! and every delivered message adds an edge from its `Send` to its `Recv`,
//! keyed by the run-unique `seq`. [`CausalDag`] **retains** that graph —
//! per-process event lists plus the send index — so it can be walked more
//! than once: the critical-path extractor below consumes it, and
//! [`crate::whatif`] replays it under counterfactual edits ("what if the
//! network were 2× faster?"). The DAG is also exportable as an integer-only
//! JSON section (see [`CausalDag::to_json`]) so `ps2-trace whatif` can
//! rebuild it from a trace file without the original
//! [`SimReport`](crate::SimReport).
//!
//! The **critical path** is the chain of events that bounds the run's
//! makespan: starting from the last non-daemon process to finish, walk
//! backwards — through local history while the process was busy, and across
//! a message edge to the sender whenever the process was blocked waiting for
//! that message.
//!
//! Every nanosecond of `[0, makespan]` is attributed to exactly one
//! category:
//!
//! * **compute** — a `Compute` charge on the path (split by op label);
//! * **network** — uncontended transit of a path message: the part of a
//!   blocked wait the message would still have needed on idle NICs (link
//!   latency plus one wire time; loopback latency for self-sends);
//! * **queue** — the rest of a blocked wait: the message landed later than
//!   its uncontended arrival because a NIC was serializing other traffic
//!   (the paper's driver-incast effect);
//! * **idle** — untraced gaps: receive-deadline waits (scheduler idle),
//!   per-message send overhead, and time before a process's first event.
//!
//! The attribution therefore *sums exactly to the makespan*, and — because
//! the trace and the walk are deterministic — is byte-identical across
//! same-seed runs.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::metrics::json_str;
use crate::report::{SimReport, TraceEvent};
use crate::time::SimTime;

/// What a critical-path interval was spent on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PathCategory {
    Compute,
    Network,
    Queue,
    Idle,
}

impl PathCategory {
    pub fn name(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::Network => "network",
            PathCategory::Queue => "queue",
            PathCategory::Idle => "idle",
        }
    }
}

/// One attributed interval of the critical path, on one process.
#[derive(Clone, Debug)]
pub struct PathSegment {
    /// Index of the process the interval is attributed to.
    pub proc: usize,
    pub start: SimTime,
    pub end: SimTime,
    pub category: PathCategory,
    /// Op label for `Compute` segments that carried one. Owned, because a
    /// DAG rebuilt from a trace file has no static label table.
    pub label: Option<String>,
}

impl PathSegment {
    pub fn duration_ns(&self) -> u64 {
        self.end.as_nanos() - self.start.as_nanos()
    }
}

/// Per-process summary: how much of the critical path ran here, and how much
/// slack the process had.
#[derive(Clone, Debug)]
pub struct ProcSummary {
    pub proc: usize,
    pub name: String,
    pub daemon: bool,
    pub finished_at: SimTime,
    pub busy: SimTime,
    /// Time between this process finishing and the makespan — how much it
    /// could slow down before becoming the straggler (daemons excluded from
    /// the makespan keep their raw difference).
    pub slack_ns: u64,
    /// Critical-path time attributed to this process.
    pub critical_ns: u64,
}

/// Why the analysis could not run.
#[derive(Clone, Debug)]
pub enum CausalError {
    /// The report has no event trace (tracing was off, or nothing ran).
    NoTrace,
    /// A `Recv` referenced a `seq` with no recorded `Send`.
    MissingSend { seq: u64 },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::NoTrace => {
                write!(f, "report has no event trace (enable SimBuilder::trace)")
            }
            CausalError::MissingSend { seq } => {
                write!(
                    f,
                    "trace is inconsistent: Recv references unknown send seq {seq}"
                )
            }
        }
    }
}

impl std::error::Error for CausalError {}

/// One event of the retained DAG, in nanoseconds of virtual time. A distilled
/// [`TraceEvent`]: just what the walks need, fully integer so the DAG
/// round-trips through JSON exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagEvent {
    /// A compute charge: occupies `[at, at + dt]`, optionally op-labeled
    /// (index into [`CausalDag::labels`]).
    Compute {
        at: u64,
        dt: u64,
        label: Option<u32>,
    },
    /// A message send (a point in time on the sender). `arrival` is when the
    /// message landed at `dst`; `ideal_ns` is the uncontended transit the
    /// network model would have charged on idle NICs (loopback latency for
    /// self-sends, link latency + one wire time otherwise) — precomputed
    /// here so the DAG needs no float network config to replay.
    Send {
        at: u64,
        dst: usize,
        arrival: u64,
        seq: u64,
        ideal_ns: u64,
    },
    /// A message consumption (a point in time on the receiver).
    Recv { at: u64, src: usize, seq: u64 },
    /// Any other point event (finish, mark, drop): moves no time, but keeps
    /// program order — and therefore the walks — faithful to the raw trace.
    Point { at: u64 },
}

impl DagEvent {
    /// End of the event's time interval; everything but `Compute` is a point.
    pub fn end_ns(&self) -> u64 {
        match self {
            DagEvent::Compute { at, dt, .. } => at + dt,
            DagEvent::Send { at, .. } | DagEvent::Recv { at, .. } | DagEvent::Point { at } => *at,
        }
    }
}

/// One process's retained history, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagProc {
    pub name: String,
    pub daemon: bool,
    /// Virtual clock when the process finished (or was interrupted).
    pub finished_ns: u64,
    /// Total compute charged, from the run's per-proc stats.
    pub busy_ns: u64,
    pub events: Vec<DagEvent>,
}

/// The full causal event DAG of one run: per-process program-order event
/// lists plus the message-edge index. Built from a live [`SimReport`]
/// ([`CausalDag::from_report`]) or rebuilt from a trace file's `"ps2"."dag"`
/// section (`ps2::tracefile`). Everything downstream — the critical path,
/// what-if replay — derives from this structure alone.
#[derive(Clone, Debug)]
pub struct CausalDag {
    /// The run's virtual makespan in nanoseconds (latest non-daemon clock).
    pub makespan_ns: u64,
    /// Interned trace labels, indexed by `DagEvent::Compute::label`.
    pub labels: Vec<String>,
    pub procs: Vec<DagProc>,
    /// seq → (sender proc, position within the sender's event list).
    send_pos: BTreeMap<u64, (usize, usize)>,
}

impl CausalDag {
    /// Assemble a DAG from parts (used by the trace-file reader); the send
    /// index is derived.
    pub fn new(makespan_ns: u64, labels: Vec<String>, procs: Vec<DagProc>) -> CausalDag {
        let mut send_pos = BTreeMap::new();
        for (p, dp) in procs.iter().enumerate() {
            for (i, e) in dp.events.iter().enumerate() {
                if let DagEvent::Send { seq, .. } = e {
                    send_pos.insert(*seq, (p, i));
                }
            }
        }
        CausalDag {
            makespan_ns,
            labels,
            procs,
            send_pos,
        }
    }

    /// Retain the causal DAG of `report`'s trace. The trace is stably sorted
    /// by time and per-process clocks are monotone, so partitioning by
    /// process preserves each process's execution order.
    pub fn from_report(report: &SimReport) -> Result<CausalDag, CausalError> {
        if report.trace.is_empty() {
            return Err(CausalError::NoTrace);
        }
        let mut procs: Vec<DagProc> = report
            .procs
            .iter()
            .map(|st| DagProc {
                name: st.name.clone(),
                daemon: st.daemon,
                finished_ns: st.finished_at.as_nanos(),
                busy_ns: st.busy.as_nanos(),
                events: Vec::new(),
            })
            .collect();
        for e in &report.trace {
            let p = proc_of(e);
            let ev = match e {
                TraceEvent::Compute { at, dt, label, .. } => DagEvent::Compute {
                    at: at.as_nanos(),
                    dt: dt.as_nanos(),
                    label: label.map(|l| l.0),
                },
                TraceEvent::Send {
                    at,
                    src,
                    dst,
                    bytes,
                    arrival,
                    seq,
                    ..
                } => {
                    let ideal = if src == dst {
                        report.net.loopback
                    } else {
                        report.net.latency + report.net.wire_time(*bytes)
                    };
                    DagEvent::Send {
                        at: at.as_nanos(),
                        dst: dst.0,
                        arrival: arrival.as_nanos(),
                        seq: *seq,
                        ideal_ns: ideal.as_nanos(),
                    }
                }
                TraceEvent::Recv { at, src, seq, .. } => DagEvent::Recv {
                    at: at.as_nanos(),
                    src: src.0,
                    seq: *seq,
                },
                TraceEvent::Finish { at, .. }
                | TraceEvent::Drop { at, .. }
                | TraceEvent::Mark { at, .. } => DagEvent::Point { at: at.as_nanos() },
            };
            procs[p].events.push(ev);
        }
        Ok(CausalDag::new(
            report.virtual_time.as_nanos(),
            report.labels.iter().map(|l| l.to_string()).collect(),
            procs,
        ))
    }

    /// Resolve a compute label index.
    pub fn label_name(&self, id: u32) -> &str {
        self.labels
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<unknown-label>")
    }

    /// Look up the sender position of a message edge.
    pub(crate) fn send_of(&self, seq: u64) -> Option<(usize, usize)> {
        self.send_pos.get(&seq).copied()
    }

    /// Total compute charged per process across the whole DAG (not just the
    /// critical path) — what the what-if battery ranks "speed up this
    /// process" candidates by.
    pub fn compute_ns_by_proc(&self) -> Vec<u64> {
        self.procs
            .iter()
            .map(|p| {
                p.events
                    .iter()
                    .map(|e| match e {
                        DagEvent::Compute { dt, .. } => *dt,
                        _ => 0,
                    })
                    .sum()
            })
            .collect()
    }

    /// Total compute per op label across the whole DAG (unlabeled charges
    /// excluded — there is no edit that can name them).
    pub fn compute_ns_by_label(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for p in &self.procs {
            for e in &p.events {
                if let DagEvent::Compute {
                    dt, label: Some(l), ..
                } = e
                {
                    *out.entry(self.label_name(*l).to_string()).or_insert(0) += dt;
                }
            }
        }
        out
    }

    /// Per-destination queueing: for each process, the total time messages
    /// sent to it spent beyond their uncontended transit (NIC serialization
    /// on its in-NIC, mostly) — what the battery ranks "serve this server's
    /// traffic locally" candidates by.
    pub fn inbound_queue_ns(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.procs.len()];
        for p in &self.procs {
            for e in &p.events {
                if let DagEvent::Send {
                    at,
                    dst,
                    arrival,
                    ideal_ns,
                    ..
                } = e
                {
                    if let Some(slot) = out.get_mut(*dst) {
                        *slot += (arrival - at).saturating_sub(*ideal_ns);
                    }
                }
            }
        }
        out
    }

    /// Render as the integer-only `"ps2"."dag"` JSON section (schema
    /// `ps2-dag-v1`). Events are compact arrays keyed by a leading
    /// discriminant: `[0, at, dt, label|-1]` compute, `[1, at, dst, arrival,
    /// seq, ideal_ns]` send, `[2, at, src, seq]` recv, `[3, at]` point.
    /// Byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n    \"schema\": \"ps2-dag-v1\",\n");
        let _ = writeln!(s, "    \"makespan_ns\": {},", self.makespan_ns);
        s.push_str("    \"labels\": [");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(l));
        }
        s.push_str("],\n    \"procs\": [\n");
        for (i, p) in self.procs.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"name\": {}, \"daemon\": {}, \"finished_ns\": {}, \
                 \"busy_ns\": {}, \"events\": [",
                json_str(&p.name),
                p.daemon,
                p.finished_ns,
                p.busy_ns
            );
            for (j, e) in p.events.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                match e {
                    DagEvent::Compute { at, dt, label } => {
                        let _ =
                            write!(s, "[0,{at},{dt},{}]", label.map(|l| l as i64).unwrap_or(-1));
                    }
                    DagEvent::Send {
                        at,
                        dst,
                        arrival,
                        seq,
                        ideal_ns,
                    } => {
                        let _ = write!(s, "[1,{at},{dst},{arrival},{seq},{ideal_ns}]");
                    }
                    DagEvent::Recv { at, src, seq } => {
                        let _ = write!(s, "[2,{at},{src},{seq}]");
                    }
                    DagEvent::Point { at } => {
                        let _ = write!(s, "[3,{at}]");
                    }
                }
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.procs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  }");
        s
    }

    /// Walk the DAG backwards from the makespan and attribute the critical
    /// path. This is the one-path distillation of the retained graph; the
    /// graph itself stays available for replay.
    pub fn critical_path(&self) -> Result<CausalAnalysis, CausalError> {
        let nprocs = self.procs.len();
        let makespan = SimTime(self.makespan_ns);

        // Start at the non-daemon process that finished last (the one whose
        // clock *is* the makespan); ties break to the smallest id, matching
        // the determinism of the rest of the simulator.
        let start_proc = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.daemon)
            .max_by(|(ia, a), (ib, b)| {
                a.finished_ns.cmp(&b.finished_ns).then(ib.cmp(ia)) // prefer the smaller id on ties
            })
            .map(|(i, _)| i)
            .ok_or(CausalError::NoTrace)?;

        let mut segments: Vec<PathSegment> = Vec::new();
        let mut critical_ns = vec![0u64; nprocs];
        let push = |segments: &mut Vec<PathSegment>,
                    critical_ns: &mut Vec<u64>,
                    proc: usize,
                    start: u64,
                    end: u64,
                    category: PathCategory,
                    label: Option<String>| {
            debug_assert!(start <= end, "segment with negative duration");
            if start == end {
                return;
            }
            critical_ns[proc] += end - start;
            segments.push(PathSegment {
                proc,
                start: SimTime(start),
                end: SimTime(end),
                category,
                label,
            });
        };

        let mut p = start_proc;
        let mut t = self.makespan_ns;
        let mut idx: isize = self.procs[p].events.len() as isize - 1;
        while t > 0 {
            if idx < 0 {
                // Nothing earlier on this process: the remaining prefix is
                // time before its first event (spawn offset / quiet start).
                push(
                    &mut segments,
                    &mut critical_ns,
                    p,
                    0,
                    t,
                    PathCategory::Idle,
                    None,
                );
                break;
            }
            let e = &self.procs[p].events[idx as usize];
            let end = e.end_ns();
            if end > t {
                // Event beyond the cursor (e.g. daemon activity after the
                // makespan): not on the path.
                idx -= 1;
                continue;
            }
            if end < t {
                // Untraced clock movement: receive-deadline waits and
                // per-message send overhead.
                push(
                    &mut segments,
                    &mut critical_ns,
                    p,
                    end,
                    t,
                    PathCategory::Idle,
                    None,
                );
                t = end;
                continue;
            }
            // end == t: this event's completion is on the path.
            match e {
                DagEvent::Compute { at, label, .. } => {
                    let label = label.map(|l| self.label_name(l).to_string());
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        *at,
                        t,
                        PathCategory::Compute,
                        label,
                    );
                    t = *at;
                    idx -= 1;
                }
                DagEvent::Recv { seq, .. } => {
                    let prev_end = if idx == 0 {
                        0
                    } else {
                        self.procs[p].events[idx as usize - 1].end_ns()
                    };
                    if prev_end == t {
                        // The message was already waiting when the process
                        // got here — consuming it cost nothing.
                        idx -= 1;
                        continue;
                    }
                    let (src, src_pos) = self
                        .send_of(*seq)
                        .ok_or(CausalError::MissingSend { seq: *seq })?;
                    let DagEvent::Send {
                        at: sent_at,
                        arrival,
                        ideal_ns,
                        ..
                    } = &self.procs[src].events[src_pos]
                    else {
                        unreachable!("send_pos points at a non-Send event");
                    };
                    if *arrival != t {
                        // The process's clock had already passed the arrival
                        // (deadline waits moved it): the gap is idle time,
                        // not a network wait.
                        push(
                            &mut segments,
                            &mut critical_ns,
                            p,
                            prev_end,
                            t,
                            PathCategory::Idle,
                            None,
                        );
                        t = prev_end;
                        idx -= 1;
                        continue;
                    }
                    // Genuine blocked wait: [hop, t] where hop is when both
                    // the sender had sent and this process was free. Had the
                    // NICs been idle the message would have landed at
                    // `sent_at + ideal`; every nanosecond waited beyond that
                    // is congestion (NIC serialization), not transit.
                    let hop = (*sent_at).max(prev_end);
                    let raw = t - hop;
                    let ideal_arrival = sent_at + ideal_ns;
                    let queue_ns = t.saturating_sub(ideal_arrival).min(raw);
                    let net_ns = raw - queue_ns;
                    let transit_start = t - net_ns;
                    // NIC serialization (congestion) first, transit last —
                    // the message physically lands at `t`.
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        hop,
                        transit_start,
                        PathCategory::Queue,
                        None,
                    );
                    push(
                        &mut segments,
                        &mut critical_ns,
                        p,
                        transit_start,
                        t,
                        PathCategory::Network,
                        None,
                    );
                    t = hop;
                    if *sent_at >= prev_end {
                        // The sender bound us: follow the message edge.
                        p = src;
                        idx = src_pos as isize;
                    } else {
                        // Our own earlier work bound us.
                        idx -= 1;
                    }
                }
                // Point events: Send/Drop/Mark/Finish take no time.
                _ => idx -= 1,
            }
        }
        segments.reverse();

        let mut compute_ns = 0u64;
        let mut network_ns = 0u64;
        let mut queue_ns = 0u64;
        let mut idle_ns = 0u64;
        let mut compute_by_label: BTreeMap<String, u64> = BTreeMap::new();
        for s in &segments {
            let d = s.duration_ns();
            match s.category {
                PathCategory::Compute => {
                    compute_ns += d;
                    *compute_by_label
                        .entry(s.label.clone().unwrap_or_else(|| "(unlabeled)".to_string()))
                        .or_insert(0) += d;
                }
                PathCategory::Network => network_ns += d,
                PathCategory::Queue => queue_ns += d,
                PathCategory::Idle => idle_ns += d,
            }
        }
        debug_assert_eq!(
            compute_ns + network_ns + queue_ns + idle_ns,
            makespan.as_nanos(),
            "critical-path attribution must partition [0, makespan]"
        );

        let procs = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, st)| ProcSummary {
                proc: i,
                name: st.name.clone(),
                daemon: st.daemon,
                finished_at: SimTime(st.finished_ns),
                busy: SimTime(st.busy_ns),
                slack_ns: self.makespan_ns.saturating_sub(st.finished_ns),
                critical_ns: critical_ns[i],
            })
            .collect();

        Ok(CausalAnalysis {
            makespan,
            segments,
            compute_ns,
            network_ns,
            queue_ns,
            idle_ns,
            compute_by_label,
            procs,
        })
    }
}

/// Result of the critical-path walk over one run's trace.
#[derive(Clone, Debug)]
pub struct CausalAnalysis {
    /// The run's virtual makespan (latest non-daemon clock).
    pub makespan: SimTime,
    /// Critical-path intervals in forward time order, partitioning
    /// `[0, makespan]`.
    pub segments: Vec<PathSegment>,
    pub compute_ns: u64,
    pub network_ns: u64,
    pub queue_ns: u64,
    pub idle_ns: u64,
    /// Critical-path compute split by op label (`"(unlabeled)"` for charges
    /// recorded without one).
    pub compute_by_label: BTreeMap<String, u64>,
    /// One summary per process, in process-id order.
    pub procs: Vec<ProcSummary>,
}

fn proc_of(e: &TraceEvent) -> usize {
    match e {
        TraceEvent::Send { src, .. } | TraceEvent::Drop { src, .. } => src.0,
        TraceEvent::Recv { proc, .. }
        | TraceEvent::Compute { proc, .. }
        | TraceEvent::Finish { proc, .. }
        | TraceEvent::Mark { proc, .. } => proc.0,
    }
}

impl CausalAnalysis {
    /// Retain the trace's DAG and extract the critical path in one step —
    /// the historical entry point, now a thin composition.
    pub fn from_report(report: &SimReport) -> Result<CausalAnalysis, CausalError> {
        CausalDag::from_report(report)?.critical_path()
    }

    /// Sum of all category attributions — always equals the makespan.
    pub fn category_total_ns(&self) -> u64 {
        self.compute_ns + self.network_ns + self.queue_ns + self.idle_ns
    }

    /// `(category name, attributed nanoseconds)` in fixed category order.
    pub fn categories(&self) -> [(&'static str, u64); 4] {
        [
            ("compute", self.compute_ns),
            ("network", self.network_ns),
            ("queue", self.queue_ns),
            ("idle", self.idle_ns),
        ]
    }

    /// Deterministic human-readable breakdown.
    pub fn render(&self) -> String {
        let total = self.makespan.as_nanos().max(1);
        let pct = |ns: u64| ns as f64 * 100.0 / total as f64;
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: makespan {:.6}s, {} segments\n",
            secs(self.makespan.as_nanos()),
            self.segments.len()
        ));
        for (name, ns) in self.categories() {
            out.push_str(&format!(
                "  {:<8} {:>12.6}s  {:>5.1}%\n",
                name,
                secs(ns),
                pct(ns)
            ));
        }
        if !self.compute_by_label.is_empty() {
            out.push_str("critical-path compute by op:\n");
            let mut rows: Vec<(&String, &u64)> = self.compute_by_label.iter().collect();
            // Largest first; ties resolve alphabetically via the BTreeMap
            // iteration order being stable under the stable sort.
            rows.sort_by(|a, b| b.1.cmp(a.1));
            for (label, ns) in rows {
                out.push_str(&format!(
                    "  {:<24} {:>12.6}s  {:>5.1}%\n",
                    label,
                    secs(*ns),
                    pct(*ns)
                ));
            }
        }
        out.push_str("top processes by critical-path time:\n");
        let mut rows: Vec<&ProcSummary> = self.procs.iter().collect();
        rows.sort_by(|a, b| b.critical_ns.cmp(&a.critical_ns).then(a.proc.cmp(&b.proc)));
        for ps in rows.iter().take(10) {
            if ps.critical_ns == 0 {
                break;
            }
            out.push_str(&format!(
                "  {:<20} critical {:>10.6}s  busy {:>10.6}s  slack {:>10.6}s\n",
                ps.name,
                secs(ps.critical_ns),
                secs(ps.busy.as_nanos()),
                secs(ps.slack_ns)
            ));
        }
        out
    }
}
