//! Windowed telemetry: a virtual-time scraper over the metrics registry.
//!
//! The flight recorder ([`crate::metrics`]) answers *how much* — whole-run
//! totals. This module answers *when*: the runtime snapshots the registry
//! every `window` of virtual time into per-metric series, so phase-local
//! pathologies (a hot-row flare-up in one training phase, a straggler that
//! only appears after fleet recovery, a convergence stall forty iterations
//! in) stop being averaged away.
//!
//! ## Determinism constraints (same invariant as the flight recorder)
//!
//! Scraping is **not** a scheduler yield point and spawns no process: it is
//! driven lazily from inside the runtime's existing lock, immediately before
//! each registry/clock mutation. Between two mutations the registry is
//! constant, so "the registry state at window boundary `B`" is exactly "the
//! registry state at the last mutation before `B`" — no sampling process is
//! needed, and a scraped run is **byte-identical** (same `SimReport`
//! statistics, same trace, same metrics) to an unscraped same-seed run.
//! `crates/simnet/tests/sim_timeseries.rs` asserts this.
//!
//! ## What a window records
//!
//! * **Counters** become per-window deltas (a rate once divided by the
//!   window length).
//! * **Gauges** are sampled: the value as of the window's end.
//! * **Histograms** become per-window `(count, sum_ns)` deltas.
//! * **Per process**: busy-time delta and mailbox depth at the window end —
//!   the inputs of the straggler and queue-growth detectors in
//!   [`crate::watchdog`].
//!
//! Windows live in a ring buffer of bounded `capacity`; when a run outlives
//! it, the oldest windows are dropped (and counted), never resized — memory
//! stays bounded and layout never depends on the data.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::metrics::{json_str, MetricsSnapshot};
use crate::time::SimTime;

/// Default ring capacity: enough for the benches' runs at millisecond
/// windows without unbounded growth on pathological configs.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Per-window delta of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistDelta {
    /// Observations recorded within the window.
    pub count: u64,
    /// Sum of the durations recorded within the window, in nanoseconds.
    pub sum_ns: u64,
    /// Sparse log-linear bucket deltas `(bucket index, count)` in index
    /// order — the window's own sample distribution, so per-window tail
    /// quantiles (p99/p999) are computable, which is what the watchdog's
    /// SLO burn-rate detector consumes.
    pub buckets: Vec<(u32, u64)>,
}

impl HistDelta {
    /// Quantile upper bound over this window's samples (log-linear bucket
    /// resolution: within `2^-SUB_BITS` ≈ 3.1% of the true value). Zero for
    /// an empty window.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        crate::metrics::sparse_quantile_ns(&self.buckets, self.count, q)
    }

    /// Samples in this window strictly above `target_ns`'s bucket — the
    /// "bad event" count of a latency SLO. Boundary samples inside the
    /// target's own bucket count as good (one-bucket blur, ≤ 3.1%).
    pub fn over_target(&self, target_ns: u64) -> u64 {
        let cut = crate::metrics::bucket_of(target_ns) as u32;
        self.buckets
            .iter()
            .filter(|&&(k, _)| k > cut)
            .map(|&(_, c)| c)
            .sum()
    }
}

/// Delta between two sparse bucket lists (both in index order; `cur` has
/// grown monotonically from `prev`).
fn sparse_delta(cur: &[(u32, u64)], prev: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    let mut pi = 0usize;
    for &(k, c) in cur {
        while pi < prev.len() && prev[pi].0 < k {
            pi += 1;
        }
        let p = if pi < prev.len() && prev[pi].0 == k {
            prev[pi].1
        } else {
            0
        };
        if c > p {
            out.push((k, c - p));
        }
    }
    out
}

/// One process's sample inside a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcSample {
    /// Busy (compute) time charged within the window, in nanoseconds.
    pub busy_ns: u64,
    /// Mailbox depth as of the window's end.
    pub mailbox: u64,
}

/// One completed scrape window.
#[derive(Clone, Debug, PartialEq)]
pub struct TsWindow {
    /// Window index: the window covers virtual time
    /// `[index * window_ns, end_ns)`.
    pub index: u64,
    /// End of the window. `(index + 1) * window_ns` for complete windows;
    /// earlier for the final partial window flushed at run end.
    pub end_ns: u64,
    /// Counter deltas within the window (zero deltas omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values as of the window's end (every gauge ever set).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram deltas within the window (empty deltas omitted).
    pub hists: BTreeMap<String, HistDelta>,
    /// Per-process samples, indexed like `SimReport::procs`. Processes
    /// spawned after this window closed are absent.
    pub procs: Vec<ProcSample>,
}

impl TsWindow {
    /// Counter delta, zero when the counter did not move in this window.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at the window's end, if set by then.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Sum of counter deltas whose key starts with `prefix`.
    pub fn counter_sum_prefixed(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }
}

/// The scraped series of a finished run, carried on
/// [`SimReport::timeseries`](crate::SimReport::timeseries).
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    /// Scrape interval in virtual nanoseconds.
    pub window_ns: u64,
    /// Windows in index order. The first retained window's index is
    /// `dropped_windows` when the ring overflowed.
    pub windows: Vec<TsWindow>,
    /// Oldest windows evicted by the ring buffer.
    pub dropped_windows: u64,
}

impl TimeSeries {
    /// The window covering virtual time `t`, if retained.
    pub fn window_at(&self, t: SimTime) -> Option<&TsWindow> {
        let idx = t.as_nanos() / self.window_ns.max(1);
        self.windows.iter().find(|w| w.index == idx)
    }

    /// Serialize to JSON in the workspace's hand-rolled style: integers and
    /// `BTreeMap` order only, byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"window_ns\": {},", self.window_ns);
        let _ = writeln!(s, "  \"dropped_windows\": {},", self.dropped_windows);
        s.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let _ = write!(s, "    {{\"index\": {}, \"end_ns\": {}", w.index, w.end_ns);
            s.push_str(", \"counters\": {");
            for (j, (k, v)) in w.counters.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{}: {}",
                    if j == 0 { "" } else { ", " },
                    json_str(k),
                    v
                );
            }
            s.push_str("}, \"gauges\": {");
            for (j, (k, v)) in w.gauges.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{}: {}",
                    if j == 0 { "" } else { ", " },
                    json_str(k),
                    v
                );
            }
            s.push_str("}, \"hists\": {");
            for (j, (k, h)) in w.hists.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{}: {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [",
                    if j == 0 { "" } else { ", " },
                    json_str(k),
                    h.count,
                    h.sum_ns
                );
                for (bi, &(bk, bc)) in h.buckets.iter().enumerate() {
                    let _ = write!(s, "{}[{}, {}]", if bi == 0 { "" } else { ", " }, bk, bc);
                }
                s.push_str("]}");
            }
            s.push_str("}, \"procs\": [");
            for (j, p) in w.procs.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}[{}, {}]",
                    if j == 0 { "" } else { ", " },
                    p.busy_ns,
                    p.mailbox
                );
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.windows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The in-run recorder. Lives inside the runtime's shared state; the
/// runtime calls [`TsRecorder::due`] (one comparison) before every registry
/// or clock mutation and [`TsRecorder::roll`] only when a window boundary
/// has been crossed.
#[derive(Debug)]
pub(crate) struct TsRecorder {
    window_ns: u64,
    capacity: usize,
    /// Nanosecond timestamp of the next boundary to emit
    /// (`(completed + 1) * window_ns`).
    next_boundary: u64,
    /// Complete windows emitted so far (== index of the next one).
    completed: u64,
    /// Registry state as of the last emitted boundary.
    last: MetricsSnapshot,
    /// Per-proc busy as of the last emitted boundary.
    last_busy: Vec<u64>,
    windows: VecDeque<TsWindow>,
    dropped: u64,
}

impl TsRecorder {
    pub(crate) fn new(window: SimTime, capacity: usize) -> TsRecorder {
        let window_ns = window.as_nanos().max(1);
        TsRecorder {
            window_ns,
            capacity: capacity.max(1),
            next_boundary: window_ns,
            completed: 0,
            last: MetricsSnapshot::default(),
            last_busy: Vec::new(),
            windows: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Has virtual time `t` crossed the next window boundary?
    #[inline]
    pub(crate) fn due(&self, t: SimTime) -> bool {
        t.as_nanos() >= self.next_boundary
    }

    fn push(&mut self, w: TsWindow) {
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(w);
    }

    /// Build the delta window `[self.next_boundary - window_ns,
    /// self.next_boundary)` against `self.last`, then advance the baseline.
    fn emit(
        &mut self,
        end_ns: u64,
        metrics: &MetricsSnapshot,
        procs: &[(u64, u64)], // (busy_ns, mailbox)
    ) {
        let mut counters = BTreeMap::new();
        for (k, v) in metrics.counters() {
            let delta = v - self.last.counter(k);
            if delta > 0 {
                counters.insert(k.to_string(), delta);
            }
        }
        let gauges: BTreeMap<String, i64> =
            metrics.gauges().map(|(k, v)| (k.to_string(), v)).collect();
        let mut hists = BTreeMap::new();
        for (k, h) in metrics.hists() {
            let prev = self.last.hist(k);
            let (lc, ls) = prev.map(|p| (p.count(), p.sum_ns())).unwrap_or((0, 0));
            let count = h.count() - lc;
            if count > 0 {
                let prev_buckets = prev.map(|p| p.sparse_buckets()).unwrap_or_default();
                hists.insert(
                    k.to_string(),
                    HistDelta {
                        count,
                        sum_ns: h.sum_ns() - ls,
                        buckets: sparse_delta(&h.sparse_buckets(), &prev_buckets),
                    },
                );
            }
        }
        let samples: Vec<ProcSample> = procs
            .iter()
            .enumerate()
            .map(|(i, &(busy, mailbox))| ProcSample {
                busy_ns: busy - self.last_busy.get(i).copied().unwrap_or(0),
                mailbox,
            })
            .collect();
        self.push(TsWindow {
            index: self.completed,
            end_ns,
            counters,
            gauges,
            hists,
            procs: samples,
        });
        self.last = metrics.clone();
        self.last_busy = procs.iter().map(|&(b, _)| b).collect();
    }

    /// Emit every complete window up to virtual time `t`. The registry has
    /// not changed since the previous `roll`, so the first catch-up window
    /// carries the deltas and any further ones are empty repeats of the
    /// same state.
    pub(crate) fn roll(&mut self, t: SimTime, metrics: &MetricsSnapshot, procs: &[(u64, u64)]) {
        let mut first = true;
        while self.next_boundary <= t.as_nanos() {
            if first {
                self.emit(self.next_boundary, metrics, procs);
                first = false;
            } else {
                // Nothing moved between consecutive boundaries: an empty
                // delta window with the same sampled gauges/mailboxes.
                let gauges: BTreeMap<String, i64> =
                    metrics.gauges().map(|(k, v)| (k.to_string(), v)).collect();
                let samples: Vec<ProcSample> = procs
                    .iter()
                    .map(|&(_, mailbox)| ProcSample {
                        busy_ns: 0,
                        mailbox,
                    })
                    .collect();
                let w = TsWindow {
                    index: self.completed,
                    end_ns: self.next_boundary,
                    counters: BTreeMap::new(),
                    gauges,
                    hists: BTreeMap::new(),
                    procs: samples,
                };
                self.push(w);
            }
            self.completed += 1;
            self.next_boundary = (self.completed + 1) * self.window_ns;
        }
    }

    /// Run-end flush: emit the complete windows below `t`, then the final
    /// partial window `[completed * window_ns, t]`, and hand the series out.
    pub(crate) fn finish(
        mut self,
        t: SimTime,
        metrics: &MetricsSnapshot,
        procs: &[(u64, u64)],
    ) -> TimeSeries {
        self.roll(t, metrics, procs);
        // The trailing partial window, if anything happened after the last
        // boundary (or nothing ever crossed one).
        let start = self.completed * self.window_ns;
        if t.as_nanos() > start || self.completed == 0 {
            self.emit(t.as_nanos().max(start), metrics, procs);
        }
        TimeSeries {
            window_ns: self.window_ns,
            windows: self.windows.into_iter().collect(),
            dropped_windows: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        for &(k, v) in pairs {
            m.add(k, v);
        }
        m
    }

    #[test]
    fn counters_become_windowed_deltas() {
        let mut r = TsRecorder::new(SimTime::from_millis(1), 64);
        let m1 = snap(&[("a", 3)]);
        assert!(!r.due(SimTime::from_micros(900)));
        assert!(r.due(SimTime::from_millis(1)));
        r.roll(SimTime::from_millis(1), &m1, &[(100, 0)]);
        let m2 = snap(&[("a", 8)]);
        let ts = r.finish(SimTime::from_micros(2_500), &m2, &[(250, 2)]);
        assert_eq!(ts.windows.len(), 3); // two complete + the partial tail
        assert_eq!(ts.windows[0].counter("a"), 3);
        assert_eq!(ts.windows[0].procs[0].busy_ns, 100);
        // Window 1 closes at 2 ms with the registry already at a=8.
        assert_eq!(ts.windows[1].counter("a"), 5);
        assert_eq!(ts.windows[1].procs[0].busy_ns, 150);
        assert_eq!(ts.windows[2].index, 2);
        assert_eq!(ts.windows[2].end_ns, 2_500_000);
        assert_eq!(ts.windows[2].counter("a"), 0);
        assert_eq!(ts.windows[2].procs[0].mailbox, 2);
    }

    #[test]
    fn idle_gaps_emit_empty_windows_and_ring_caps_them() {
        let mut r = TsRecorder::new(SimTime::from_millis(1), 4);
        let m = snap(&[("a", 1)]);
        // Jump 10 windows at once: ring keeps the newest 4.
        r.roll(SimTime::from_millis(10), &m, &[(7, 1)]);
        let ts = r.finish(SimTime::from_millis(10), &m, &[(7, 1)]);
        assert_eq!(ts.windows.len(), 4);
        assert_eq!(ts.dropped_windows, 6);
        assert_eq!(ts.windows.first().unwrap().index, 6);
        // Only the first emitted window carried the delta; it was dropped,
        // and the retained repeats are empty but keep the mailbox sample.
        assert_eq!(ts.windows[0].counter("a"), 0);
        assert_eq!(ts.windows[0].procs[0].mailbox, 1);
    }

    #[test]
    fn gauges_sample_and_hists_delta() {
        let mut r = TsRecorder::new(SimTime::from_millis(1), 64);
        let mut m = MetricsSnapshot::default();
        m.gauge_set("g", 5);
        m.observe("h", SimTime(100));
        m.observe("h", SimTime(200));
        r.roll(SimTime::from_millis(1), &m, &[]);
        m.gauge_set("g", -2);
        m.observe("h", SimTime(50));
        let ts = r.finish(SimTime::from_micros(1_500), &m, &[]);
        assert_eq!(ts.windows[0].gauge("g"), Some(5));
        assert_eq!(
            ts.windows[0].hists["h"],
            HistDelta {
                count: 2,
                sum_ns: 300,
                buckets: vec![
                    (crate::metrics::bucket_of(100) as u32, 1),
                    (crate::metrics::bucket_of(200) as u32, 1),
                ],
            }
        );
        assert_eq!(ts.windows[1].gauge("g"), Some(-2));
        assert_eq!(
            ts.windows[1].hists["h"],
            HistDelta {
                count: 1,
                sum_ns: 50,
                buckets: vec![(crate::metrics::bucket_of(50) as u32, 1)],
            }
        );
        // The second window's delta buckets see only its own sample, so the
        // per-window p999 tracks the window, not the run.
        assert_eq!(ts.windows[1].hists["h"].quantile_ns(0.999), 50);
        assert_eq!(ts.windows[0].hists["h"].over_target(150), 1);
        assert_eq!(ts.windows[0].hists["h"].over_target(500), 0);
    }

    #[test]
    fn window_at_finds_by_index() {
        let mut r = TsRecorder::new(SimTime::from_millis(1), 64);
        let m = snap(&[("a", 1)]);
        r.roll(SimTime::from_millis(3), &m, &[]);
        let ts = r.finish(SimTime::from_millis(3), &m, &[]);
        assert_eq!(ts.window_at(SimTime::from_micros(1_200)).unwrap().index, 1);
        assert!(ts.window_at(SimTime::from_millis(9)).is_none());
    }

    #[test]
    fn json_is_stable_and_integer_only() {
        let mut r = TsRecorder::new(SimTime::from_millis(1), 64);
        let m = snap(&[("a.b", 2)]);
        r.roll(SimTime::from_millis(1), &m, &[(10, 1)]);
        let ts = r.finish(SimTime::from_millis(1), &m, &[(10, 1)]);
        let j = ts.to_json();
        assert!(j.contains("\"window_ns\": 1000000"));
        assert!(j.contains("\"a.b\": 2"));
        assert!(j.contains("[10, 1]"));
        assert!(!j.contains('.') || j.contains("\"a.b\""), "{j}");
    }
}
