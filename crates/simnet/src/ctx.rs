//! The handle through which process code talks to the simulator.

use std::any::Any;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::SimConfig;
use crate::hostprof::{self, Scope as ProfScope};
use crate::message::{Envelope, WireSize};
use crate::reqtrace::ReqToken;
use crate::runtime::{MatchSpec, ProcId, Shared};
use crate::time::SimTime;

/// One outbound request of a traced scatter-gather batch:
/// `(dst, tag, payload, wire bytes, request-trace token)`.
pub type TracedRequest = (ProcId, u32, Box<dyn Any + Send>, u64, Option<ReqToken>);

/// Per-process simulator handle: messaging, virtual time, RNG, spawning.
///
/// Obtained as the argument of the closure passed to
/// [`crate::SimRuntime::spawn`]. All methods are *yield points*: the
/// scheduler may run other processes before the call returns.
pub struct SimCtx {
    shared: Arc<Shared>,
    me: ProcId,
    rng: StdRng,
}

impl SimCtx {
    pub(crate) fn new(shared: Arc<Shared>, me: ProcId) -> SimCtx {
        let seed = shared
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me.0 as u64 + 1);
        SimCtx {
            shared,
            me,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.me
    }

    /// This process's spawn-time name (e.g. `"server-2"`). Meant for
    /// diagnostics — panic messages that name the offending proc. Not a
    /// yield point.
    pub fn proc_name(&self) -> String {
        self.shared.proc_name(self.me.0)
    }

    /// Current virtual time of this process.
    pub fn now(&self) -> SimTime {
        self.shared.now(self.me.0)
    }

    /// The simulation configuration (network and compute cost models).
    pub fn config(&self) -> &SimConfig {
        &self.shared.cfg
    }

    /// Deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ---- virtual time ----------------------------------------------------

    /// Advance this process's clock by `dt` of busy (compute) time.
    pub fn advance(&mut self, dt: SimTime) {
        self.shared.advance(self.me.0, dt);
    }

    /// Charge `flops` floating-point operations of compute time.
    pub fn charge_flops(&mut self, flops: u64) {
        let dt = self.shared.cfg.compute.flops_time(flops);
        self.advance(dt);
    }

    /// Charge a memory-bound scan over `bytes` bytes.
    pub fn charge_mem(&mut self, bytes: u64) {
        let dt = self.shared.cfg.compute.mem_time(bytes);
        self.advance(dt);
    }

    /// Charge one task-dispatch overhead (scheduling, task deserialization).
    pub fn charge_task_overhead(&mut self) {
        let dt = self.shared.cfg.compute.task_overhead;
        self.advance(dt);
    }

    // ---- plain messaging ---------------------------------------------------

    /// Send a one-way message of declared wire size `bytes`.
    pub fn send<P: Any + Send>(&mut self, dst: ProcId, tag: u32, payload: P, bytes: u64) {
        self.shared.send_env(
            self.me.0,
            dst,
            tag,
            0,
            false,
            Box::new(payload),
            bytes,
            None,
        );
    }

    /// Send a one-way message whose wire size is computed from the payload.
    pub fn send_t<P: Any + Send + WireSize>(&mut self, dst: ProcId, tag: u32, payload: P) {
        let bytes = {
            let _prof = hostprof::scope(ProfScope::CodecEncode);
            payload.wire_size()
        };
        self.send(dst, tag, payload, bytes);
    }

    /// Receive the next message (any kind), blocking in virtual time.
    pub fn recv(&mut self) -> Envelope {
        self.shared
            .block_recv(self.me.0, MatchSpec::Any, None)
            .expect("recv without deadline returned None")
    }

    /// Receive the next message, or `None` once the virtual clock reaches
    /// `deadline` with nothing delivered.
    pub fn recv_deadline(&mut self, deadline: SimTime) -> Option<Envelope> {
        self.shared
            .block_recv(self.me.0, MatchSpec::Any, Some(deadline))
    }

    /// Receive the next message, waiting at most `dt` of virtual time.
    pub fn recv_timeout(&mut self, dt: SimTime) -> Option<Envelope> {
        let deadline = self.now() + dt;
        self.recv_deadline(deadline)
    }

    // ---- RPC ----------------------------------------------------------------

    /// Synchronous call: send a request, block for the matching reply.
    /// Unrelated messages arriving meanwhile stay queued.
    pub fn call<P: Any + Send>(
        &mut self,
        dst: ProcId,
        tag: u32,
        payload: P,
        bytes: u64,
    ) -> Envelope {
        let corr = self.shared.next_corr();
        self.shared.send_env(
            self.me.0,
            dst,
            tag,
            corr,
            false,
            Box::new(payload),
            bytes,
            None,
        );
        self.shared
            .block_recv(self.me.0, MatchSpec::Replies(vec![corr]), None)
            .expect("reply wait returned None")
    }

    /// Typed synchronous call with automatic wire sizing of the request.
    pub fn call_t<Req, Resp>(&mut self, dst: ProcId, tag: u32, req: Req) -> Resp
    where
        Req: Any + Send + WireSize,
        Resp: 'static,
    {
        let bytes = {
            let _prof = hostprof::scope(ProfScope::CodecEncode);
            req.wire_size()
        };
        self.call(dst, tag, req, bytes).downcast::<Resp>()
    }

    /// Scatter-gather: issue all requests (transfers overlap in the network
    /// model), then gather the replies. The result is ordered like the
    /// request list regardless of arrival order.
    pub fn call_many(
        &mut self,
        requests: Vec<(ProcId, u32, Box<dyn Any + Send>, u64)>,
    ) -> Vec<Envelope> {
        let n = requests.len();
        let mut corr_order = Vec::with_capacity(n);
        for (dst, tag, payload, bytes) in requests {
            let corr = self.shared.next_corr();
            corr_order.push(corr);
            self.shared
                .send_env(self.me.0, dst, tag, corr, false, payload, bytes, None);
        }
        let mut pending = corr_order.clone();
        let mut replies: Vec<Option<Envelope>> = (0..n).map(|_| None).collect();
        while !pending.is_empty() {
            let env = self
                .shared
                .block_recv(self.me.0, MatchSpec::Replies(pending.clone()), None)
                .expect("gather wait returned None");
            let idx = corr_order
                .iter()
                .position(|&c| c == env.corr)
                .expect("unknown correlation id");
            pending.retain(|&c| c != env.corr);
            replies[idx] = Some(env);
        }
        replies
            .into_iter()
            .map(|e| e.expect("missing reply"))
            .collect()
    }

    /// Deadline-aware scatter-gather: like [`SimCtx::call_many`], but gives
    /// up waiting once the virtual clock reaches `deadline`. Slot `i` of the
    /// result is `None` when request `i`'s reply had not arrived by then —
    /// either the peer is dead (mail to dead processes is dropped, so the
    /// reply will never come) or merely slow. A late reply stays queued
    /// under its own correlation id and can never be mistaken for another
    /// call's; receive loops using [`SimCtx::recv`] should skip stray
    /// replies via [`Envelope::is_reply`].
    pub fn call_many_deadline(
        &mut self,
        requests: Vec<(ProcId, u32, Box<dyn Any + Send>, u64)>,
        deadline: SimTime,
    ) -> Vec<Option<Envelope>> {
        let traced = requests
            .into_iter()
            .map(|(dst, tag, payload, bytes)| (dst, tag, payload, bytes, None))
            .collect();
        self.call_many_deadline_traced(traced, deadline)
    }

    /// [`SimCtx::call_many_deadline`] with an optional request-trace token
    /// per request (attached by the fabric when request tracing is enabled;
    /// replies carry the token back automatically).
    pub fn call_many_deadline_traced(
        &mut self,
        requests: Vec<TracedRequest>,
        deadline: SimTime,
    ) -> Vec<Option<Envelope>> {
        let n = requests.len();
        let mut corr_order = Vec::with_capacity(n);
        for (dst, tag, payload, bytes, req) in requests {
            let corr = self.shared.next_corr();
            corr_order.push(corr);
            self.shared
                .send_env(self.me.0, dst, tag, corr, false, payload, bytes, req);
        }
        let mut pending = corr_order.clone();
        let mut replies: Vec<Option<Envelope>> = (0..n).map(|_| None).collect();
        while !pending.is_empty() {
            let Some(env) = self.shared.block_recv(
                self.me.0,
                MatchSpec::Replies(pending.clone()),
                Some(deadline),
            ) else {
                break;
            };
            let idx = corr_order
                .iter()
                .position(|&c| c == env.corr)
                .expect("unknown correlation id");
            pending.retain(|&c| c != env.corr);
            replies[idx] = Some(env);
        }
        replies
    }

    /// Low-level request send: like [`SimCtx::call`] but non-blocking;
    /// returns the correlation id to pass to [`SimCtx::recv_reply`].
    pub fn send_request<P: Any + Send>(
        &mut self,
        dst: ProcId,
        tag: u32,
        payload: P,
        bytes: u64,
    ) -> u64 {
        let corr = self.shared.next_corr();
        self.shared.send_env(
            self.me.0,
            dst,
            tag,
            corr,
            false,
            Box::new(payload),
            bytes,
            None,
        );
        corr
    }

    /// Wait for a reply to any of the given correlation ids, optionally up
    /// to a virtual-time deadline. Unrelated messages stay queued. Used by
    /// schedulers that must detect dead peers via timeouts.
    pub fn recv_reply(&mut self, corrs: &[u64], deadline: Option<SimTime>) -> Option<Envelope> {
        self.shared
            .block_recv(self.me.0, MatchSpec::Replies(corrs.to_vec()), deadline)
    }

    /// Allocate a correlation token that a *different* process can later
    /// answer with [`SimCtx::send_token_reply`]; wait for it with
    /// [`SimCtx::recv_reply`]. Used for acknowledgement fan-ins that are
    /// not direct request/response pairs (e.g. relayed broadcasts).
    pub fn alloc_reply_token(&mut self) -> u64 {
        self.shared.next_corr()
    }

    /// Complete a token allocated by `dst` via
    /// [`SimCtx::alloc_reply_token`].
    pub fn send_token_reply<P: Any + Send>(
        &mut self,
        dst: ProcId,
        tag: u32,
        token: u64,
        payload: P,
        bytes: u64,
    ) {
        self.shared.send_env(
            self.me.0,
            dst,
            tag,
            token,
            true,
            Box::new(payload),
            bytes,
            None,
        );
    }

    /// Reply to a request received via [`SimCtx::recv`].
    pub fn reply<P: Any + Send>(&mut self, request: &Envelope, payload: P, bytes: u64) {
        assert_ne!(request.corr, 0, "reply target was not sent with call()");
        self.shared.send_env(
            self.me.0,
            request.src,
            request.tag,
            request.corr,
            true,
            Box::new(payload),
            bytes,
            request.req,
        );
    }

    /// Reply with an already type-erased payload. The fabric's envelope
    /// handler executes sub-requests generically and collects their replies
    /// as `Box<dyn Any>`; this avoids wrapping each in a second box.
    pub fn reply_boxed(&mut self, request: &Envelope, payload: Box<dyn Any + Send>, bytes: u64) {
        assert_ne!(request.corr, 0, "reply target was not sent with call()");
        self.shared.send_env(
            self.me.0,
            request.src,
            request.tag,
            request.corr,
            true,
            payload,
            bytes,
            request.req,
        );
    }

    /// Typed reply with automatic wire sizing.
    pub fn reply_t<P: Any + Send + WireSize>(&mut self, request: &Envelope, payload: P) {
        let bytes = {
            let _prof = hostprof::scope(ProfScope::CodecEncode);
            payload.wire_size()
        };
        self.reply(request, payload, bytes);
    }

    // ---- flight recorder ---------------------------------------------------

    /// Increment a named counter in the run's metrics registry.
    ///
    /// Unlike every other `SimCtx` method this is **not** a yield point: no
    /// clock moves and no other process runs, so instrumented code keeps the
    /// exact timing of uninstrumented code.
    pub fn metric_add(&mut self, name: &str, delta: u64) {
        self.shared.metric_add(self.me.0, name, delta);
    }

    /// Set a named gauge to an absolute value. Not a yield point.
    pub fn metric_gauge_set(&mut self, name: &str, value: i64) {
        self.shared.metric_gauge_set(self.me.0, name, value);
    }

    /// Record a virtual-time duration into a named histogram. Not a yield
    /// point.
    pub fn metric_observe(&mut self, name: &str, dt: SimTime) {
        self.shared.metric_observe(self.me.0, name, dt);
    }

    /// Annotate the event trace with a labeled timeline mark at this
    /// process's current clock (no-op unless tracing is enabled on the
    /// builder). Not a yield point.
    pub fn trace_mark(&mut self, label: &'static str) {
        self.shared.trace_mark(self.me.0, label, None);
    }

    /// Like [`SimCtx::trace_mark`], with a machine-readable `u64` payload
    /// (task id, partition, slot — whatever the label's convention is).
    /// Not a yield point.
    pub fn trace_mark_with(&mut self, label: &'static str, payload: u64) {
        self.shared.trace_mark(self.me.0, label, Some(payload));
    }

    /// Mint request-trace tokens for one fabric op issued by this process:
    /// one token per request in the batch, to be attached via
    /// [`SimCtx::call_many_deadline_traced`]. Returns an empty vec when
    /// request tracing is off ([`crate::SimBuilder::reqtrace`]). Minting
    /// seals this process's previous batch (closing its cache-fill window).
    /// Not a yield point — ids come from the trace recorder's own counter,
    /// so traced runs keep the exact timing of untraced ones.
    pub fn req_begin_batch(&mut self, op: &str, n: usize) -> Vec<ReqToken> {
        self.shared.req_begin_batch(self.me.0, op, n)
    }

    /// Attribute `dt` of post-gather client work (e.g. parameter-cache
    /// fill) to this process's most recently completed request batch, and
    /// seal the batch. No-op when request tracing is off. Not a yield
    /// point.
    pub fn req_cache_fill(&mut self, dt: SimTime) {
        self.shared.req_cache_fill(self.me.0, dt);
    }

    /// Label subsequent compute charges with an op name (e.g. the PS request
    /// kind being served) until [`SimCtx::op_label_clear`]. Recorded on
    /// `TraceEvent::Compute` so causal analysis can break compute down by
    /// op; no-op unless tracing is enabled. Not a yield point.
    pub fn op_label(&mut self, label: &'static str) {
        self.shared.set_op_label(self.me.0, Some(label));
    }

    /// Clear the label set by [`SimCtx::op_label`]. Not a yield point.
    pub fn op_label_clear(&mut self) {
        self.shared.set_op_label(self.me.0, None);
    }

    // ---- topology management -------------------------------------------------

    /// Spawn a new non-daemon process at this process's current clock.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        let now = self.now();
        self.shared.spawn_impl(name, false, now, Box::new(f))
    }

    /// Spawn a new daemon process at this process's current clock.
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        let now = self.now();
        self.shared.spawn_impl(name, true, now, Box::new(f))
    }

    /// Spawn a non-daemon steppable agent at this process's current clock
    /// (see [`crate::Proc`]). The agent holds no OS thread; the scheduler
    /// steps it inline on message delivery and timer expiry.
    pub fn spawn_agent<A: crate::Proc + 'static>(&mut self, name: &str, agent: A) -> ProcId {
        let now = self.now();
        self.shared
            .spawn_agent_impl(name, false, now, Box::new(agent))
    }

    /// Spawn a daemon steppable agent at this process's current clock.
    pub fn spawn_agent_daemon<A: crate::Proc + 'static>(&mut self, name: &str, agent: A) -> ProcId {
        let now = self.now();
        self.shared
            .spawn_agent_impl(name, true, now, Box::new(agent))
    }

    /// Forcibly terminate another process (models machine failure). The
    /// victim unwinds at its next scheduling point; in-flight mail to it is
    /// dropped.
    pub fn kill(&mut self, target: ProcId) {
        self.shared.kill(self.me.0, target);
    }

    /// Whether `target` has neither finished nor been killed.
    pub fn is_alive(&self, target: ProcId) -> bool {
        self.shared.is_alive(target)
    }
}
