//! Export a recorded trace as Chrome trace-event JSON, loadable in the
//! Perfetto UI (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Layout: one Perfetto "thread" per simulated process (`tid` = process id,
//! all under `pid` 1), `X` slices for compute charges (named by op label),
//! tiny slices plus `s`/`f` flow events for every delivered message (flow id
//! = the message's run-unique `seq`), and `i` instant events for marks,
//! drops and finishes. When a [`CausalAnalysis`] is supplied, an extra
//! synthetic track (`tid` = process count) highlights the critical path,
//! one slice per attributed segment, and the analysis itself is embedded
//! under the top-level `"ps2"` key — trace viewers ignore unknown keys, but
//! `ps2-trace` reads them back without re-walking the event graph.
//!
//! The output is built from integers and `BTreeMap` iteration only, so it is
//! byte-identical across same-seed runs.

use std::fmt::Write as _;

use crate::causal::{CausalAnalysis, CausalDag};
use crate::metrics::json_str;
use crate::report::{SimReport, TraceEvent};
use crate::watchdog::{alerts_json, Alert};

/// Nanoseconds → microsecond timestamp with three decimals, via integer
/// math so formatting can never drift.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render `report` (and optionally its causal analysis) as trace-event JSON.
pub fn export_trace(report: &SimReport, analysis: Option<&CausalAnalysis>) -> String {
    export_trace_full(report, analysis, &[], None, None)
}

/// [`export_trace`] plus watchdog alerts: the alert list is embedded as an
/// `"alerts"` array inside the `"ps2"` section (alerts already annotated as
/// `Mark` events also appear on the timeline; this array carries the
/// machine-readable form `ps2-trace` diffs).
pub fn export_trace_with(
    report: &SimReport,
    analysis: Option<&CausalAnalysis>,
    alerts: &[Alert],
) -> String {
    export_trace_full(report, analysis, alerts, None, None)
}

/// [`export_trace_with`] plus an SLO sidecar and the retained causal DAG:
/// `slo` is a pre-rendered `ps2-slo-v1` JSON object (see
/// [`crate::reqtrace::slo_json`]) embedded verbatim under `"ps2"."slo"`, so
/// `ps2-trace slo` can read per-op request summaries and exemplars straight
/// out of the trace file; `dag` is embedded as `"ps2"."dag"` (schema
/// `ps2-dag-v1`, see [`CausalDag::to_json`]) so `ps2-trace whatif` can
/// replay counterfactuals without the original report. Pass the DAG built
/// *before* watchdog annotation: injected `Mark` events would otherwise be
/// replayed as fixed program-order points.
pub fn export_trace_full(
    report: &SimReport,
    analysis: Option<&CausalAnalysis>,
    alerts: &[Alert],
    slo: Option<&str>,
    dag: Option<&CausalDag>,
) -> String {
    let _prof = crate::hostprof::scope(crate::hostprof::Scope::TraceExport);
    let mut s = String::new();
    s.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push_ev = |s: &mut String, ev: String| {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&ev);
    };

    push_ev(
        &mut s,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ps2-sim\"}}"
            .to_string(),
    );
    for (i, p) in report.procs.iter().enumerate() {
        push_ev(
            &mut s,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                i,
                json_str(&p.name)
            ),
        );
    }
    if analysis.is_some() {
        push_ev(
            &mut s,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"critical-path\"}}}}",
                report.procs.len()
            ),
        );
    }

    for e in &report.trace {
        let ev = match e {
            TraceEvent::Compute {
                at,
                proc,
                dt,
                label,
            } => {
                let name = label.map(|l| report.label_name(l)).unwrap_or("compute");
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":{},\"cat\":\"compute\"}}",
                    proc.0,
                    fmt_us(at.as_nanos()),
                    fmt_us(dt.as_nanos()),
                    json_str(name)
                )
            }
            TraceEvent::Send {
                at,
                src,
                dst,
                tag,
                bytes,
                seq,
                ..
            } => {
                let slice = format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":0.001,\
                     \"name\":\"send t{}\",\"cat\":\"net\",\
                     \"args\":{{\"dst\":{},\"bytes\":{},\"seq\":{}}}}}",
                    src.0,
                    fmt_us(at.as_nanos()),
                    tag,
                    dst.0,
                    bytes,
                    seq
                );
                let flow = format!(
                    "{{\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"name\":\"msg\",\"cat\":\"flow\",\"id\":{}}}",
                    src.0,
                    fmt_us(at.as_nanos()),
                    seq
                );
                format!("{slice},\n{flow}")
            }
            TraceEvent::Recv {
                at,
                proc,
                src,
                tag,
                seq,
            } => {
                let slice = format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":0.001,\
                     \"name\":\"recv t{}\",\"cat\":\"net\",\
                     \"args\":{{\"src\":{},\"seq\":{}}}}}",
                    proc.0,
                    fmt_us(at.as_nanos()),
                    tag,
                    src.0,
                    seq
                );
                let flow = format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"name\":\"msg\",\"cat\":\"flow\",\"id\":{}}}",
                    proc.0,
                    fmt_us(at.as_nanos()),
                    seq
                );
                format!("{slice},\n{flow}")
            }
            TraceEvent::Mark {
                at,
                proc,
                label,
                payload,
            } => {
                let args = match payload {
                    Some(v) => format!(",\"args\":{{\"payload\":{v}}}"),
                    None => String::new(),
                };
                format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                     \"name\":{},\"cat\":\"mark\"{}}}",
                    proc.0,
                    fmt_us(at.as_nanos()),
                    json_str(report.label_name(*label)),
                    args
                )
            }
            TraceEvent::Drop {
                at,
                src,
                dst,
                tag,
                bytes,
                seq,
            } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"drop t{}\",\"cat\":\"drop\",\
                 \"args\":{{\"dst\":{},\"bytes\":{},\"seq\":{}}}}}",
                src.0,
                fmt_us(at.as_nanos()),
                tag,
                dst.0,
                bytes,
                seq
            ),
            TraceEvent::Finish { at, proc } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"name\":\"finish\",\"cat\":\"lifecycle\"}}",
                proc.0,
                fmt_us(at.as_nanos())
            ),
        };
        push_ev(&mut s, ev);
    }

    if let Some(a) = analysis {
        let tid = report.procs.len();
        for seg in &a.segments {
            let name = match (seg.category, seg.label.as_deref()) {
                (crate::causal::PathCategory::Compute, Some(l)) => format!("compute:{l}"),
                (c, _) => c.name().to_string(),
            };
            push_ev(
                &mut s,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":{},\"cat\":\"critical\",\"args\":{{\"proc\":{}}}}}",
                    tid,
                    fmt_us(seg.start.as_nanos()),
                    fmt_us(seg.duration_ns()),
                    json_str(&name),
                    seg.proc
                ),
            );
        }
    }
    s.push_str("\n]");

    if let Some(a) = analysis {
        s.push_str(",\n\"ps2\": {\n");
        let _ = writeln!(s, "  \"makespan_ns\": {},", a.makespan.as_nanos());
        s.push_str("  \"categories\": {");
        for (i, (name, ns)) in a.categories().iter().enumerate() {
            let _ = write!(s, "{}\"{}\": {}", if i == 0 { "" } else { ", " }, name, ns);
        }
        s.push_str("},\n");
        s.push_str("  \"compute_by_label\": {");
        for (i, (label, ns)) in a.compute_by_label.iter().enumerate() {
            let _ = write!(
                s,
                "{}{}: {}",
                if i == 0 { "" } else { ", " },
                json_str(label),
                ns
            );
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"segments\": {},", a.segments.len());
        s.push_str("  \"procs\": [\n");
        for (i, p) in a.procs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"daemon\": {}, \"finished_ns\": {}, \
                 \"busy_ns\": {}, \"slack_ns\": {}, \"critical_ns\": {}}}",
                json_str(&p.name),
                p.daemon,
                p.finished_at.as_nanos(),
                p.busy.as_nanos(),
                p.slack_ns,
                p.critical_ns
            );
            s.push_str(if i + 1 < a.procs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"drops_by_tag\": {");
        let mut first_drop = true;
        for (key, v) in report.metrics.counters() {
            if let Some(tag) = key.strip_prefix("net.dropped.tag.") {
                let _ = write!(
                    s,
                    "{}\"{}\": {}",
                    if first_drop { "" } else { ", " },
                    tag,
                    v
                );
                first_drop = false;
            }
        }
        s.push_str("},\n");
        let _ = write!(s, "  \"alerts\": {}", alerts_json(alerts));
        if let Some(sidecar) = slo {
            let _ = write!(s, ",\n  \"slo\": {sidecar}");
        }
        if let Some(d) = dag {
            let _ = write!(s, ",\n  \"dag\": {}", d.to_json());
        }
        s.push_str("\n}");
    } else if !alerts.is_empty() || slo.is_some() || dag.is_some() {
        s.push_str(",\n\"ps2\": {\n");
        let _ = write!(s, "  \"alerts\": {}", alerts_json(alerts));
        if let Some(sidecar) = slo {
            let _ = write!(s, ",\n  \"slo\": {sidecar}");
        }
        if let Some(d) = dag {
            let _ = write!(s, ",\n  \"dag\": {}", d.to_json());
        }
        s.push_str("\n}");
    }
    s.push_str("\n}\n");
    s
}
