//! The flight recorder: a deterministic registry of counters, gauges and
//! virtual-time histograms, plus the [`RunReport`] aggregation that turns a
//! finished [`SimReport`](crate::SimReport) into a per-op breakdown table
//! and a machine-readable JSON document.
//!
//! ## Determinism constraints
//!
//! Everything here must leave a run bit-for-bit reproducible:
//!
//! * All values are derived from **virtual** time or integer counters —
//!   wall-clock never enters a metric.
//! * Histograms use *fixed* log-linear (HDR-style) buckets — every power of
//!   two of nanoseconds is split into `2^SUB_BITS` equal linear sub-buckets —
//!   so the layout does not depend on the data and the relative quantile
//!   error is bounded by `2^-SUB_BITS` (3.125%), tight enough for p999.
//! * Maps are `BTreeMap`s, so iteration (and therefore rendering and JSON
//!   serialization) order is the key order, not insertion or hash order.
//! * Recording a metric is **not** a scheduler yield point: it advances no
//!   clock, consumes no sequence number, and wakes no process, so an
//!   instrumented run has exactly the timing of an uninstrumented one.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::SimReport;
use crate::time::SimTime;

/// Sub-bucket resolution: each power-of-two range of nanoseconds is split
/// into `2^SUB_BITS` equal linear sub-buckets, bounding the relative
/// quantile error at `2^-SUB_BITS` = 3.125%.
pub const SUB_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two range.
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count of the log-linear layout: values below `2^SUB_BITS`
/// get one exact bucket each; every higher power-of-two range contributes
/// `2^SUB_BITS` sub-buckets, up to the top bit of a `u64`.
pub const HIST_BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// A fixed log-linear (HDR-style) histogram over virtual-time durations
/// (nanoseconds).
///
/// Quantiles are estimated deterministically as the upper bound of the
/// bucket containing the target rank, clamped to the observed maximum.
/// Values below `2^SUB_BITS` are exact; larger values have a relative
/// error of at most `2^-SUB_BITS` (3.125%).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VtHistogram {
    /// Bucket counts, lazily grown to the highest touched index + 1 so a
    /// histogram only pays for the value range it actually observed.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    /// Meaningless (0) while empty; the first observation overwrites it.
    min_ns: u64,
    max_ns: u64,
}

/// Log-linear bucket index of a duration: exact below `2^SUB_BITS`, then
/// `(value >> (msb - SUB_BITS))` selects the linear sub-bucket inside the
/// value's power-of-two range.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < SUB_COUNT {
        ns as usize
    } else {
        let msb = 63 - ns.leading_zeros();
        let decade = (msb - SUB_BITS) as u64;
        let sub = (ns >> decade) - SUB_COUNT;
        (SUB_COUNT + decade * SUB_COUNT + sub) as usize
    }
}

/// Largest duration that lands in bucket `k` — what quantile estimation
/// reports for ranks inside that bucket.
#[inline]
pub fn bucket_upper_bound(k: usize) -> u64 {
    let k = k as u64;
    if k < SUB_COUNT {
        k
    } else {
        let decade = (k - SUB_COUNT) / SUB_COUNT;
        let sub = (k - SUB_COUNT) % SUB_COUNT;
        let lower = (SUB_COUNT + sub) << decade;
        lower + ((1u64 << decade) - 1)
    }
}

/// Deterministic quantile over a sparse `(bucket, count)` list (ascending
/// bucket order) with `count` total observations — the shared kernel for
/// [`VtHistogram::quantile_ns`] and the per-window deltas the timeseries
/// scraper keeps. Returns 0 when empty; no max clamp (callers that track an
/// observed max clamp themselves).
pub fn sparse_quantile_ns(buckets: &[(u32, u64)], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for &(k, c) in buckets {
        seen += c;
        if seen >= target {
            return bucket_upper_bound(k as usize);
        }
    }
    bucket_upper_bound(buckets.last().map(|&(k, _)| k as usize).unwrap_or(0))
}

impl VtHistogram {
    /// Record one duration.
    pub fn observe(&mut self, dt: SimTime) {
        let ns = dt.as_nanos();
        let k = bucket_of(ns);
        if self.buckets.len() <= k {
            self.buckets.resize(k + 1, 0);
        }
        self.buckets[k] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total of all recorded durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Deterministic quantile estimate (`q` in `[0, 1]`): the upper bound of
    /// the bucket holding the `ceil(q * count)`-th observation, clamped to
    /// the observed minimum and maximum. Returns 0 on an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(k).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// The non-empty buckets as ascending `(index, count)` pairs — the
    /// mergeable wire form used by the SLO sidecar and the timeseries
    /// scraper's per-window deltas.
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(k, &c)| (k as u32, c))
            .collect()
    }

    /// Rebuild a histogram from its serialized parts (the inverse of
    /// [`VtHistogram::to_json`]). `count` is derived from the bucket counts;
    /// inputs with out-of-range bucket indices are rejected.
    pub fn from_parts(
        sum_ns: u64,
        min_ns: u64,
        max_ns: u64,
        sparse: &[(u32, u64)],
    ) -> Result<VtHistogram, String> {
        let mut h = VtHistogram {
            sum_ns,
            max_ns,
            ..VtHistogram::default()
        };
        for &(k, c) in sparse {
            if k as usize >= HIST_BUCKETS {
                return Err(format!("histogram bucket index {k} out of range"));
            }
            if h.buckets.len() <= k as usize {
                h.buckets.resize(k as usize + 1, 0);
            }
            h.buckets[k as usize] += c;
            h.count += c;
        }
        h.min_ns = if h.count == 0 { 0 } else { min_ns };
        Ok(h)
    }

    /// Serialize the full histogram — summary fields plus the sparse
    /// log-linear buckets — as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"buckets\": [",
            self.count(),
            self.sum_ns(),
            self.min_ns(),
            self.max_ns(),
            self.quantile_ns(0.50),
            self.quantile_ns(0.99),
            self.quantile_ns(0.999)
        );
        for (i, (k, c)) in self.sparse_buckets().into_iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{k}, {c}]");
        }
        s.push_str("]}");
        s
    }

    /// Fold another histogram into this one. Bucket counts add; `min`/`max`
    /// combine emptiness-aware, so merging preserves every quantile's
    /// bucket-level bounds (a merged quantile never leaves the interval
    /// spanned by the inputs' same-`q` quantiles).
    pub fn merge(&mut self, other: &VtHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // min_ns is a sentinel-free field now: pick by emptiness, not by
        // raw comparison, so merging into an empty histogram stays correct.
        self.min_ns = match (self.count, other.count) {
            (0, _) => other.min_ns,
            (_, 0) => self.min_ns,
            _ => self.min_ns.min(other.min_ns),
        };
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// The in-run registry. Lives inside the runtime's shared state; processes
/// reach it through `SimCtx::metric_*`, and [`crate::SimRuntime::run`]
/// snapshots it into the final report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, VtHistogram>,
}

impl MetricsSnapshot {
    pub(crate) fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    pub(crate) fn gauge_set(&mut self, name: &str, value: i64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    pub(crate) fn observe(&mut self, name: &str, dt: SimTime) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe(dt);
        } else {
            let mut h = VtHistogram::default();
            h.observe(dt);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Counter value, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&VtHistogram> {
        self.hists.get(name)
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &VtHistogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of counters whose key starts with `prefix`.
    pub fn counter_sum_prefixed(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merge another snapshot into this one (counters and histograms add;
    /// gauges take `other`'s value).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
        for (k, &v) in &other.gauges {
            self.gauge_set(k, v);
        }
        for (k, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(k) {
                mine.merge(h);
            } else {
                self.hists.insert(k.clone(), h.clone());
            }
        }
    }
}

/// One row of the per-op breakdown: all PS-client spans of one op kind.
#[derive(Clone, Debug)]
pub struct OpRow {
    /// Op kind (protocol tag name, e.g. `pull`, `push`, `zip`).
    pub op: String,
    /// Completed client-side spans.
    pub count: u64,
    /// Request + reply bytes attributed to the op.
    pub bytes: u64,
    /// Matrix rows touched by the op's requests.
    pub rows: u64,
    /// Sum of span durations (virtual nanoseconds).
    pub sum_ns: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// This op's slice of the job's `virtual_time`, normalized so that the
    /// shares of all ops sum to `virtual_time` (within integer rounding):
    /// `share_ns = sum_ns / Σ sum_ns * virtual_time`.
    pub share_ns: u64,
}

/// Key prefix under which PS-client op spans are recorded.
const OP_SPAN_PREFIX: &str = "ps.client.op.";
const OP_SPAN_SUFFIX: &str = ".latency";

/// Key prefix under which the runtime counts dropped sends per protocol tag.
const DROP_TAG_PREFIX: &str = "net.dropped.tag.";

/// Aggregated, render-ready view of a finished run: where the virtual
/// seconds went, per op kind and compute-vs-communication.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub virtual_time: SimTime,
    /// Real time the simulation took to execute on the host. The one
    /// wall-clock value in the report — everything else is virtual.
    pub wall: std::time::Duration,
    pub total_msgs: u64,
    pub total_bytes: u64,
    pub dropped_msgs: u64,
    /// Σ `ProcStats.busy` — virtual time spent in charged computation.
    pub compute_ns: u64,
    /// Σ per-transfer wire time — virtual time spent serializing bytes onto
    /// the network (the `net.wire_ns` counter).
    pub comm_ns: u64,
    /// Per-op rows, sorted by descending `sum_ns` (ties by op name).
    pub ops: Vec<OpRow>,
    /// Dropped messages broken down by protocol tag (from the
    /// `net.dropped.tag.<tag>` counters), in ascending tag-key order. Sums
    /// to `dropped_msgs`.
    pub drops_by_tag: Vec<(String, u64)>,
    /// The full metric snapshot the rows were derived from.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Aggregate a finished simulation into the breakdown report.
    pub fn from_sim(report: &SimReport) -> RunReport {
        let m = &report.metrics;
        let compute_ns: u64 = report.procs.iter().map(|p| p.busy.as_nanos()).sum();
        let comm_ns = m.counter("net.wire_ns");

        let mut ops: Vec<OpRow> = Vec::new();
        for (key, hist) in m.hists() {
            let Some(op) = key
                .strip_prefix(OP_SPAN_PREFIX)
                .and_then(|k| k.strip_suffix(OP_SPAN_SUFFIX))
            else {
                continue;
            };
            ops.push(OpRow {
                op: op.to_string(),
                count: hist.count(),
                bytes: m.counter(&format!("{OP_SPAN_PREFIX}{op}.bytes")),
                rows: m.counter(&format!("{OP_SPAN_PREFIX}{op}.rows")),
                sum_ns: hist.sum_ns(),
                p50_ns: hist.quantile_ns(0.50),
                p99_ns: hist.quantile_ns(0.99),
                p999_ns: hist.quantile_ns(0.999),
                share_ns: 0,
            });
        }
        // Normalize shares so they account for the whole job: the op spans
        // overlap (many clients in flight at once), so raw sums are not
        // additive wall-shares; scaled to virtual_time they are.
        let total_span: u128 = ops.iter().map(|o| o.sum_ns as u128).sum();
        let vt = report.virtual_time.as_nanos() as u128;
        for o in &mut ops {
            o.share_ns = (o.sum_ns as u128 * vt).checked_div(total_span).unwrap_or(0) as u64;
        }
        ops.sort_by(|a, b| b.sum_ns.cmp(&a.sum_ns).then_with(|| a.op.cmp(&b.op)));

        let drops_by_tag: Vec<(String, u64)> = m
            .counters()
            .filter_map(|(k, v)| {
                k.strip_prefix(DROP_TAG_PREFIX)
                    .map(|tag| (tag.to_string(), v))
            })
            .collect();

        RunReport {
            virtual_time: report.virtual_time,
            wall: report.wall_time,
            total_msgs: report.total_msgs,
            total_bytes: report.total_bytes,
            dropped_msgs: report.dropped_msgs,
            compute_ns,
            comm_ns,
            ops,
            drops_by_tag,
            metrics: m.clone(),
        }
    }

    /// Fraction of `compute + comm` spent computing (0 when neither moved).
    pub fn compute_share(&self) -> f64 {
        let total = self.compute_ns + self.comm_ns;
        if total == 0 {
            0.0
        } else {
            self.compute_ns as f64 / total as f64
        }
    }

    /// The human-readable breakdown table (a Spark-UI-style stage summary).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "run breakdown — virtual time {}   {} msgs   {:.1} MB   {} dropped",
            self.virtual_time,
            self.total_msgs,
            self.total_bytes as f64 / 1e6,
            self.dropped_msgs,
        );
        let _ = writeln!(
            s,
            "compute {:.3}s ({:.1}%)   wire {:.3}s ({:.1}%)",
            self.compute_ns as f64 / 1e9,
            100.0 * self.compute_share(),
            self.comm_ns as f64 / 1e9,
            100.0 * (1.0 - self.compute_share()),
        );
        if !self.drops_by_tag.is_empty() {
            let _ = write!(s, "dropped by tag:");
            for (tag, n) in &self.drops_by_tag {
                let _ = write!(s, "  {tag}={n}");
            }
            let _ = writeln!(s);
        }
        if self.ops.is_empty() {
            let _ = writeln!(s, "(no PS op spans recorded)");
            return s;
        }
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "op", "count", "bytes", "rows", "p50", "p99", "p999", "total", "share"
        );
        let vt = self.virtual_time.as_nanos().max(1) as f64;
        for o in &self.ops {
            let _ = writeln!(
                s,
                "{:<12} {:>8} {:>12} {:>10} {:>9.3}m {:>9.3}m {:>9.3}m {:>9.3}s {:>6.1}%",
                o.op,
                o.count,
                o.bytes,
                o.rows,
                o.p50_ns as f64 / 1e6,
                o.p99_ns as f64 / 1e6,
                o.p999_ns as f64 / 1e6,
                o.sum_ns as f64 / 1e9,
                100.0 * o.share_ns as f64 / vt,
            );
        }
        s
    }

    /// Serialize to JSON. Hand-rolled (the workspace is dependency-free);
    /// integer-only fields and `BTreeMap` ordering make the output
    /// byte-identical across same-seed runs — except `wall_ms`, the one
    /// deliberate wall-clock field (host speed, machine-readable for the
    /// hostprof tooling). Byte-level comparisons must strip `wall_ms` first.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "  \"virtual_time_ns\": {},",
            self.virtual_time.as_nanos()
        );
        let _ = writeln!(s, "  \"wall_ms\": {:.3},", self.wall.as_secs_f64() * 1e3);
        let _ = writeln!(s, "  \"total_msgs\": {},", self.total_msgs);
        let _ = writeln!(s, "  \"total_bytes\": {},", self.total_bytes);
        let _ = writeln!(s, "  \"dropped_msgs\": {},", self.dropped_msgs);
        s.push_str("  \"drops_by_tag\": {");
        let mut first = true;
        for (tag, n) in &self.drops_by_tag {
            s.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(s, "    {}: {}", json_str(tag), n);
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        let _ = writeln!(s, "  \"compute_ns\": {},", self.compute_ns);
        let _ = writeln!(s, "  \"comm_ns\": {},", self.comm_ns);
        s.push_str("  \"ops\": [\n");
        for (i, o) in self.ops.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"op\": {}, \"count\": {}, \"bytes\": {}, \"rows\": {}, \
                 \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"share_ns\": {}}}",
                json_str(&o.op),
                o.count,
                o.bytes,
                o.rows,
                o.sum_ns,
                o.p50_ns,
                o.p99_ns,
                o.p999_ns,
                o.share_ns
            );
            s.push_str(if i + 1 < self.ops.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in self.metrics.counters() {
            s.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(s, "    {}: {}", json_str(k), v);
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"gauges\": {");
        let mut first = true;
        for (k, v) in self.metrics.gauges() {
            s.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(s, "    {}: {}", json_str(k), v);
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"hists\": {");
        let mut first = true;
        for (k, h) in self.metrics.hists() {
            s.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(
                s,
                "    {}: {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                json_str(k),
                h.count(),
                h.sum_ns(),
                h.min_ns(),
                h.max_ns(),
                h.quantile_ns(0.50),
                h.quantile_ns(0.99),
                h.quantile_ns(0.999)
            );
        }
        s.push_str(if first { "}\n" } else { "\n  }\n" });
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string escaping (metric keys and op names are ASCII
/// identifiers, but stay correct for anything).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_linear() {
        // Values below 2^SUB_BITS are exact.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(31), 31);
        // First log decade: [32, 64) in 32 one-wide sub-buckets.
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(63), 63);
        // [64, 128) in 32 two-wide sub-buckets.
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(65), 64);
        assert_eq!(bucket_of(66), 65);
        assert_eq!(bucket_of(127), 95);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Upper bounds invert bucket_of: every value sits at or below its
        // bucket's upper bound, and within the relative-error envelope.
        for ns in [0u64, 1, 31, 32, 63, 64, 1000, 1023, 1024, 1 << 40, u64::MAX] {
            let k = bucket_of(ns);
            let upper = bucket_upper_bound(k);
            assert!(upper >= ns, "upper {upper} < value {ns}");
            assert_eq!(bucket_of(upper), k, "upper bound must stay in bucket");
            // Relative error bound: upper < ns * (1 + 2^-SUB_BITS).
            assert!(upper - ns <= ns / (1 << SUB_BITS) + 1, "value {ns}");
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = VtHistogram::default();
        for ns in [10u64, 20, 30, 1000] {
            h.observe(SimTime(ns));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 1060);
        assert_eq!(h.min_ns(), 10);
        assert_eq!(h.max_ns(), 1000);
        // Small values are exact under the log-linear layout.
        assert_eq!(h.quantile_ns(0.5), 20);
        // p99 → 4th observation (1000) → bucket [992,1024) clamped to max.
        assert_eq!(h.quantile_ns(0.99), 1000);
        // Empty histogram.
        assert_eq!(VtHistogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn p999_tracks_the_tail_within_a_few_percent() {
        // 999 fast requests and one 100 ms straggler: p999 must see the
        // straggler, and the log-linear estimate stays within 3.125%.
        let mut h = VtHistogram::default();
        for _ in 0..999 {
            h.observe(SimTime(1_000_000)); // 1 ms
        }
        h.observe(SimTime(100_000_000)); // 100 ms
        let p999 = h.quantile_ns(0.999);
        assert!(p999 >= 1_000_000, "p999 {p999} below the bulk");
        let p9995 = h.quantile_ns(0.9995);
        assert!(
            (100_000_000..=103_125_001).contains(&p9995),
            "tail estimate {p9995} outside the error envelope"
        );
    }

    #[test]
    fn histogram_json_round_trips_through_from_parts() {
        let mut h = VtHistogram::default();
        for ns in [0u64, 5, 33, 1000, 123_456_789] {
            h.observe(SimTime(ns));
        }
        let rebuilt =
            VtHistogram::from_parts(h.sum_ns(), h.min_ns(), h.max_ns(), &h.sparse_buckets())
                .unwrap();
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.to_json(), h.to_json());
        // Out-of-range bucket indices are rejected.
        assert!(VtHistogram::from_parts(0, 0, 0, &[(HIST_BUCKETS as u32, 1)]).is_err());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero_at_every_q() {
        let h = VtHistogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 0);
        }
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample_at_every_q() {
        let mut h = VtHistogram::default();
        h.observe(SimTime(700));
        // One observation: every quantile's target rank is 1, and the
        // bucket upper bound (1023) clamps to the observed max.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 700);
        }
    }

    #[test]
    fn quantiles_collapse_when_all_samples_share_a_bucket() {
        // 513..=520 all land in bucket [512, 1024): every quantile reports
        // the same upper bound, clamped to the max sample.
        let mut h = VtHistogram::default();
        for ns in 513u64..=520 {
            h.observe(SimTime(ns));
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile_ns(q), 520);
        }
        assert_eq!(h.min_ns(), 513);
    }

    #[test]
    fn registry_counters_gauges_hists() {
        let mut m = MetricsSnapshot::default();
        m.add("a.x", 2);
        m.add("a.x", 3);
        m.add("a.y", 1);
        m.gauge_set("g", -4);
        m.observe("h", SimTime(100));
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(-4));
        assert_eq!(m.counter_sum_prefixed("a."), 6);
        assert_eq!(m.hist("h").unwrap().count(), 1);
        // Key order is sorted, not insertion order.
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.x", "a.y"]);
    }

    #[test]
    fn merge_adds_counters_and_hists() {
        let mut a = MetricsSnapshot::default();
        a.add("c", 1);
        a.observe("h", SimTime(8));
        let mut b = MetricsSnapshot::default();
        b.add("c", 2);
        b.observe("h", SimTime(16));
        b.gauge_set("g", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.hist("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(7));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
