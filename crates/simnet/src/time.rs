//! Virtual time: integer nanoseconds for exact, ordered arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds since simulation
/// start.
///
/// Integer nanoseconds keep the simulation deterministic: cost-model
/// computations happen in `f64` but are rounded once, here, so accumulated
/// clocks never depend on summation order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from (non-negative, finite) seconds, rounding to nanoseconds.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        debug_assert!(secs >= 0.0 && secs.is_finite(), "bad duration {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference: `self - other`, or zero when `other` is later.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Seconds elapsed from `start` to `self`. Convenience for plotting and
    /// per-iteration trace records.
    pub fn elapsed_since(self, start: SimTime) -> f64 {
        (self - start).as_secs_f64()
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_micros(500);
        assert_eq!((a + b).as_nanos(), 3_500_000);
        assert_eq!((a - b).as_nanos(), 2_500_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn elapsed_since_in_seconds() {
        let start = SimTime::from_millis(250);
        let end = SimTime::from_millis(1750);
        assert!((end.elapsed_since(start) - 1.5).abs() < 1e-12);
        assert_eq!(start.elapsed_since(start), 0.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_millis(2),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_millis(2));
    }
}
