//! # The request fabric — one reliable-RPC pipeline for the whole stack
//!
//! Every layer of the system that talks to a remote process needs the same
//! machinery: resolve a logical destination to a live process, scatter a
//! batch of requests with a deadline, gather replies, and on timeout decide
//! whether the peer is *slow* (resend as-is) or *replaced* (re-resolve and
//! resend). Before this module existed that pipeline was hand-rolled once
//! per `MatrixHandle` op in the PS client and again in the dataflow
//! scheduler and shuffle reader. It now lives here, exactly once.
//!
//! Two shapes are provided:
//!
//! * [`call_slots`] — the blocking scatter/gather used by PS ops and
//!   shuffle fetches: send every request, wait out the attempt deadline,
//!   resend only the holes, consult the router about route changes, and
//!   give up (panic) after a bounded number of attempts with no route
//!   progress. Each payload is wrapped in an `Arc` once at entry and every
//!   attempt ships a clone of the *handle*, so a retry resends the
//!   *identical* payload (receiver-side dedup relies on that) and the
//!   per-attempt deep clone that used to charge the `codec.encode` host
//!   scope is gone — `PS2_HOSTPROF=1` shows its self-time and allocation
//!   count drop on the gate sweep, and retried attempts no longer copy
//!   payload buffers at all. [`Envelope::downcast_ref`] sees through the
//!   `Arc`, so receivers are none the wiser.
//! * [`Dispatcher`] — the streaming form used by the task scheduler: callers
//!   dispatch requests one at a time, harvest replies as they arrive, and
//!   use [`Dispatcher::take_dead`] to reclaim requests whose destination
//!   died so they can be re-dispatched elsewhere. The caller owns the
//!   what-to-do-on-timeout policy; the dispatcher owns correlation
//!   bookkeeping and deadline waits.
//!
//! Metric names are parameterized by [`FabricPolicy::scope`] so each layer
//! keeps its historical names (`ps.client.*`, `spark.fabric.*`, ...): per-op
//! spans `{scope}.op.{op}.{count,reqs,bytes,rows,latency}`, recovery
//! counters `{scope}.{timeouts,retries,reresolutions}`, and a flat
//! `{scope}.envelopes` counter of request messages put on the wire — the
//! number that per-server coalescing exists to shrink.

use std::any::Any;
use std::collections::HashMap;

use crate::ctx::{SimCtx, TracedRequest};
use crate::hostprof::{self, Scope as ProfScope};
use crate::message::Envelope;
use crate::reqtrace::ReqToken;
use crate::runtime::ProcId;
use crate::time::SimTime;

/// Maps logical slots to live processes, with an epoch that advances
/// whenever any mapping changes. The fabric uses the epoch to distinguish a
/// *slow* destination (resend to the same process) from a *replaced* one
/// (re-resolve and resend), and calls [`SlotRouter::try_recover`] when a
/// deadline passes without any route movement.
pub trait SlotRouter {
    /// Current process serving `slot`.
    fn resolve(&self, slot: usize) -> ProcId;

    /// Route-table version; bump on any remapping. Static topologies keep 0.
    fn epoch(&self) -> u64 {
        0
    }

    /// Called after a timed-out attempt whose epoch saw no movement: the
    /// router may actively replace dead destinations (the PS fleet respawns
    /// servers from checkpoint here). Default: nothing to do.
    fn try_recover(&self, _ctx: &mut SimCtx) {}
}

/// A fixed slot→process mapping for services that are never replaced
/// (shuffle services, storage). Epoch stays 0; recovery is a no-op.
pub struct StaticRoutes(pub Vec<ProcId>);

impl SlotRouter for StaticRoutes {
    fn resolve(&self, slot: usize) -> ProcId {
        self.0[slot]
    }
}

/// Per-layer tuning of the shared pipeline.
#[derive(Clone, Copy, Debug)]
pub struct FabricPolicy {
    /// How long one scatter attempt may wait before the holes are resent.
    pub attempt_timeout: SimTime,
    /// Consecutive timed-out attempts tolerated with no route-epoch
    /// movement before the fabric declares the destination unrecoverable.
    pub max_stale_attempts: u32,
    /// Metric-name prefix; also names the layer in panic diagnostics.
    pub scope: &'static str,
}

/// Scatter `reqs` (a `(slot, payload, wire_bytes)` triple per destination),
/// gather one reply per request, and return the replies in request order.
///
/// The full reliability pipeline runs inside: deadline-bounded
/// `call_many_deadline` attempts, identical-payload resend of only the
/// missing replies, router-driven recovery and route re-resolution between
/// attempts, and a bounded-stale-attempts assert so an unreachable,
/// unreplaceable destination fails loudly instead of hanging the sim.
///
/// `op` labels the span metrics; `items` is an op-defined work measure
/// (rows touched for PS ops) recorded alongside bytes.
pub fn call_slots<P: Any + Send + Sync>(
    ctx: &mut SimCtx,
    router: &dyn SlotRouter,
    policy: &FabricPolicy,
    op: &str,
    tag: u32,
    reqs: Vec<(usize, P, u64)>,
    items: u64,
) -> Vec<Envelope> {
    // Covers the whole scatter/gather pipeline; sends, receives, metric
    // updates, and parked time all attribute to nested scopes, so this
    // scope's self time is the fabric's own bookkeeping (payload clones,
    // reply ordering, retry state).
    let _prof = hostprof::scope(ProfScope::FabricCall);
    let scope = policy.scope;
    let span_start = ctx.now();
    let mut span_bytes = 0u64;
    let n = reqs.len();
    // One trace token per logical request, kept across retries (empty when
    // request tracing is off). Replies carry the token back, so the runtime
    // can stitch together the full stage breakdown.
    let tokens: Vec<ReqToken> = ctx.req_begin_batch(op, n);
    // Wrap each payload in an Arc exactly once; attempts below clone the
    // handle, not the data. This is the simulator's stand-in for
    // serialize-once/resend-bytes, hence the codec scope.
    let reqs: Vec<(usize, std::sync::Arc<P>, u64)> = {
        let _prof = hostprof::scope(ProfScope::CodecEncode);
        reqs.into_iter()
            .map(|(slot, payload, bytes)| (slot, std::sync::Arc::new(payload), bytes))
            .collect()
    };
    let mut replies: Vec<Option<Envelope>> = (0..n).map(|_| None).collect();
    let mut epoch = router.epoch();
    let mut stale_attempts = 0u32;
    let mut reqs_issued = 0u64;
    loop {
        let outstanding: Vec<usize> = (0..n).filter(|&i| replies[i].is_none()).collect();
        if outstanding.is_empty() {
            span_bytes += replies
                .iter()
                .map(|e| e.as_ref().expect("gathered reply").bytes)
                .sum::<u64>();
            ctx.metric_add(&format!("{scope}.op.{op}.count"), 1);
            ctx.metric_add(&format!("{scope}.op.{op}.reqs"), reqs_issued);
            ctx.metric_add(&format!("{scope}.op.{op}.bytes"), span_bytes);
            ctx.metric_add(&format!("{scope}.op.{op}.rows"), items);
            ctx.metric_observe(&format!("{scope}.op.{op}.latency"), ctx.now() - span_start);
            return replies
                .into_iter()
                .map(|e| e.expect("gathered reply"))
                .collect();
        }
        // Resend exactly the identical payload: receivers dedup retried
        // mutations by op-id, which trivially holds here — every attempt
        // ships another handle to the one Arc'd payload.
        let batch: Vec<TracedRequest> = outstanding
            .iter()
            .map(|&i| {
                let (slot, payload, bytes) = &reqs[i];
                (
                    router.resolve(*slot),
                    tag,
                    Box::new(std::sync::Arc::clone(payload)) as Box<dyn Any + Send>,
                    *bytes,
                    tokens.get(i).copied(),
                )
            })
            .collect();
        reqs_issued += batch.len() as u64;
        span_bytes += batch.iter().map(|(_, _, _, b, _)| *b).sum::<u64>();
        ctx.metric_add(&format!("{scope}.envelopes"), batch.len() as u64);
        let deadline = ctx.now() + policy.attempt_timeout;
        let got = ctx.call_many_deadline_traced(batch, deadline);
        let mut missed = 0u64;
        for (&i, env) in outstanding.iter().zip(got) {
            match env {
                Some(e) => replies[i] = Some(e),
                None => missed += 1,
            }
        }
        if missed == 0 {
            continue;
        }
        ctx.metric_add(&format!("{scope}.timeouts"), missed);
        ctx.metric_add(&format!("{scope}.retries"), 1);
        // No route movement since we sent: the destination may be dead, not
        // merely slow. Give the router a chance to replace it.
        if router.epoch() == epoch {
            router.try_recover(ctx);
        }
        let now_epoch = router.epoch();
        if now_epoch == epoch {
            stale_attempts += 1;
            assert!(
                stale_attempts < policy.max_stale_attempts,
                "{scope} op {op} (tag {tag}): {stale_attempts} straight timeouts \
                 with no route change; a destination is unreachable and recovery \
                 could not replace it"
            );
        } else {
            ctx.metric_add(&format!("{scope}.reresolutions"), 1);
            stale_attempts = 0;
            epoch = now_epoch;
        }
    }
}

/// Convenience single-destination form of [`call_slots`].
#[allow(clippy::too_many_arguments)]
pub fn call_slot<P: Any + Send + Sync>(
    ctx: &mut SimCtx,
    router: &dyn SlotRouter,
    policy: &FabricPolicy,
    op: &str,
    tag: u32,
    slot: usize,
    payload: P,
    bytes: u64,
    items: u64,
) -> Envelope {
    call_slots(
        ctx,
        router,
        policy,
        op,
        tag,
        vec![(slot, payload, bytes)],
        items,
    )
    .pop()
    .expect("one reply for one request")
}

/// Bookkeeping the streaming dispatcher keeps per in-flight request.
#[derive(Clone, Copy, Debug)]
pub struct Pending {
    /// Caller-defined work item this request carries (task partition).
    pub item: usize,
    /// Caller-defined destination slot (executor index).
    pub slot: usize,
    /// When the request went on the wire — latency = reply time − this.
    pub sent_at: SimTime,
}

/// Streaming request dispatcher for callers that interleave dispatch and
/// harvest (the task scheduler): replies arrive in any order, timeouts
/// surface as `None` so the caller can probe liveness, and requests whose
/// destination died are reclaimed with [`Dispatcher::take_dead`] for
/// re-dispatch. Correlation-token bookkeeping and deadline waits live here;
/// retry *policy* stays with the caller.
pub struct Dispatcher {
    policy: FabricPolicy,
    pending: HashMap<u64, Pending>,
}

impl Dispatcher {
    pub fn new(policy: FabricPolicy) -> Self {
        Dispatcher {
            policy,
            pending: HashMap::new(),
        }
    }

    /// Put one request on the wire and start tracking it.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch<P: Any + Send>(
        &mut self,
        ctx: &mut SimCtx,
        dst: ProcId,
        tag: u32,
        payload: P,
        bytes: u64,
        item: usize,
        slot: usize,
    ) {
        let _prof = hostprof::scope(ProfScope::FabricCall);
        ctx.metric_add(&format!("{}.envelopes", self.policy.scope), 1);
        let corr = ctx.send_request(dst, tag, payload, bytes);
        self.pending.insert(
            corr,
            Pending {
                item,
                slot,
                sent_at: ctx.now(),
            },
        );
    }

    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Wait up to one attempt-timeout for any tracked reply. `None` means
    /// the deadline passed with nothing arriving — time for the caller to
    /// probe liveness.
    pub fn await_any(&mut self, ctx: &mut SimCtx) -> Option<(Pending, Envelope)> {
        let _prof = hostprof::scope(ProfScope::FabricCall);
        let corrs: Vec<u64> = self.pending.keys().copied().collect();
        let deadline = ctx.now() + self.policy.attempt_timeout;
        match ctx.recv_reply(&corrs, Some(deadline)) {
            Some(env) => {
                let entry = self
                    .pending
                    .remove(&env.corr)
                    .expect("reply matched a correlation token we stopped tracking");
                Some((entry, env))
            }
            None => {
                ctx.metric_add(&format!("{}.timeouts", self.policy.scope), 1);
                None
            }
        }
    }

    /// Remove and return every in-flight request whose destination slot
    /// fails the `alive` predicate, so the caller can re-dispatch them.
    pub fn take_dead(&mut self, mut alive: impl FnMut(usize) -> bool) -> Vec<Pending> {
        let dead_corrs: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| !alive(p.slot))
            .map(|(&c, _)| c)
            .collect();
        dead_corrs
            .into_iter()
            .map(|c| self.pending.remove(&c).unwrap())
            .collect()
    }
}
