//! # ps2-simnet — a deterministic discrete-event cluster simulator
//!
//! This crate is the substrate every other `ps2` crate runs on. It stands in
//! for the Tencent Yarn cluster used in the PS2 paper (2700 machines, 12-core
//! 2.2 GHz CPUs, 10 Gbps Ethernet): logical processes model machines, a NIC
//! model serializes transfers per endpoint, and a virtual clock measures time.
//!
//! ## Execution model
//!
//! Logical processes come in two flavors sharing one virtual clock and one
//! scheduling rule — the scheduler always resumes the *ready process with the
//! smallest virtual clock* (ties broken by process id), so sends occur in
//! non-decreasing virtual time, NIC-queue accounting stays causal, and every
//! simulation is **bit-for-bit deterministic** — the property that lets the
//! benchmark harness regenerate the paper's figures exactly.
//!
//! * **Thread procs** ([`SimRuntime::spawn`]) hold one OS thread each and are
//!   written in direct style (plain loops, blocking `recv`/`call`). At each
//!   simulator call the running process yields and the scheduler picks next.
//!   Right for at most hundreds of procs with complex sequential logic.
//! * **Steppable agents** ([`SimRuntime::spawn_agent`], the [`Proc`] trait)
//!   hold **no thread**: the scheduler steps them inline on message delivery
//!   and timer expiry, and each step runs atomically via a non-blocking
//!   [`StepCtx`]. Right for very large populations (the serving scenarios
//!   step tens of thousands of simulated endpoints this way).
//!
//! Thread procs are written in direct style (plain loops), not as event
//! handlers:
//!
//! ```
//! use ps2_simnet::{SimBuilder, WireSize};
//!
//! let mut sim = SimBuilder::new().seed(7).build();
//! let pong = sim.spawn_daemon("pong", |ctx| loop {
//!     let env = ctx.recv();
//!     let n: &u64 = env.downcast_ref();
//!     ctx.reply(&env, n + 1, 8);
//! });
//! let out = sim.spawn_collect("ping", move |ctx| {
//!     let r = ctx.call(pong, 0, 41u64, 8);
//!     *r.downcast_ref::<u64>()
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(out.take(), 42);
//! assert!(report.virtual_time.as_secs_f64() > 0.0);
//! ```
//!
//! ## Time model
//!
//! *Communication.* A message of `B` bytes from `a` to `b` queues on `a`'s
//! out-NIC (`start = max(now_a, nic_out_free_a)`), transmits at the NIC
//! bandwidth, crosses the link latency, then queues on `b`'s in-NIC. Many
//! senders converging on one receiver — the Spark-driver "single-node
//! bottleneck" of the paper's §2 — serialize on the receiver's in-NIC with no
//! special-casing.
//!
//! *Computation.* Process code calls [`SimCtx::charge_flops`] /
//! [`SimCtx::charge_mem`] / [`SimCtx::charge_task_overhead`] with the work it
//! actually performed; the cost model converts work to virtual nanoseconds.
//! The arithmetic itself runs for real, so losses and models are genuine —
//! only the clock is simulated.

pub mod causal;
mod config;
mod ctx;
pub mod fabric;
pub mod hostprof;
mod message;
pub mod metrics;
pub mod perfetto;
mod probe;
mod report;
pub mod reqtrace;
mod runtime;
mod time;
pub mod timeseries;
pub mod watchdog;
pub mod whatif;

pub use causal::{
    CausalAnalysis, CausalDag, CausalError, DagEvent, DagProc, PathCategory, PathSegment,
    ProcSummary,
};
pub use config::{ComputeConfig, NetConfig, SimConfig};
pub use ctx::SimCtx;
pub use fabric::{FabricPolicy, SlotRouter, StaticRoutes};
pub use hostprof::{HostProfile, ScopeStat};
pub use message::{Envelope, WireSize};
pub use metrics::{MetricsSnapshot, OpRow, RunReport, VtHistogram};
pub use perfetto::{export_trace, export_trace_full, export_trace_with};
pub use probe::LivenessProbe;
pub use report::{LabelId, ProcStats, SimReport, TraceEvent};
pub use reqtrace::{slo_json, OpReqStats, ReqRecord, ReqSummary, ReqToken, EXEMPLAR_K};
pub use runtime::{OutputSlot, Proc, ProcId, SimBuilder, SimError, SimRuntime, StepCtx};
pub use time::SimTime;
pub use timeseries::{HistDelta, ProcSample, TimeSeries, TsWindow, DEFAULT_CAPACITY};
pub use watchdog::{
    alerts_json, Alert, AlertKind, SloKind, SloObjective, Watchdog, WatchdogConfig,
};
pub use whatif::{
    parse_spec, replay, run_battery, standard_battery, Edit, ExperimentResult, OpTails, Replay,
    TailEst, WhatifReport,
};

/// The counting allocator is installed unconditionally (it is a single
/// relaxed atomic load in front of `System` until
/// [`hostprof::set_alloc_counting`] turns counting on), so every binary that
/// links simnet can attribute allocation pressure without a rebuild.
#[global_allocator]
static GLOBAL_ALLOC: hostprof::CountingAlloc = hostprof::CountingAlloc;
