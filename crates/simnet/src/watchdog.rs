//! Declarative per-window detectors over a run's [`TimeSeries`]: stragglers,
//! parameter-access skew, queue growth, and convergence stalls.
//!
//! The watchdog is a pure post-processing pass: it reads the windowed
//! telemetry (`SimReport::timeseries`) and the final registry, never the live
//! simulation, so it cannot perturb determinism. Evaluating window-by-window
//! in index order is equivalent to evaluating online (each window is closed
//! before the next opens), which is why alerts carry *exact* virtual
//! timestamps — the window-end boundary at which the condition held.
//!
//! [`Watchdog::annotate`] re-injects the alerts as tagged `Mark` events into
//! the causal trace, so they show up on the Perfetto timeline and in
//! `ps2-trace` output next to the events that caused them.

use crate::report::{LabelId, SimReport, TraceEvent};
use crate::runtime::ProcId;
use crate::time::SimTime;
use crate::timeseries::TsWindow;

/// What a detector saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// One process's per-window busy share is a z-score outlier vs. the
    /// fleet (idle while others work, or working while others idle —
    /// both ends of a recovery stall look like this).
    Straggler,
    /// A mailbox depth grew for K consecutive windows past a floor.
    QueueGrowth,
    /// One row of one matrix concentrates more than a share threshold of
    /// that matrix's row touches within the window.
    HotRow,
    /// Gini coefficient over per-PS-server request load exceeds threshold
    /// (non-uniform parameter access defeating the partitioning).
    ServerSkew,
    /// Training iterations ran but the loss moved less than epsilon for K
    /// consecutive active windows.
    ConvergenceStall,
    /// An SLO's error budget is burning too fast: the bad-event rate
    /// exceeded `burn × budget` over both the fast and the slow trailing
    /// window spans (multi-window burn-rate alerting — a short spike alone
    /// does not page, nor does a slow leak that the fast window has already
    /// recovered from).
    SloBurn,
}

impl AlertKind {
    /// The interned trace label under which [`Watchdog::annotate`] emits
    /// this alert's `Mark`.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Straggler => "watchdog.straggler",
            AlertKind::QueueGrowth => "watchdog.queue_growth",
            AlertKind::HotRow => "watchdog.hot_row",
            AlertKind::ServerSkew => "watchdog.server_skew",
            AlertKind::ConvergenceStall => "watchdog.stall",
            AlertKind::SloBurn => "watchdog.slo_burn",
        }
    }
}

/// What an SLO objective measures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Per-window latency objective over a registry histogram: a request
    /// slower than `target_ns` is a bad event; `budget_milli`/1000 is the
    /// tolerated bad-event fraction (1 = p99.9, 10 = p99).
    Latency {
        /// Histogram metric name, e.g. `ps.client.op.pull_rows.latency`.
        hist: String,
        target_ns: u64,
        budget_milli: u64,
    },
    /// Error-rate objective over two counters: `errors`-per-`total` must
    /// stay under `budget_milli`/1000.
    ErrorRate {
        errors: String,
        total: String,
        budget_milli: u64,
    },
}

/// One declared service-level objective, evaluated over timeseries windows
/// by [`Watchdog::evaluate_slo`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloObjective {
    /// Human-readable name, e.g. `pull_rows.p999`. Becomes the alert
    /// subject.
    pub name: String,
    pub kind: SloKind,
}

impl SloObjective {
    /// p999 latency objective: fewer than 0.1% of `hist`'s requests per
    /// window span may exceed `target`.
    pub fn latency_p999(name: &str, hist: &str, target: SimTime) -> SloObjective {
        SloObjective {
            name: name.to_string(),
            kind: SloKind::Latency {
                hist: hist.to_string(),
                target_ns: target.as_nanos(),
                budget_milli: 1,
            },
        }
    }

    /// Error-rate objective: `errors`/`total` must stay under
    /// `budget_milli`/1000.
    pub fn error_rate(name: &str, errors: &str, total: &str, budget_milli: u64) -> SloObjective {
        SloObjective {
            name: name.to_string(),
            kind: SloKind::ErrorRate {
                errors: errors.to_string(),
                total: total.to_string(),
                budget_milli,
            },
        }
    }

    /// Render in the workspace's hand-rolled JSON style (fixed key order,
    /// integers and strings only).
    pub fn to_json(&self) -> String {
        match &self.kind {
            SloKind::Latency {
                hist,
                target_ns,
                budget_milli,
            } => format!(
                "{{\"name\": {}, \"kind\": \"latency\", \"hist\": {}, \
                 \"target_ns\": {}, \"budget_milli\": {}}}",
                crate::metrics::json_str(&self.name),
                crate::metrics::json_str(hist),
                target_ns,
                budget_milli
            ),
            SloKind::ErrorRate {
                errors,
                total,
                budget_milli,
            } => format!(
                "{{\"name\": {}, \"kind\": \"error_rate\", \"errors\": {}, \
                 \"total\": {}, \"budget_milli\": {}}}",
                crate::metrics::json_str(&self.name),
                crate::metrics::json_str(errors),
                crate::metrics::json_str(total),
                budget_milli
            ),
        }
    }
}

/// One fired detector, pinned to a window boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    pub kind: AlertKind,
    /// Virtual time of the alert: the end of the window it fired in.
    pub at: SimTime,
    /// Index of the window it fired in.
    pub window: u64,
    /// Offending process (index into `SimReport::procs`), when the detector
    /// is per-process.
    pub proc: Option<usize>,
    /// What the alert is about: a process name, `m{id}.r{row}`, a metric.
    pub subject: String,
    /// Integerized measure — z-score and shares ×1000 (milli), queue depth
    /// in messages, loss delta in micros. Integer so alert lists serialize
    /// byte-identically.
    pub value_milli: i64,
}

impl Alert {
    /// The what-if experiment SPEC (see [`crate::whatif`]) that estimates
    /// what acting on this alert is worth: a straggler maps to "make that
    /// process 2× faster", queue growth to "serve that process's inbound
    /// traffic locally", hot rows / server skew to "spread the load so no
    /// fabric message queues". Returns `None` when no single edit models the
    /// fix (a convergence stall is an algorithmic problem; an SLO burn's
    /// best lever is whatever the ranked report puts first).
    pub fn whatif_spec(&self, proc_names: &[String]) -> Option<String> {
        let name = self.proc.and_then(|p| proc_names.get(p));
        match self.kind {
            AlertKind::Straggler => name.map(|n| format!("compute@proc:{n}=0.5")),
            AlertKind::QueueGrowth => name.map(|n| format!("queue@dst:{n}=0")),
            AlertKind::HotRow | AlertKind::ServerSkew => Some("queue=0".to_string()),
            AlertKind::ConvergenceStall | AlertKind::SloBurn => None,
        }
    }
}

/// Detector thresholds. All integers; the f64 intermediates inside the
/// detectors are deterministic functions of integer inputs.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// |z| threshold ×1000 for the straggler detector.
    pub straggler_z_milli: u64,
    /// Minimum fleet size for a z-score to mean anything.
    pub straggler_min_procs: usize,
    /// Consecutive growth windows before queue-growth fires.
    pub queue_windows: usize,
    /// Mailbox depth floor for queue-growth.
    pub queue_min_depth: u64,
    /// Top-row share threshold ×1000 for hot-row.
    pub hot_row_share_milli: u64,
    /// Minimum row touches in the window for hot-row.
    pub hot_row_min_touches: u64,
    /// Gini threshold ×1000 for server skew.
    pub skew_gini_milli: u64,
    /// Minimum total served requests in the window for server skew.
    pub skew_min_total: u64,
    /// Consecutive flat active windows before a stall fires.
    pub stall_windows: usize,
    /// Loss-delta epsilon in micros, applied independently to each loss
    /// gauge (`ml.loss_micro` and the per-mode `ml.loss_micro.<mode>`).
    pub stall_eps_micro: i64,
    /// Trailing windows of the fast SLO burn span (catches the spike).
    pub slo_fast_windows: usize,
    /// Trailing windows of the slow SLO burn span (confirms it is
    /// sustained).
    pub slo_slow_windows: usize,
    /// Burn-rate threshold ×1000: both spans' bad-event rate must exceed
    /// `slo_burn_milli/1000 ×` the objective's budget. 10000 = burning the
    /// budget 10× too fast.
    pub slo_burn_milli: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            straggler_z_milli: 1800,
            straggler_min_procs: 4,
            queue_windows: 3,
            queue_min_depth: 8,
            hot_row_share_milli: 500,
            hot_row_min_touches: 64,
            skew_gini_milli: 600,
            skew_min_total: 64,
            stall_windows: 3,
            stall_eps_micro: 100,
            slo_fast_windows: 3,
            slo_slow_windows: 12,
            slo_burn_milli: 10_000,
        }
    }
}

/// Evaluates the configured detectors over a finished run.
#[derive(Clone, Debug, Default)]
pub struct Watchdog {
    cfg: WatchdogConfig,
}

impl Watchdog {
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog { cfg }
    }

    /// Run every detector over `report.timeseries`, in window order (empty
    /// when the run was not scraped). Within a window, detector order is
    /// fixed: straggler, queue-growth, hot-row, server-skew, stall — so the
    /// alert list is deterministic.
    pub fn evaluate(&self, report: &SimReport) -> Vec<Alert> {
        let Some(ts) = &report.timeseries else {
            return Vec::new();
        };
        // Enumerate the per-server load counters from the *final* registry:
        // zero-delta counters are omitted from windows, and a Gini over only
        // the servers that moved would understate the skew.
        let served_keys: Vec<String> = report
            .metrics
            .counters()
            .filter(|(k, _)| k.starts_with("ps.server.p") && k.ends_with(".served"))
            .map(|(k, _)| k.to_string())
            .collect();

        let mut alerts = Vec::new();
        let mut queue_prev: Vec<u64> = Vec::new();
        let mut queue_streak: Vec<usize> = Vec::new();
        let mut stall_state: std::collections::BTreeMap<String, (usize, Option<i64>)> =
            std::collections::BTreeMap::new();

        for w in &ts.windows {
            self.straggler(w, report, &mut alerts);
            self.queue_growth(w, report, &mut queue_prev, &mut queue_streak, &mut alerts);
            self.hot_row(w, &mut alerts);
            self.server_skew(w, &served_keys, &mut alerts);
            self.stall(w, &mut stall_state, &mut alerts);
        }
        alerts
    }

    /// Evaluate declared SLO objectives over `report.timeseries` with
    /// multi-window burn-rate alerting. Per window and objective the
    /// bad-event fraction is computed over the trailing
    /// [`WatchdogConfig::slo_fast_windows`] and
    /// [`WatchdogConfig::slo_slow_windows`] spans; an alert fires — at the
    /// exact window-end virtual timestamp — only when **both** spans burn
    /// the objective's error budget faster than
    /// [`WatchdogConfig::slo_burn_milli`]/1000×. After firing, the spans
    /// reset so one sustained violation raises one alert per episode, not
    /// one per window. `value_milli` is the fast span's burn rate ×1000.
    pub fn evaluate_slo(&self, report: &SimReport, objectives: &[SloObjective]) -> Vec<Alert> {
        let Some(ts) = &report.timeseries else {
            return Vec::new();
        };
        let mut alerts = Vec::new();
        // Short runs shrink the slow span to the whole run instead of
        // never accumulating enough evidence to alert at all.
        let slow_span = self
            .cfg
            .slo_slow_windows
            .max(1)
            .min(ts.windows.len().max(1));
        for obj in objectives {
            let budget_milli = match &obj.kind {
                SloKind::Latency { budget_milli, .. } => (*budget_milli).max(1),
                SloKind::ErrorRate { budget_milli, .. } => (*budget_milli).max(1),
            };
            // Trailing (bad, total) pairs, newest last, slow-span length.
            let mut ring: std::collections::VecDeque<(u64, u64)> =
                std::collections::VecDeque::new();
            for w in &ts.windows {
                let (bad, total) = match &obj.kind {
                    SloKind::Latency {
                        hist, target_ns, ..
                    } => w
                        .hists
                        .get(hist)
                        .map(|h| (h.over_target(*target_ns), h.count))
                        .unwrap_or((0, 0)),
                    SloKind::ErrorRate { errors, total, .. } => {
                        (w.counter(errors), w.counter(total))
                    }
                };
                ring.push_back((bad, total));
                if ring.len() > slow_span {
                    ring.pop_front();
                }
                if ring.len() < slow_span {
                    // Not enough trailing evidence yet — either the run just
                    // started or an alert fired and reset the spans. This is
                    // the episode-suppression mechanism: a sustained
                    // violation must refill the slow span before it can
                    // page again.
                    continue;
                }
                let span_burn = |span: usize| -> Option<u64> {
                    let (b, t) = ring
                        .iter()
                        .rev()
                        .take(span.max(1))
                        .fold((0u64, 0u64), |(b, t), &(wb, wt)| (b + wb, t + wt));
                    // burn ×1000 = (bad/total) / (budget_milli/1000) × 1000
                    (t > 0).then(|| b.saturating_mul(1_000_000) / (t * budget_milli))
                };
                let fast = span_burn(self.cfg.slo_fast_windows);
                let slow = span_burn(slow_span);
                if let (Some(f), Some(s)) = (fast, slow) {
                    if f >= self.cfg.slo_burn_milli && s >= self.cfg.slo_burn_milli {
                        alerts.push(Alert {
                            kind: AlertKind::SloBurn,
                            at: SimTime(w.end_ns),
                            window: w.index,
                            proc: None,
                            subject: obj.name.clone(),
                            value_milli: f.min(i64::MAX as u64) as i64,
                        });
                        ring.clear();
                    }
                }
            }
        }
        // Objectives are evaluated one at a time; restore global window
        // order (ties by subject) so the list is deterministic and reads
        // like a timeline.
        alerts.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.subject.cmp(&b.subject)));
        alerts
    }

    fn straggler(&self, w: &TsWindow, report: &SimReport, alerts: &mut Vec<Alert>) {
        let n = w.procs.len();
        if n < self.cfg.straggler_min_procs {
            return;
        }
        let total: u64 = w.procs.iter().map(|p| p.busy_ns).sum();
        if total == 0 {
            return;
        }
        let mean = total as f64 / n as f64;
        let var = w
            .procs
            .iter()
            .map(|p| {
                let d = p.busy_ns as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt();
        if std <= 0.0 {
            return;
        }
        // Single worst offender per window, ties to the lowest proc id.
        let mut worst: Option<(usize, f64)> = None;
        for (i, p) in w.procs.iter().enumerate() {
            let z = (p.busy_ns as f64 - mean) / std;
            if worst.is_none_or(|(_, wz)| z.abs() > wz.abs()) {
                worst = Some((i, z));
            }
        }
        let (i, z) = worst.expect("nonempty fleet");
        let z_milli = (z * 1000.0).round() as i64;
        if z_milli.unsigned_abs() >= self.cfg.straggler_z_milli {
            alerts.push(Alert {
                kind: AlertKind::Straggler,
                at: SimTime(w.end_ns),
                window: w.index,
                proc: Some(i),
                subject: report
                    .procs
                    .get(i)
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| format!("proc#{i}")),
                value_milli: z_milli,
            });
        }
    }

    fn queue_growth(
        &self,
        w: &TsWindow,
        report: &SimReport,
        prev: &mut Vec<u64>,
        streak: &mut Vec<usize>,
        alerts: &mut Vec<Alert>,
    ) {
        if w.procs.len() > prev.len() {
            prev.resize(w.procs.len(), 0);
            streak.resize(w.procs.len(), 0);
        }
        // Single worst offender per window: deepest mailbox whose streak
        // just reached the threshold.
        let mut worst: Option<(usize, u64)> = None;
        for (i, p) in w.procs.iter().enumerate() {
            if p.mailbox > prev[i] {
                streak[i] += 1;
            } else {
                streak[i] = 0;
            }
            prev[i] = p.mailbox;
            if streak[i] >= self.cfg.queue_windows && p.mailbox >= self.cfg.queue_min_depth {
                streak[i] = 0; // re-arm only after the growth run restarts
                if worst.is_none_or(|(_, d)| p.mailbox > d) {
                    worst = Some((i, p.mailbox));
                }
            }
        }
        if let Some((i, depth)) = worst {
            alerts.push(Alert {
                kind: AlertKind::QueueGrowth,
                at: SimTime(w.end_ns),
                window: w.index,
                proc: Some(i),
                subject: report
                    .procs
                    .get(i)
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| format!("proc#{i}")),
                value_milli: depth as i64,
            });
        }
    }

    fn hot_row(&self, w: &TsWindow, alerts: &mut Vec<Alert>) {
        // Counters look like `ps.server.row_touch.m{id}.r{row}`; group by
        // matrix, find each matrix's hottest row this window.
        let mut per_matrix: std::collections::BTreeMap<&str, (u64, &str, u64)> =
            std::collections::BTreeMap::new();
        for (key, &delta) in w
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("ps.server.row_touch."))
        {
            let rest = &key["ps.server.row_touch.".len()..];
            let Some(dot) = rest.find(".r") else { continue };
            let matrix = &rest[..dot];
            let e = per_matrix.entry(matrix).or_insert((0, rest, 0));
            e.0 += delta;
            if delta > e.2 {
                e.1 = rest;
                e.2 = delta;
            }
        }
        for (_, (total, top_key, top)) in per_matrix {
            if total >= self.cfg.hot_row_min_touches
                && top * 1000 >= self.cfg.hot_row_share_milli * total
            {
                alerts.push(Alert {
                    kind: AlertKind::HotRow,
                    at: SimTime(w.end_ns),
                    window: w.index,
                    proc: None,
                    subject: top_key.to_string(),
                    value_milli: (top * 1000 / total) as i64,
                });
            }
        }
    }

    fn server_skew(&self, w: &TsWindow, served_keys: &[String], alerts: &mut Vec<Alert>) {
        if served_keys.len() < 2 {
            return;
        }
        let loads: Vec<u64> = served_keys.iter().map(|k| w.counter(k)).collect();
        let total: u64 = loads.iter().sum();
        if total < self.cfg.skew_min_total {
            return;
        }
        // Gini = Σᵢ Σⱼ |xᵢ − xⱼ| / (2 n Σ x); 0 = uniform, →1 = one server
        // takes everything.
        let n = loads.len() as u64;
        let mut abs_diff_sum: u64 = 0;
        for (i, &a) in loads.iter().enumerate() {
            for &b in &loads[i + 1..] {
                abs_diff_sum += a.abs_diff(b);
            }
        }
        let gini_milli = (2 * abs_diff_sum * 1000) / (2 * n * total);
        if gini_milli >= self.cfg.skew_gini_milli {
            alerts.push(Alert {
                kind: AlertKind::ServerSkew,
                at: SimTime(w.end_ns),
                window: w.index,
                proc: None,
                subject: "ps.server".to_string(),
                value_milli: gini_milli as i64,
            });
        }
    }

    fn stall(
        &self,
        w: &TsWindow,
        state: &mut std::collections::BTreeMap<String, (usize, Option<i64>)>,
        alerts: &mut Vec<Alert>,
    ) {
        // Only windows in which training actually iterated count; idle or
        // setup windows neither advance nor reset the streaks.
        if w.counter("ml.iterations") == 0 {
            return;
        }
        // One independent (streak, previous-loss) track per loss gauge: the
        // classic dataflow path publishes `ml.loss_micro`, the consistency
        // modes publish `ml.loss_micro.<mode>` (e.g. `ml.loss_micro.ssp2`),
        // and concurrent runs of different modes must not mask each other's
        // stalls. BTreeMap order keeps the alert list deterministic.
        for (key, &loss) in w
            .gauges
            .iter()
            .filter(|(k, _)| k.as_str() == "ml.loss_micro" || k.starts_with("ml.loss_micro."))
        {
            let (streak, prev_loss) = state.entry(key.clone()).or_insert((0, None));
            if let Some(pl) = *prev_loss {
                let delta = (loss - pl).abs();
                if delta <= self.cfg.stall_eps_micro {
                    *streak += 1;
                    if *streak >= self.cfg.stall_windows {
                        *streak = 0;
                        alerts.push(Alert {
                            kind: AlertKind::ConvergenceStall,
                            at: SimTime(w.end_ns),
                            window: w.index,
                            proc: None,
                            subject: key.clone(),
                            value_milli: delta,
                        });
                    }
                } else {
                    *streak = 0;
                }
            }
            *prev_loss = Some(loss);
        }
    }

    /// Inject `alerts` into `report.trace` as tagged `Mark` events (label =
    /// [`AlertKind::label`], payload = window index) at their exact virtual
    /// timestamps, then restore the trace's time order. The marks ride the
    /// normal trace pipeline from here: Perfetto export shows them as
    /// instants and `ps2-trace` counts them like any other mark.
    pub fn annotate(report: &mut SimReport, alerts: &[Alert]) {
        if alerts.is_empty() {
            return;
        }
        for a in alerts {
            let label = intern(&mut report.labels, a.kind.label());
            report.trace.push(TraceEvent::Mark {
                at: a.at,
                proc: ProcId(a.proc.unwrap_or(0)),
                label,
                payload: Some(a.window),
            });
        }
        report.trace.sort_by_key(|e| e.at());
    }
}

fn intern(labels: &mut Vec<&'static str>, label: &'static str) -> LabelId {
    if let Some(i) = labels.iter().position(|l| *l == label) {
        return LabelId(i as u32);
    }
    labels.push(label);
    LabelId((labels.len() - 1) as u32)
}

/// Render an alert list as a JSON array in the workspace's hand-rolled
/// style (integers and fixed key order only). `proc` is `-1` when the alert
/// is not tied to one process.
pub fn alerts_json(alerts: &[Alert]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("[");
    for (i, a) in alerts.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"kind\": {}, \"at_ns\": {}, \"window\": {}, \"proc\": {}, \
             \"subject\": {}, \"value_milli\": {}}}",
            if i == 0 { "" } else { "," },
            crate::metrics::json_str(a.kind.label()),
            a.at.as_nanos(),
            a.window,
            a.proc.map(|p| p as i64).unwrap_or(-1),
            crate::metrics::json_str(&a.subject),
            a.value_milli
        );
    }
    if !alerts.is_empty() {
        s.push_str("\n  ");
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{HistDelta, ProcSample, TimeSeries, TsWindow};
    use std::collections::BTreeMap;

    fn window(index: u64, end_ns: u64) -> TsWindow {
        TsWindow {
            index,
            end_ns,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            procs: Vec::new(),
        }
    }

    fn report_with(windows: Vec<TsWindow>) -> SimReport {
        SimReport {
            virtual_time: SimTime(windows.last().map(|w| w.end_ns).unwrap_or(0)),
            wall_time: std::time::Duration::ZERO,
            total_msgs: 0,
            total_bytes: 0,
            dropped_msgs: 0,
            procs: Vec::new(),
            trace: Vec::new(),
            metrics: crate::metrics::MetricsSnapshot::default(),
            labels: Vec::new(),
            net: crate::config::NetConfig::default(),
            timeseries: Some(TimeSeries {
                window_ns: 1_000_000,
                windows,
                dropped_windows: 0,
            }),
            reqs: None,
            host: None,
        }
    }

    fn busy(procs: &[u64]) -> Vec<ProcSample> {
        procs
            .iter()
            .map(|&b| ProcSample {
                busy_ns: b,
                mailbox: 0,
            })
            .collect()
    }

    #[test]
    fn straggler_fires_on_busy_outlier() {
        let mut w = window(0, 1_000_000);
        w.procs = busy(&[100, 100, 100, 100, 100, 100, 100, 0]);
        let report = report_with(vec![w]);
        let alerts = Watchdog::default().evaluate(&report);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Straggler);
        assert_eq!(alerts[0].proc, Some(7));
        assert_eq!(alerts[0].at, SimTime(1_000_000));
        assert!(alerts[0].value_milli < 0, "idle straggler has negative z");
    }

    #[test]
    fn straggler_quiet_on_uniform_fleet() {
        let mut w = window(0, 1_000_000);
        w.procs = busy(&[100, 101, 99, 100, 100, 100]);
        let report = report_with(vec![w]);
        assert!(Watchdog::default().evaluate(&report).is_empty());
    }

    #[test]
    fn queue_growth_needs_consecutive_windows_past_floor() {
        let mut windows = Vec::new();
        for (i, depth) in [2u64, 5, 9, 14, 3].iter().enumerate() {
            let mut w = window(i as u64, (i as u64 + 1) * 1_000_000);
            w.procs = vec![ProcSample {
                busy_ns: 0,
                mailbox: *depth,
            }];
            windows.push(w);
        }
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate(&report);
        // Depth grows in windows 0,1,2 (from the empty-mailbox baseline) →
        // streak hits 3 at window 2 with depth 9 ≥ floor 8; the detector
        // re-arms, window 3 alone can't reach the streak, window 4 shrinks.
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::QueueGrowth);
        assert_eq!(alerts[0].window, 2);
        assert_eq!(alerts[0].value_milli, 9);
    }

    #[test]
    fn hot_row_fires_per_matrix_on_concentration() {
        let mut w = window(0, 1_000_000);
        w.counters
            .insert("ps.server.row_touch.m1.r7".to_string(), 90);
        w.counters
            .insert("ps.server.row_touch.m1.r3".to_string(), 10);
        // Uniform matrix stays quiet.
        w.counters
            .insert("ps.server.row_touch.m2.r1".to_string(), 30);
        w.counters
            .insert("ps.server.row_touch.m2.r2".to_string(), 30);
        w.counters
            .insert("ps.server.row_touch.m2.r3".to_string(), 30);
        let report = report_with(vec![w]);
        let alerts = Watchdog::default().evaluate(&report);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::HotRow);
        assert_eq!(alerts[0].subject, "m1.r7");
        assert_eq!(alerts[0].value_milli, 900);
    }

    #[test]
    fn server_skew_uses_final_registry_for_the_server_set() {
        let mut w = window(0, 1_000_000);
        // Only one server moved this window; the other two are silent and
        // therefore absent from the window's delta map.
        w.counters.insert("ps.server.p0.served".to_string(), 120);
        let mut report = report_with(vec![w]);
        report.metrics.add("ps.server.p0.served", 120);
        report.metrics.add("ps.server.p1.served", 1);
        report.metrics.add("ps.server.p2.served", 1);
        let alerts = Watchdog::default().evaluate(&report);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ServerSkew);
        assert!(alerts[0].value_milli >= 600, "{}", alerts[0].value_milli);
    }

    #[test]
    fn stall_needs_flat_loss_across_active_windows() {
        let mut windows = Vec::new();
        for (i, loss) in [500_000i64, 499_990, 499_985, 499_980, 400_000]
            .iter()
            .enumerate()
        {
            let mut w = window(i as u64, (i as u64 + 1) * 1_000_000);
            w.counters.insert("ml.iterations".to_string(), 2);
            w.gauges.insert("ml.loss_micro".to_string(), *loss);
            windows.push(w);
        }
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate(&report);
        // Deltas 10, 5, 5 are all ≤ eps 100 → streak hits 3 at window 3;
        // window 4's big drop resets.
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ConvergenceStall);
        assert_eq!(alerts[0].window, 3);
    }

    #[test]
    fn stall_tracks_per_mode_loss_gauges_independently() {
        let mut windows = Vec::new();
        for (i, (ssp, bsp)) in [
            (500_000i64, 900_000i64),
            (499_990, 800_000),
            (499_985, 700_000),
            (499_980, 600_000),
        ]
        .iter()
        .enumerate()
        {
            let mut w = window(i as u64, (i as u64 + 1) * 1_000_000);
            w.counters.insert("ml.iterations".to_string(), 4);
            // The SSP run is flat, the concurrently-scraped BSP run is
            // converging fast: only the SSP gauge may stall.
            w.gauges.insert("ml.loss_micro.ssp2".to_string(), *ssp);
            w.gauges.insert("ml.loss_micro.bsp".to_string(), *bsp);
            windows.push(w);
        }
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate(&report);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ConvergenceStall);
        assert_eq!(alerts[0].subject, "ml.loss_micro.ssp2");
        assert_eq!(alerts[0].window, 3);
    }

    /// A window of the `pull.latency` histogram with `good` fast samples
    /// (~100 ns) and `bad` slow ones (~1 ms) against a 1 µs target.
    fn slo_window(index: u64, bad: u64, good: u64) -> TsWindow {
        let mut w = window(index, (index + 1) * 1_000_000);
        let mut buckets = Vec::new();
        if good > 0 {
            buckets.push((crate::metrics::bucket_of(100) as u32, good));
        }
        if bad > 0 {
            buckets.push((crate::metrics::bucket_of(1_000_000) as u32, bad));
        }
        w.hists.insert(
            "pull.latency".to_string(),
            HistDelta {
                count: bad + good,
                sum_ns: 0,
                buckets,
            },
        );
        w
    }

    fn p999_objective() -> SloObjective {
        SloObjective::latency_p999("pull.p999", "pull.latency", SimTime(1_000))
    }

    #[test]
    fn slo_burn_needs_both_fast_and_slow_spans() {
        // Eleven clean windows, one brief spike, then a sustained burn.
        let mut windows: Vec<TsWindow> = (0..11).map(|i| slo_window(i, 0, 100)).collect();
        windows.push(slo_window(11, 1, 99)); // spike: fast span stays under
        windows.push(slo_window(12, 10, 90));
        windows.push(slo_window(13, 10, 90));
        windows.push(slo_window(14, 10, 90));
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate_slo(&report, &[p999_objective()]);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let a = &alerts[0];
        assert_eq!(a.kind, AlertKind::SloBurn);
        assert_eq!(a.subject, "pull.p999");
        // Window 13 is where the slow span finally confirms the burn the
        // fast span saw at 12 — and the timestamp is window-aligned.
        assert_eq!(a.window, 13);
        assert_eq!(a.at, SimTime(14 * 1_000_000));
        assert_eq!(a.at.as_nanos() % 1_000_000, 0);
        assert!(a.value_milli >= 10_000, "{}", a.value_milli);
    }

    #[test]
    fn slo_quiet_when_tail_is_within_budget() {
        // 0.05% of requests are slow — half the p999 budget.
        let windows: Vec<TsWindow> = (0..20).map(|i| slo_window(i, 1, 1999)).collect();
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate_slo(&report, &[p999_objective()]);
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn slo_error_rate_objective_counts_counters() {
        let obj = SloObjective::error_rate("pull.errors", "timeouts", "reqs", 10);
        let mut windows = Vec::new();
        for i in 0..4u64 {
            let mut w = window(i, (i + 1) * 1_000_000);
            w.counters.insert("reqs".to_string(), 100);
            // 20% timeout rate vs a 1% budget: burn 20×.
            w.counters.insert("timeouts".to_string(), 20);
            windows.push(w);
        }
        let report = report_with(windows);
        let alerts = Watchdog::default().evaluate_slo(&report, &[obj]);
        assert!(!alerts.is_empty());
        assert_eq!(alerts[0].kind, AlertKind::SloBurn);
        assert_eq!(alerts[0].subject, "pull.errors");
    }

    #[test]
    fn slo_objective_json_has_fixed_keys() {
        let j = p999_objective().to_json();
        assert!(j.contains("\"kind\": \"latency\""));
        assert!(j.contains("\"target_ns\": 1000"));
        assert!(j.contains("\"budget_milli\": 1"));
        let j = SloObjective::error_rate("e", "a", "b", 5).to_json();
        assert!(j.contains("\"kind\": \"error_rate\""));
    }

    #[test]
    fn annotate_injects_sorted_marks_with_interned_labels() {
        let mut w = window(0, 1_000_000);
        w.procs = busy(&[100, 100, 100, 100, 100, 100, 100, 0]);
        let mut report = report_with(vec![w]);
        report.trace.push(TraceEvent::Finish {
            at: SimTime(2_000_000),
            proc: ProcId(0),
        });
        let alerts = Watchdog::default().evaluate(&report);
        Watchdog::annotate(&mut report, &alerts);
        assert_eq!(report.trace.len(), 2);
        let TraceEvent::Mark {
            at, label, payload, ..
        } = &report.trace[0]
        else {
            panic!("mark must sort before the later finish");
        };
        assert_eq!(*at, SimTime(1_000_000));
        assert_eq!(report.label_name(*label), "watchdog.straggler");
        assert_eq!(*payload, Some(0));
    }

    #[test]
    fn alerts_render_as_integer_json() {
        let alerts = vec![Alert {
            kind: AlertKind::HotRow,
            at: SimTime(5_000_000),
            window: 4,
            proc: None,
            subject: "m1.r7".to_string(),
            value_milli: 900,
        }];
        let j = alerts_json(&alerts);
        assert!(j.contains("\"kind\": \"watchdog.hot_row\""));
        assert!(j.contains("\"at_ns\": 5000000"));
        assert!(j.contains("\"proc\": -1"));
        assert_eq!(alerts_json(&[]), "[]");
    }
}
