//! Request-scoped tracing: per-request stage latencies and tail exemplars.
//!
//! The flight recorder ([`crate::metrics`]) aggregates per-op totals and the
//! causal analyzer attributes the *makespan*; neither can answer "why was
//! *this* request slow?". This module gives every fabric request a run-unique
//! token that rides its envelope end to end (copied onto the reply), so the
//! runtime can decompose each request into stage latencies:
//!
//! * `client_issue` — from the op starting to the request going on the wire
//!   (batch building, payload cloning, earlier slots' sends),
//! * `net_request` — wire + NIC-queue time of the (last) request attempt,
//! * `server_queue` — arrival at the server until the server dequeues it,
//! * `service` — dequeue until the reply send,
//! * `net_reply` — wire + NIC-queue time of the reply,
//! * `client_recv` — reply arrival until the client consumes it,
//! * `cache_fill` — post-gather client work attributed to the whole batch
//!   (see [`ReqRecorder::cache_fill`]).
//!
//! ## Determinism (same discipline as metrics / timeseries / hostprof)
//!
//! Recording is **not** a yield point: every hook runs inside the runtime's
//! existing lock, moves no clock, consumes no sequence or correlation
//! number, and wakes no process. Request ids come from the recorder's own
//! counter, which exists only when tracing is enabled — so a traced run is
//! byte-identical (report, metrics, trace virtual times) to an untraced
//! same-seed run. `tests/slo_tracing.rs` asserts this.
//!
//! ## Tail exemplars
//!
//! Per op, the recorder keeps the [`EXEMPLAR_K`] slowest completed requests
//! with their full stage breakdowns — a deterministic top-K (ordered by
//! total latency descending, ties broken by the smaller request id, which is
//! itself deterministic). Exemplars are exported in the SLO sidecar
//! (`ps2-run --slo-json`), embedded in the Perfetto trace's `"ps2"."slo"`
//! section, and rendered by `ps2-trace slo`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{json_str, VtHistogram};
use crate::time::SimTime;

/// How many slowest-request exemplars are retained per op.
pub const EXEMPLAR_K: usize = 5;

/// Trace token carried by a fabric request envelope (and copied onto its
/// reply). Opaque outside the crate: minted by the recorder, attached by the
/// fabric, interpreted by the runtime's send/dequeue hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqToken {
    pub(crate) id: u64,
}

/// Stage breakdown of one completed request, all in virtual nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ReqRecord {
    /// Run-unique request id (mint order — deterministic).
    pub id: u64,
    /// Client clock when the op issued this request.
    pub issued_at_ns: u64,
    /// Issue → the client consuming the reply.
    pub total_ns: u64,
    /// Send attempts (1 = no retry).
    pub attempts: u32,
    pub client_issue_ns: u64,
    pub net_request_ns: u64,
    pub server_queue_ns: u64,
    pub service_ns: u64,
    pub net_reply_ns: u64,
    pub client_recv_ns: u64,
    pub cache_fill_ns: u64,
}

impl ReqRecord {
    /// Collapse the stage decomposition into the causal analyzer's three
    /// active categories, `(compute, network, queue)`: client think time and
    /// server service are compute, the two wire stages are network, and the
    /// server mailbox wait is queue. `crate::whatif` aggregates this over an
    /// op's exemplars to estimate how a counterfactual edit moves its tails.
    pub fn category_split_ns(&self) -> (u64, u64, u64) {
        (
            self.client_issue_ns + self.service_ns + self.client_recv_ns + self.cache_fill_ns,
            self.net_request_ns + self.net_reply_ns,
            self.server_queue_ns,
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"id\": {}, \"issued_at_ns\": {}, \"total_ns\": {}, \"attempts\": {}, \
             \"stages\": {{\"client_issue_ns\": {}, \"net_request_ns\": {}, \
             \"server_queue_ns\": {}, \"service_ns\": {}, \"net_reply_ns\": {}, \
             \"client_recv_ns\": {}, \"cache_fill_ns\": {}}}}}",
            self.id,
            self.issued_at_ns,
            self.total_ns,
            self.attempts,
            self.client_issue_ns,
            self.net_request_ns,
            self.server_queue_ns,
            self.service_ns,
            self.net_reply_ns,
            self.client_recv_ns,
            self.cache_fill_ns,
        )
    }
}

/// In-flight request state. Stage timestamps are absolute virtual clocks;
/// the record derives the deltas at completion. A retried request keeps one
/// `LiveReq` across attempts — the stage clocks of the winning (last
/// dequeued) attempt overwrite the timed-out one's.
#[derive(Clone, Debug)]
struct LiveReq {
    op: u16,
    proc: usize,
    issued_at: u64,
    attempts: u32,
    first_send: u64,
    last_sent: u64,
    req_arrival: u64,
    dequeued: u64,
    service_end: u64,
    reply_arrival: u64,
}

/// Per-op aggregate of completed requests, with exemplars.
#[derive(Clone, Debug, Default)]
pub struct OpReqStats {
    pub op: String,
    /// High-resolution histogram of total request latency.
    pub hist: VtHistogram,
    pub completed: u64,
    /// Requests still live when the run ended (client died, or the run
    /// finished mid-flight).
    pub abandoned: u64,
    /// Total send attempts across completed requests.
    pub attempts: u64,
    /// The [`EXEMPLAR_K`] slowest requests, slowest first.
    pub exemplars: Vec<ReqRecord>,
}

/// Request-level summary of a finished run, carried on
/// [`SimReport::reqs`](crate::SimReport::reqs).
#[derive(Clone, Debug, Default)]
pub struct ReqSummary {
    /// Per-op stats, ordered by op name.
    pub ops: Vec<OpReqStats>,
}

impl ReqSummary {
    pub fn op(&self, name: &str) -> Option<&OpReqStats> {
        self.ops.iter().find(|o| o.op == name)
    }

    pub fn completed(&self) -> u64 {
        self.ops.iter().map(|o| o.completed).sum()
    }

    /// Render as a JSON array (one object per op) in the workspace's
    /// hand-rolled style: integers and fixed key order only, byte-identical
    /// across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, o) in self.ops.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"op\": {}, \"completed\": {}, \"abandoned\": {}, \
                 \"attempts\": {}, \"hist\": {}, \"exemplars\": [",
                if i == 0 { "" } else { "," },
                json_str(&o.op),
                o.completed,
                o.abandoned,
                o.attempts,
                o.hist.to_json(),
            );
            for (j, e) in o.exemplars.iter().enumerate() {
                let _ = write!(s, "{}\n      {}", if j == 0 { "" } else { "," }, e.json());
            }
            if !o.exemplars.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("]}");
        }
        if !self.ops.is_empty() {
            s.push_str("\n  ");
        }
        s.push(']');
        s
    }
}

/// The in-run recorder. Lives inside the runtime's shared state (like the
/// timeseries scraper); exists only when request tracing was enabled on the
/// builder, so disabled runs pay a single `Option` check per hook site.
#[derive(Debug, Default)]
pub(crate) struct ReqRecorder {
    next_id: u64,
    op_ids: BTreeMap<String, u16>,
    stats: Vec<OpReqStats>,
    live: BTreeMap<u64, LiveReq>,
    /// Completed-but-unsealed records per proc: a batch stays open until the
    /// client attributes cache-fill time to it (or starts its next batch),
    /// so exemplars can carry the post-gather stage.
    open: BTreeMap<usize, Vec<(u16, ReqRecord)>>,
}

impl ReqRecorder {
    pub(crate) fn new() -> ReqRecorder {
        ReqRecorder::default()
    }

    fn op_id(&mut self, op: &str) -> u16 {
        if let Some(&id) = self.op_ids.get(op) {
            return id;
        }
        let id = self.stats.len() as u16;
        self.op_ids.insert(op.to_string(), id);
        self.stats.push(OpReqStats {
            op: op.to_string(),
            ..OpReqStats::default()
        });
        id
    }

    /// Mint `n` tokens for one fabric op issued by `proc` at clock `now`.
    /// Seals `proc`'s previously open batch first: cache-fill attribution
    /// closes no later than the next op.
    pub(crate) fn begin_batch(
        &mut self,
        proc: usize,
        op: &str,
        n: usize,
        now: SimTime,
    ) -> Vec<ReqToken> {
        self.seal(proc);
        let op = self.op_id(op);
        (0..n)
            .map(|_| {
                self.next_id += 1;
                let id = self.next_id;
                self.live.insert(
                    id,
                    LiveReq {
                        op,
                        proc,
                        issued_at: now.as_nanos(),
                        attempts: 0,
                        first_send: 0,
                        last_sent: 0,
                        req_arrival: 0,
                        dequeued: 0,
                        service_end: 0,
                        reply_arrival: 0,
                    },
                );
                ReqToken { id }
            })
            .collect()
    }

    /// An envelope carrying `tok` went on the wire. Requests bump the
    /// attempt count; replies close the service stage. Sends for tokens
    /// already completed (a slow server answering a request the client
    /// retried and finished elsewhere) are ignored.
    pub(crate) fn on_send(
        &mut self,
        tok: ReqToken,
        now: SimTime,
        arrival: SimTime,
        is_reply: bool,
    ) {
        let Some(req) = self.live.get_mut(&tok.id) else {
            return;
        };
        if is_reply {
            req.service_end = now.as_nanos();
            req.reply_arrival = arrival.as_nanos();
        } else {
            req.attempts += 1;
            if req.attempts == 1 {
                req.first_send = now.as_nanos();
            }
            req.last_sent = now.as_nanos();
            req.req_arrival = arrival.as_nanos();
        }
    }

    /// An envelope carrying `tok` was consumed from a mailbox at `clock`
    /// (the consumer's clock after syncing to the arrival). A request
    /// dequeue closes the server-queue stage; a reply dequeue completes the
    /// request. Late dequeues of already-completed tokens are ignored.
    pub(crate) fn on_dequeue(&mut self, tok: ReqToken, clock: SimTime, is_reply: bool) {
        if !is_reply {
            if let Some(req) = self.live.get_mut(&tok.id) {
                req.dequeued = clock.as_nanos();
            }
            return;
        }
        let Some(req) = self.live.remove(&tok.id) else {
            return;
        };
        let done = clock.as_nanos();
        let rec = ReqRecord {
            id: tok.id,
            issued_at_ns: req.issued_at,
            total_ns: done.saturating_sub(req.issued_at),
            attempts: req.attempts,
            client_issue_ns: req.first_send.saturating_sub(req.issued_at),
            net_request_ns: req.req_arrival.saturating_sub(req.last_sent),
            server_queue_ns: req.dequeued.saturating_sub(req.req_arrival),
            service_ns: req.service_end.saturating_sub(req.dequeued),
            net_reply_ns: req.reply_arrival.saturating_sub(req.service_end),
            client_recv_ns: done.saturating_sub(req.reply_arrival),
            cache_fill_ns: 0,
        };
        let st = &mut self.stats[req.op as usize];
        st.completed += 1;
        st.attempts += req.attempts as u64;
        st.hist.observe(SimTime(rec.total_ns));
        self.open.entry(req.proc).or_default().push((req.op, rec));
    }

    /// Attribute `dt` of post-gather client work (cache fill) to `proc`'s
    /// open batch, split evenly across its requests (the remainder goes to
    /// the first — integer math keeps it deterministic), then seal it.
    pub(crate) fn cache_fill(&mut self, proc: usize, dt: SimTime) {
        let Some(batch) = self.open.get_mut(&proc) else {
            return;
        };
        let n = batch.len() as u64;
        if let (Some(each), Some(rem)) =
            (dt.as_nanos().checked_div(n), dt.as_nanos().checked_rem(n))
        {
            for (i, (_, rec)) in batch.iter_mut().enumerate() {
                rec.cache_fill_ns += each + if i == 0 { rem } else { 0 };
            }
        }
        self.seal(proc);
    }

    /// Move `proc`'s open records into the per-op exemplar top-K.
    fn seal(&mut self, proc: usize) {
        let Some(batch) = self.open.remove(&proc) else {
            return;
        };
        for (op, rec) in batch {
            let ex = &mut self.stats[op as usize].exemplars;
            ex.push(rec);
            ex.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
            ex.truncate(EXEMPLAR_K);
        }
    }

    /// Run-end flush: seal every open batch, count still-live requests as
    /// abandoned, and hand out the per-op summary (ops sorted by name).
    pub(crate) fn finish(mut self) -> ReqSummary {
        let procs: Vec<usize> = self.open.keys().copied().collect();
        for p in procs {
            self.seal(p);
        }
        for (_, req) in std::mem::take(&mut self.live) {
            self.stats[req.op as usize].abandoned += 1;
        }
        let mut ops = self.stats;
        ops.sort_by(|a, b| a.op.cmp(&b.op));
        ReqSummary { ops }
    }
}

/// Render the full SLO sidecar (schema `ps2-slo-v1`): per-op request stats
/// with exemplars, the declared objectives, and the SLO burn alerts the
/// watchdog fired. The same object is embedded under `"ps2"."slo"` in the
/// Perfetto export; `ps2-trace slo` reads either form.
pub fn slo_json(
    reqs: &ReqSummary,
    objectives: &[crate::watchdog::SloObjective],
    alerts: &[crate::watchdog::Alert],
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"ps2-slo-v1\",\n");
    let _ = writeln!(s, "  \"ops\": {},", reqs.to_json());
    s.push_str("  \"objectives\": [");
    for (i, o) in objectives.iter().enumerate() {
        let _ = write!(s, "{}\n    {}", if i == 0 { "" } else { "," }, o.to_json());
    }
    if !objectives.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    let burn: Vec<crate::watchdog::Alert> = alerts
        .iter()
        .filter(|a| a.kind == crate::watchdog::AlertKind::SloBurn)
        .cloned()
        .collect();
    let _ = write!(
        s,
        "  \"alerts\": {}\n}}\n",
        crate::watchdog::alerts_json(&burn)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_one(rec: &mut ReqRecorder, proc: usize, op: &str, base: u64, dur: u64) -> u64 {
        let toks = rec.begin_batch(proc, op, 1, SimTime(base));
        let t = toks[0];
        rec.on_send(t, SimTime(base + 10), SimTime(base + 20), false);
        rec.on_dequeue(t, SimTime(base + 30), false);
        rec.on_send(t, SimTime(base + 40), SimTime(base + dur), true);
        rec.on_dequeue(t, SimTime(base + dur), true);
        t.id
    }

    #[test]
    fn stages_partition_the_total() {
        let mut rec = ReqRecorder::new();
        let toks = rec.begin_batch(0, "pull", 1, SimTime(100));
        let t = toks[0];
        rec.on_send(t, SimTime(110), SimTime(150), false); // issue 10, net_req 40
        rec.on_dequeue(t, SimTime(155), false); // queue 5
        rec.on_send(t, SimTime(175), SimTime(200), true); // service 20, net_reply 25
        rec.on_dequeue(t, SimTime(208), true); // client_recv 8
        rec.cache_fill(0, SimTime(17));
        let sum = rec.finish();
        let op = sum.op("pull").expect("op recorded");
        assert_eq!(op.completed, 1);
        let e = &op.exemplars[0];
        assert_eq!(e.total_ns, 108);
        assert_eq!(e.client_issue_ns, 10);
        assert_eq!(e.net_request_ns, 40);
        assert_eq!(e.server_queue_ns, 5);
        assert_eq!(e.service_ns, 20);
        assert_eq!(e.net_reply_ns, 25);
        assert_eq!(e.client_recv_ns, 8);
        assert_eq!(e.cache_fill_ns, 17);
        assert_eq!(
            e.total_ns,
            e.client_issue_ns
                + e.net_request_ns
                + e.server_queue_ns
                + e.service_ns
                + e.net_reply_ns
                + e.client_recv_ns
        );
    }

    #[test]
    fn top_k_keeps_the_slowest_with_deterministic_ties() {
        let mut rec = ReqRecorder::new();
        for i in 0..(EXEMPLAR_K as u64 + 4) {
            // Durations 100, 200, ... then two ties at the top.
            let dur = if i < EXEMPLAR_K as u64 + 2 {
                100 * (i + 1)
            } else {
                100 * (EXEMPLAR_K as u64 + 2)
            };
            complete_one(&mut rec, 0, "push", i * 10_000, dur);
        }
        let sum = rec.finish();
        let op = sum.op("push").expect("op recorded");
        assert_eq!(op.exemplars.len(), EXEMPLAR_K);
        // Slowest first; the tied slowest keep mint order (smaller id first).
        let totals: Vec<u64> = op.exemplars.iter().map(|e| e.total_ns).collect();
        let mut sorted = totals.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(totals, sorted);
        let ids: Vec<u64> = op
            .exemplars
            .iter()
            .filter(|e| e.total_ns == totals[0])
            .map(|e| e.id)
            .collect();
        let mut ids_sorted = ids.clone();
        ids_sorted.sort();
        assert_eq!(ids, ids_sorted, "ties break toward the smaller id");
    }

    #[test]
    fn retry_counts_attempts_and_keeps_the_winning_stage_clocks() {
        let mut rec = ReqRecorder::new();
        let t = rec.begin_batch(2, "pull", 1, SimTime(0))[0];
        rec.on_send(t, SimTime(5), SimTime(50), false);
        // Attempt 1 times out; attempt 2 lands.
        rec.on_send(t, SimTime(1_000), SimTime(1_040), false);
        rec.on_dequeue(t, SimTime(1_050), false);
        rec.on_send(t, SimTime(1_060), SimTime(1_100), true);
        rec.on_dequeue(t, SimTime(1_100), true);
        let sum = rec.finish();
        let e = &sum.op("pull").expect("op").exemplars[0];
        assert_eq!(e.attempts, 2);
        assert_eq!(e.client_issue_ns, 5, "issue stage keeps the first send");
        assert_eq!(
            e.net_request_ns, 40,
            "network stage keeps the winning attempt"
        );
        assert_eq!(e.total_ns, 1_100);
    }

    #[test]
    fn abandoned_requests_are_counted_not_recorded() {
        let mut rec = ReqRecorder::new();
        complete_one(&mut rec, 0, "pull", 0, 500);
        let t = rec.begin_batch(0, "pull", 1, SimTime(10_000))[0];
        rec.on_send(t, SimTime(10_005), SimTime(10_050), false);
        let sum = rec.finish();
        let op = sum.op("pull").expect("op");
        assert_eq!(op.completed, 1);
        assert_eq!(op.abandoned, 1);
        assert_eq!(op.exemplars.len(), 1);
    }

    #[test]
    fn cache_fill_splits_evenly_with_remainder_to_the_first() {
        let mut rec = ReqRecorder::new();
        let toks = rec.begin_batch(0, "pull", 3, SimTime(0));
        for (i, &t) in toks.iter().enumerate() {
            let b = i as u64 * 100;
            rec.on_send(t, SimTime(b + 1), SimTime(b + 2), false);
            rec.on_dequeue(t, SimTime(b + 3), false);
            rec.on_send(t, SimTime(b + 4), SimTime(b + 5), true);
            rec.on_dequeue(t, SimTime(b + 5), true);
        }
        rec.cache_fill(0, SimTime(10));
        let sum = rec.finish();
        let op = sum.op("pull").expect("op");
        let fills: Vec<u64> = op.exemplars.iter().map(|e| e.cache_fill_ns).collect();
        assert_eq!(fills.iter().sum::<u64>(), 10);
        assert!(fills.contains(&4) && fills.iter().filter(|&&f| f == 3).count() == 2);
    }

    #[test]
    fn summary_json_is_integer_only_and_nests_exemplars() {
        let mut rec = ReqRecorder::new();
        complete_one(&mut rec, 0, "pull", 0, 750);
        let sum = rec.finish();
        let j = sum.to_json();
        assert!(j.contains("\"op\": \"pull\""));
        assert!(j.contains("\"total_ns\": 750"));
        assert!(j.contains("\"server_queue_ns\""));
        assert!(
            j.contains("\"p999_ns\""),
            "op hist carries tail quantiles: {j}"
        );
    }
}
