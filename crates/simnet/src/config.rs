//! Simulation configuration: network and compute cost models.

use crate::time::SimTime;

/// Network model parameters.
///
/// Every process owns one full-duplex NIC. A `B`-byte transfer from `a` to
/// `b` costs:
///
/// ```text
/// out_start = max(now_a, nic_out_free[a])
/// out_done  = out_start + per_msg_overhead + B / bandwidth
/// arrival   = max(out_done + latency, nic_in_free[b]) + B / bandwidth
/// ```
///
/// Both NIC queues are updated, so concurrent transfers sharing an endpoint
/// serialize — this reproduces the driver in-cast bottleneck of Spark MLlib
/// (paper §2) and the per-server fan-in relief of the parameter server.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// NIC bandwidth in bits per second (paper cluster: 10 Gbps Ethernet).
    pub bandwidth_bps: f64,
    /// One-way link latency.
    pub latency: SimTime,
    /// Fixed per-message software/framing overhead charged on the sender.
    pub per_msg_overhead: SimTime,
    /// Latency of a self-send (loopback), applied instead of the NIC path.
    pub loopback: SimTime,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 10e9,
            latency: SimTime::from_micros(100),
            per_msg_overhead: SimTime::from_micros(2),
            loopback: SimTime::from_micros(5),
        }
    }
}

impl NetConfig {
    /// Time to push `bytes` through one NIC direction.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

/// Compute cost model: converts work units into virtual time.
///
/// The rates model one executor/server JVM on a 2.2 GHz core as in the
/// paper's cluster; they are deliberately conservative (effective, not peak)
/// so the compute/communication ratio resembles a production deployment.
#[derive(Clone, Debug)]
pub struct ComputeConfig {
    /// Effective floating-point ops per second for numeric kernels.
    pub flops_per_sec: f64,
    /// Effective bytes per second for memory-bound scans.
    pub mem_bytes_per_sec: f64,
    /// Per-task scheduling overhead (task serialization, dispatch, JVM-ish).
    pub task_overhead: SimTime,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            flops_per_sec: 2.0e9,
            mem_bytes_per_sec: 8.0e9,
            // Scaled with the workloads: production Spark pays 5-10 ms per
            // task, but the scaled datasets carry ~1000x less data per
            // task; a proportionally smaller dispatch cost keeps the
            // compute/communication/overhead ratios representative.
            task_overhead: SimTime::from_millis(1),
        }
    }
}

impl ComputeConfig {
    pub fn flops_time(&self, flops: u64) -> SimTime {
        SimTime::from_secs_f64(flops as f64 / self.flops_per_sec)
    }

    pub fn mem_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.mem_bytes_per_sec)
    }
}

/// Complete simulation configuration.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    pub net: NetConfig,
    pub compute: ComputeConfig,
    /// Root seed; each process derives its RNG from `(seed, proc id)`.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_linearly() {
        let net = NetConfig::default();
        let t1 = net.wire_time(1_000_000);
        let t2 = net.wire_time(2_000_000);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
        // 1 MB over 10 Gbps = 0.8 ms
        assert_eq!(t1, SimTime::from_micros(800));
    }

    #[test]
    fn compute_times() {
        let c = ComputeConfig::default();
        assert_eq!(c.flops_time(2_000_000_000), SimTime::from_secs_f64(1.0));
        assert_eq!(c.mem_time(8_000_000_000), SimTime::from_secs_f64(1.0));
    }
}
