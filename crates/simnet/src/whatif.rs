//! Counterfactual replay over the retained causal DAG: virtual-speedup
//! experiments and sensitivity-ranked optimization reports.
//!
//! The critical path ([`crate::causal`]) says where the makespan *went*; it
//! cannot say what fixing any of it would *buy*, because off-path slack
//! absorbs part of every local improvement (shrink the straggler and some
//! other process becomes the bound). Answering "what is this optimization
//! worth?" requires re-timing the whole DAG under the edit — which is what
//! this module does, deterministically and without re-running the simulation.
//!
//! ## Replay semantics
//!
//! Replay walks each process's retained event list in program order,
//! carrying a counterfactual clock per process, and preserves three
//! invariants:
//!
//! * **Untraced gaps are fixed.** Time between a process's recorded events
//!   (deadline waits, send overhead, spawn offsets) is not attributable to
//!   any editable category, so it is replayed verbatim: the new event starts
//!   `orig_gap` after the previous event's new end.
//! * **Message edges re-time.** Each send's recorded travel is decomposed
//!   into uncontended transit (`ideal_ns`, precomputed at DAG build) and
//!   queueing (the excess); the edit scales either part and the new arrival
//!   is `new_send + scaled_net + scaled_queue`.
//! * **Blocked waits re-synchronize.** A receive whose recorded consumption
//!   equals the message's arrival was a genuine blocked wait: it replays as
//!   `max(own clock, new arrival)` — the wait shrinks or grows with the
//!   message, which is exactly how speedups propagate (or get absorbed by
//!   slack). A receive that consumed an already-waiting message keeps its
//!   local gap and still lower-bounds on the new arrival, so a slowed-down
//!   message correctly turns a free consume into a wait.
//!
//! An **unmodified replay is a fixed point**: every event reproduces its
//! recorded time and the makespan comes out byte-identical. [`run_battery`]
//! asserts this before trusting any experiment, so the invariant is enforced
//! on every report, not just in tests.
//!
//! ## Experiment SPEC grammar
//!
//! ```text
//! SPEC   := EDIT (',' EDIT)*
//! EDIT   := CATEGORY ['@' FILTER] '=' FACTOR
//! CATEGORY := 'compute' | 'network' | 'queue'
//! FILTER := 'proc:' NAME          (compute on one process)
//!         | 'op:' LABEL           (compute charges with that op label)
//!         | 'src:' NAME           (network/queue of messages it sends)
//!         | 'dst:' NAME           (network/queue of messages sent to it)
//!         | 'link:' NAME '>' NAME (network/queue on one directed link)
//! FACTOR := decimal duration multiplier: 0.5 = 2x faster, 0 = eliminated,
//!           2.0 = 2x slower (resolution 1/1000)
//! ```
//!
//! Examples: `network=0.5`, `compute@proc:ps-server-3=0.8`,
//! `queue@dst:ps-server-0=0`, `compute@op:pull=0.5,network=0.5`.
//!
//! ## Tail estimation
//!
//! Replay re-times the makespan exactly, but per-request tails live in the
//! reqtrace stage decomposition, not the event DAG. [`OpTails`] aggregates
//! each op's exemplar stages into the same three categories
//! ([`ReqRecord::category_split_ns`](crate::reqtrace::ReqRecord::category_split_ns))
//! and scales the op's recorded p99/p999 by the edit's effect on that stage
//! mix. Only globally-applicable edits (and `op:`-filtered compute edits
//! naming the op) move an op's tails; proc- and link-filtered edits leave
//! them unchanged — the DAG knows which process a message touched, the
//! aggregated tail mix does not.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::causal::{CausalDag, DagEvent};
use crate::metrics::json_str;
use crate::reqtrace::ReqSummary;

/// One counterfactual edit, already resolved against a DAG (names → process
/// indices, op labels → label ids). `None` filters mean "everywhere".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Scale compute charges, optionally restricted to one process and/or
    /// one op label.
    Compute {
        scale_milli: u64,
        proc: Option<usize>,
        label: Option<u32>,
    },
    /// Scale the uncontended-transit part of message travel.
    Network {
        scale_milli: u64,
        src: Option<usize>,
        dst: Option<usize>,
    },
    /// Scale the queueing (contention) part of message travel.
    Queue {
        scale_milli: u64,
        src: Option<usize>,
        dst: Option<usize>,
    },
}

fn scale(ns: u64, milli: u64) -> u64 {
    ns.saturating_mul(milli) / 1000
}

fn scaled_compute(dt: u64, proc: usize, label: Option<u32>, edits: &[Edit]) -> u64 {
    let mut v = dt;
    for e in edits {
        if let Edit::Compute {
            scale_milli,
            proc: pf,
            label: lf,
        } = e
        {
            if pf.is_none_or(|p| p == proc) && lf.is_none_or(|l| Some(l) == label) {
                v = scale(v, *scale_milli);
            }
        }
    }
    v
}

fn scaled_travel(net: u64, queue: u64, src: usize, dst: usize, edits: &[Edit]) -> u64 {
    let mut n = net;
    let mut q = queue;
    for e in edits {
        match e {
            Edit::Network {
                scale_milli,
                src: sf,
                dst: df,
            } if sf.is_none_or(|s| s == src) && df.is_none_or(|d| d == dst) => {
                n = scale(n, *scale_milli);
            }
            Edit::Queue {
                scale_milli,
                src: sf,
                dst: df,
            } if sf.is_none_or(|s| s == src) && df.is_none_or(|d| d == dst) => {
                q = scale(q, *scale_milli);
            }
            _ => {}
        }
    }
    n + q
}

/// Outcome of one counterfactual replay.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Counterfactual makespan: latest non-daemon finish.
    pub makespan_ns: u64,
    /// Per-process counterfactual finish clocks, in process-id order.
    pub proc_finish_ns: Vec<u64>,
}

/// Deterministically re-time the DAG under `edits`. With no edits this
/// reproduces every recorded event time exactly (see module docs).
pub fn replay(dag: &CausalDag, edits: &[Edit]) -> Result<Replay, String> {
    let n = dag.procs.len();
    let mut idx = vec![0usize; n];
    // New clock of the previous event's end, per process.
    let mut clock = vec![0u64; n];
    // Recorded clock of the previous event's end, per process.
    let mut prev_end = vec![0u64; n];
    // seq → counterfactual arrival, filled as sends replay.
    let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new();
    // seq → process blocked on it.
    let mut waiting: BTreeMap<u64, usize> = BTreeMap::new();
    let mut run: VecDeque<usize> = (0..n).collect();

    while let Some(p) = run.pop_front() {
        while idx[p] < dag.procs[p].events.len() {
            let e = dag.procs[p].events[idx[p]];
            match e {
                DagEvent::Compute { at, dt, label } => {
                    let start = clock[p] + at.saturating_sub(prev_end[p]);
                    clock[p] = start + scaled_compute(dt, p, label, edits);
                    prev_end[p] = at + dt;
                }
                DagEvent::Send {
                    at,
                    dst,
                    arrival,
                    seq,
                    ideal_ns,
                } => {
                    let t = clock[p] + at.saturating_sub(prev_end[p]);
                    let travel = arrival.saturating_sub(at);
                    let queue = travel.saturating_sub(ideal_ns);
                    let net = travel - queue;
                    arrivals.insert(seq, t + scaled_travel(net, queue, p, dst, edits));
                    clock[p] = t;
                    prev_end[p] = at;
                    if let Some(w) = waiting.remove(&seq) {
                        run.push_back(w);
                    }
                }
                DagEvent::Recv { at, seq, .. } => {
                    let Some(&arr) = arrivals.get(&seq) else {
                        let Some((sp, _)) = dag.send_of(seq) else {
                            return Err(format!(
                                "trace is inconsistent: Recv references unknown send seq {seq}"
                            ));
                        };
                        // Sender hasn't replayed that far yet: park and let
                        // the send wake us.
                        debug_assert_ne!(sp, p, "own send must precede its recv");
                        waiting.insert(seq, p);
                        break;
                    };
                    let orig_arrival =
                        match dag.send_of(seq).map(|(sp, si)| dag.procs[sp].events[si]) {
                            Some(DagEvent::Send { arrival, .. }) => arrival,
                            _ => unreachable!("send index points at a non-Send event"),
                        };
                    let new_at = if orig_arrival == at {
                        // Genuine blocked wait: re-synchronize to the message.
                        clock[p].max(arr)
                    } else {
                        // The clock had already passed the arrival (free
                        // consume, or deadline waits moved it): keep the
                        // local gap, but a now-late message still blocks.
                        (clock[p] + at.saturating_sub(prev_end[p])).max(arr)
                    };
                    clock[p] = new_at;
                    prev_end[p] = at;
                }
                DagEvent::Point { at } => {
                    clock[p] += at.saturating_sub(prev_end[p]);
                    prev_end[p] = at;
                }
            }
            idx[p] += 1;
        }
    }
    if let Some(p) = (0..n).find(|&p| idx[p] < dag.procs[p].events.len()) {
        // Message edges always point forward in recorded time, so a cycle is
        // impossible for a well-formed trace; this guards corrupted input.
        return Err(format!(
            "replay deadlock: process {} ({}) blocked at event {}",
            p, dag.procs[p].name, idx[p]
        ));
    }

    let proc_finish_ns: Vec<u64> = (0..n)
        .map(|p| clock[p] + dag.procs[p].finished_ns.saturating_sub(prev_end[p]))
        .collect();
    let makespan_ns = proc_finish_ns
        .iter()
        .zip(&dag.procs)
        .filter(|(_, dp)| !dp.daemon)
        .map(|(&f, _)| f)
        .max()
        .unwrap_or(0);
    Ok(Replay {
        makespan_ns,
        proc_finish_ns,
    })
}

/// Parse an experiment SPEC (see module docs) against `dag`, resolving
/// process names and op labels. Name filters expand to one edit per
/// matching process.
pub fn parse_spec(dag: &CausalDag, spec: &str) -> Result<Vec<Edit>, String> {
    let mut edits = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let (lhs, rhs) = part
            .rsplit_once('=')
            .ok_or_else(|| format!("bad edit \"{part}\": expected CATEGORY[@FILTER]=FACTOR"))?;
        let factor: f64 = rhs
            .parse()
            .map_err(|_| format!("bad factor \"{rhs}\" in \"{part}\""))?;
        if !factor.is_finite() || !(0.0..=1000.0).contains(&factor) {
            return Err(format!("factor {rhs} out of range [0, 1000] in \"{part}\""));
        }
        let scale_milli = (factor * 1000.0).round() as u64;
        let (cat, filter) = match lhs.split_once('@') {
            Some((c, f)) => (c, Some(f)),
            None => (lhs, None),
        };
        let procs_named = |name: &str| -> Result<Vec<usize>, String> {
            let v: Vec<usize> = dag
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.name == name)
                .map(|(i, _)| i)
                .collect();
            if v.is_empty() {
                Err(format!("unknown process \"{name}\" in \"{part}\""))
            } else {
                Ok(v)
            }
        };
        match cat {
            "compute" => match filter {
                None => edits.push(Edit::Compute {
                    scale_milli,
                    proc: None,
                    label: None,
                }),
                Some(f) => {
                    if let Some(name) = f.strip_prefix("proc:") {
                        for i in procs_named(name)? {
                            edits.push(Edit::Compute {
                                scale_milli,
                                proc: Some(i),
                                label: None,
                            });
                        }
                    } else if let Some(op) = f.strip_prefix("op:") {
                        let l =
                            dag.labels.iter().position(|x| x == op).ok_or_else(|| {
                                format!("unknown op label \"{op}\" in \"{part}\"")
                            })?;
                        edits.push(Edit::Compute {
                            scale_milli,
                            proc: None,
                            label: Some(l as u32),
                        });
                    } else {
                        return Err(format!(
                            "bad compute filter \"{f}\" in \"{part}\": expected proc:NAME or op:LABEL"
                        ));
                    }
                }
            },
            "network" | "queue" => {
                let mk = |scale_milli, src, dst| {
                    if cat == "network" {
                        Edit::Network {
                            scale_milli,
                            src,
                            dst,
                        }
                    } else {
                        Edit::Queue {
                            scale_milli,
                            src,
                            dst,
                        }
                    }
                };
                match filter {
                    None => edits.push(mk(scale_milli, None, None)),
                    Some(f) => {
                        if let Some(name) = f.strip_prefix("src:") {
                            for i in procs_named(name)? {
                                edits.push(mk(scale_milli, Some(i), None));
                            }
                        } else if let Some(name) = f.strip_prefix("dst:") {
                            for i in procs_named(name)? {
                                edits.push(mk(scale_milli, None, Some(i)));
                            }
                        } else if let Some(link) = f.strip_prefix("link:") {
                            let (a, b) = link.split_once('>').ok_or_else(|| {
                                format!(
                                    "bad link filter \"{f}\" in \"{part}\": expected link:SRC>DST"
                                )
                            })?;
                            for s in procs_named(a)? {
                                for d in procs_named(b)? {
                                    edits.push(mk(scale_milli, Some(s), Some(d)));
                                }
                            }
                        } else {
                            return Err(format!(
                                "bad {cat} filter \"{f}\" in \"{part}\": expected src:NAME, dst:NAME, or link:SRC>DST"
                            ));
                        }
                    }
                }
            }
            other => return Err(format!(
                "unknown category \"{other}\" in \"{part}\": expected compute, network, or queue"
            )),
        }
    }
    if edits.is_empty() {
        return Err("empty experiment spec".to_string());
    }
    Ok(edits)
}

/// One op's recorded tails plus its exemplar-aggregated category mix — the
/// substrate for estimating how an edit moves the tails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpTails {
    pub op: String,
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Exemplar-aggregated stage time per category (see module docs).
    pub compute_ns: u64,
    pub network_ns: u64,
    pub queue_ns: u64,
}

impl OpTails {
    /// Extract per-op tails and category mixes from a run's request summary.
    pub fn from_reqs(reqs: &ReqSummary) -> Vec<OpTails> {
        reqs.ops
            .iter()
            .map(|o| {
                let (mut c, mut n, mut q) = (0u64, 0u64, 0u64);
                for e in &o.exemplars {
                    let (ec, en, eq) = e.category_split_ns();
                    c += ec;
                    n += en;
                    q += eq;
                }
                OpTails {
                    op: o.op.clone(),
                    p99_ns: o.hist.quantile_ns(0.99),
                    p999_ns: o.hist.quantile_ns(0.999),
                    compute_ns: c,
                    network_ns: n,
                    queue_ns: q,
                }
            })
            .collect()
    }

    /// Estimate this op's tails under `edits`: scale the category mix by the
    /// globally-applicable edits (plus `op:`-filtered compute edits naming
    /// this op) and apply the resulting total-latency factor to p99/p999.
    pub fn estimate(&self, edits: &[Edit], labels: &[String]) -> TailEst {
        let (mut cm, mut nm, mut qm) = (1000u64, 1000u64, 1000u64);
        for e in edits {
            match e {
                Edit::Compute {
                    scale_milli,
                    proc: None,
                    label,
                } => {
                    let applies = match label {
                        None => true,
                        Some(l) => labels.get(*l as usize).map(String::as_str) == Some(&self.op),
                    };
                    if applies {
                        cm = cm * scale_milli / 1000;
                    }
                }
                Edit::Network {
                    scale_milli,
                    src: None,
                    dst: None,
                } => nm = nm * scale_milli / 1000,
                Edit::Queue {
                    scale_milli,
                    src: None,
                    dst: None,
                } => qm = qm * scale_milli / 1000,
                // Proc-, src-, dst-, and link-filtered edits: the aggregated
                // tail mix cannot attribute stages to processes, so leave
                // the estimate unchanged.
                _ => {}
            }
        }
        let total = self.compute_ns + self.network_ns + self.queue_ns;
        let scaled =
            scale(self.compute_ns, cm) + scale(self.network_ns, nm) + scale(self.queue_ns, qm);
        let factor_milli = scaled.saturating_mul(1000).checked_div(total).unwrap_or(1000);
        TailEst {
            op: self.op.clone(),
            p99_ns: scale(self.p99_ns, factor_milli),
            p999_ns: scale(self.p999_ns, factor_milli),
        }
    }
}

/// Estimated tails of one op under one experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TailEst {
    pub op: String,
    pub p99_ns: u64,
    pub p999_ns: u64,
}

/// The standard experiment battery for a DAG: fixed global speedups plus
/// data-driven candidates (the compute-heaviest processes, the hottest op
/// labels, the most queued-into destination). Deterministic: derived from
/// integer DAG totals with fixed tie-breaks, deduplicated by spec.
pub fn standard_battery(dag: &CausalDag) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = [
        ("network-2x-faster", "network=0.5"),
        ("compute-2x-faster", "compute=0.5"),
        ("queue-free-fabric", "queue=0"),
        ("cluster-2x-faster", "compute=0.5,network=0.5"),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s.to_string()))
    .collect();

    let comp = dag.compute_ns_by_proc();
    let mut heavy: Vec<(usize, u64)> = comp
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    heavy.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in heavy.iter().take(2) {
        let name = &dag.procs[i].name;
        v.push((
            format!("{name}-20pct-faster"),
            format!("compute@proc:{name}=0.8"),
        ));
    }

    let mut labels: Vec<(String, u64)> = dag.compute_ns_by_label().into_iter().collect();
    labels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (l, _) in labels.into_iter().take(2) {
        v.push((format!("op-{l}-2x-faster"), format!("compute@op:{l}=0.5")));
    }

    let q = dag.inbound_queue_ns();
    if let Some((i, &qn)) = q
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
    {
        if qn > 0 {
            let name = &dag.procs[i].name;
            v.push((
                format!("{name}-served-locally"),
                format!("queue@dst:{name}=0"),
            ));
        }
    }

    let mut seen = BTreeSet::new();
    v.retain(|(_, s)| seen.insert(s.clone()));
    v
}

/// One ranked experiment outcome.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    pub name: String,
    pub spec: String,
    pub makespan_ns: u64,
    /// Baseline minus counterfactual makespan: positive = improvement.
    pub delta_ns: i64,
    /// `delta / baseline` in milli (190 = 19.0% faster).
    pub improvement_milli: i64,
    pub tails: Vec<TailEst>,
}

/// A full sensitivity report: every experiment replayed and ranked by
/// estimated payoff (makespan delta, then total p999 gain, then name).
#[derive(Clone, Debug)]
pub struct WhatifReport {
    pub baseline_makespan_ns: u64,
    pub baseline_tails: Vec<OpTails>,
    pub experiments: Vec<ExperimentResult>,
}

/// Replay each `(name, spec)` experiment against `dag` and rank the results.
/// Verifies the unmodified-replay fixed point first and refuses to report if
/// it does not reproduce the recorded makespan exactly.
pub fn run_battery(
    dag: &CausalDag,
    tails: &[OpTails],
    specs: &[(String, String)],
) -> Result<WhatifReport, String> {
    let baseline = replay(dag, &[])?;
    if baseline.makespan_ns != dag.makespan_ns {
        return Err(format!(
            "replay self-check failed: unmodified replay gives {} ns but the trace records {} ns",
            baseline.makespan_ns, dag.makespan_ns
        ));
    }
    let mut experiments = Vec::new();
    for (name, spec) in specs {
        let edits = parse_spec(dag, spec)?;
        let r = replay(dag, &edits)?;
        let delta_ns = dag.makespan_ns as i64 - r.makespan_ns as i64;
        let improvement_milli = if dag.makespan_ns == 0 {
            0
        } else {
            delta_ns.saturating_mul(1000) / dag.makespan_ns as i64
        };
        experiments.push(ExperimentResult {
            name: name.clone(),
            spec: spec.clone(),
            makespan_ns: r.makespan_ns,
            delta_ns,
            improvement_milli,
            tails: tails
                .iter()
                .map(|t| t.estimate(&edits, &dag.labels))
                .collect(),
        });
    }
    let p999_gain = |e: &ExperimentResult| -> i64 {
        e.tails
            .iter()
            .zip(tails)
            .map(|(est, base)| base.p999_ns as i64 - est.p999_ns as i64)
            .sum()
    };
    experiments.sort_by(|a, b| {
        b.delta_ns
            .cmp(&a.delta_ns)
            .then_with(|| p999_gain(b).cmp(&p999_gain(a)))
            .then_with(|| a.name.cmp(&b.name))
            .then_with(|| a.spec.cmp(&b.spec))
    });
    Ok(WhatifReport {
        baseline_makespan_ns: dag.makespan_ns,
        baseline_tails: tails.to_vec(),
        experiments,
    })
}

impl WhatifReport {
    /// Render the `ps2-whatif-v1` sidecar: integer-only, experiments in rank
    /// order, byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"ps2-whatif-v1\",\n");
        let _ = writeln!(
            s,
            "  \"baseline_makespan_ns\": {},",
            self.baseline_makespan_ns
        );
        s.push_str("  \"baseline_tails\": [");
        for (i, t) in self.baseline_tails.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"op\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&t.op),
                t.p99_ns,
                t.p999_ns
            );
        }
        if !self.baseline_tails.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"name\": {}, \"spec\": {}, \"makespan_ns\": {}, \
                 \"delta_ns\": {}, \"improvement_milli\": {}, \"tails\": [",
                if i == 0 { "" } else { "," },
                json_str(&e.name),
                json_str(&e.spec),
                e.makespan_ns,
                e.delta_ns,
                e.improvement_milli
            );
            for (j, t) in e.tails.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"op\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                    if j == 0 { "" } else { ", " },
                    json_str(&t.op),
                    t.p99_ns,
                    t.p999_ns
                );
            }
            s.push_str("]}");
        }
        if !self.experiments.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Deterministic human-readable ranking.
    pub fn render(&self) -> String {
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        out.push_str(&format!(
            "what-if sensitivity: baseline makespan {:.6}s, {} experiments\n",
            secs(self.baseline_makespan_ns),
            self.experiments.len()
        ));
        out.push_str(
            "rank  makespan       saved          improv  experiment                     spec\n",
        );
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(&format!(
                "{:>4}  {:>10.6}s  {:>+11.6}s  {:>5}.{}%  {:<29}  {}\n",
                i + 1,
                secs(e.makespan_ns),
                e.delta_ns as f64 / 1e9,
                e.improvement_milli / 10,
                (e.improvement_milli % 10).abs(),
                e.name,
                e.spec
            ));
        }
        for base in &self.baseline_tails {
            // Best estimated p999 per op, ties resolved by rank order.
            let best = self
                .experiments
                .iter()
                .filter_map(|e| {
                    e.tails
                        .iter()
                        .find(|t| t.op == base.op)
                        .map(|t| (e, t.p999_ns))
                })
                .min_by_key(|&(_, p)| p);
            if let Some((e, p999)) = best {
                if p999 < base.p999_ns {
                    out.push_str(&format!(
                        "op {} p999: {:.3}ms baseline -> {:.3}ms est. under {}\n",
                        base.op,
                        base.p999_ns as f64 / 1e6,
                        p999 as f64 / 1e6,
                        e.name
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::DagProc;

    /// proc0: compute 100, send at 100 (arrival 160: ideal 50 + queue 10),
    /// finish 100. proc1: blocked recv at 160, compute 40, finish 200.
    fn tiny_dag() -> CausalDag {
        CausalDag::new(
            200,
            vec!["work".to_string()],
            vec![
                DagProc {
                    name: "client".to_string(),
                    daemon: false,
                    finished_ns: 100,
                    busy_ns: 100,
                    events: vec![
                        DagEvent::Compute {
                            at: 0,
                            dt: 100,
                            label: Some(0),
                        },
                        DagEvent::Send {
                            at: 100,
                            dst: 1,
                            arrival: 160,
                            seq: 1,
                            ideal_ns: 50,
                        },
                        DagEvent::Point { at: 100 },
                    ],
                },
                DagProc {
                    name: "server".to_string(),
                    daemon: false,
                    finished_ns: 200,
                    busy_ns: 40,
                    events: vec![
                        DagEvent::Recv {
                            at: 160,
                            src: 0,
                            seq: 1,
                        },
                        DagEvent::Compute {
                            at: 160,
                            dt: 40,
                            label: None,
                        },
                        DagEvent::Point { at: 200 },
                    ],
                },
            ],
        )
    }

    #[test]
    fn unmodified_replay_is_a_fixed_point() {
        let dag = tiny_dag();
        let r = replay(&dag, &[]).expect("replay");
        assert_eq!(r.makespan_ns, 200);
        assert_eq!(r.proc_finish_ns, vec![100, 200]);
    }

    #[test]
    fn compute_speedup_propagates_through_the_message_edge() {
        let dag = tiny_dag();
        // compute=0.5: client computes 50, sends at 50, arrival 50+60=110,
        // server computes 20 -> 130.
        let edits = parse_spec(&dag, "compute=0.5").expect("spec");
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 130);
    }

    #[test]
    fn queue_and_network_edits_scale_their_travel_parts() {
        let dag = tiny_dag();
        // queue=0 removes the 10ns excess: arrival 150, finish 190.
        let edits = parse_spec(&dag, "queue=0").expect("spec");
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 190);
        // network=0 leaves only the queue part: arrival 110, finish 150.
        let edits = parse_spec(&dag, "network=0").expect("spec");
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 150);
    }

    #[test]
    fn label_filtered_compute_edit_only_touches_that_op() {
        let dag = tiny_dag();
        // Only the client's labeled charge halves; the server's unlabeled
        // compute stays: send at 50, arrival 110, +40 -> 150.
        let edits = parse_spec(&dag, "compute@op:work=0.5").expect("spec");
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 150);
        // Proc filter on the server halves only its charge: 160 + 20 = 180.
        let edits = parse_spec(&dag, "compute@proc:server=0.5").expect("spec");
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 180);
    }

    #[test]
    fn slowed_message_turns_a_free_consume_into_a_wait() {
        // proc1 computes [0, 200] then consumes a message that arrived at 150
        // (free consume at 200). Slowing the network 4x moves the arrival to
        // 100 + 4*50 = 300, which now blocks the consume.
        let dag = CausalDag::new(
            210,
            vec![],
            vec![
                DagProc {
                    name: "a".to_string(),
                    daemon: false,
                    finished_ns: 100,
                    busy_ns: 100,
                    events: vec![
                        DagEvent::Compute {
                            at: 0,
                            dt: 100,
                            label: None,
                        },
                        DagEvent::Send {
                            at: 100,
                            dst: 1,
                            arrival: 150,
                            seq: 7,
                            ideal_ns: 50,
                        },
                    ],
                },
                DagProc {
                    name: "b".to_string(),
                    daemon: false,
                    finished_ns: 210,
                    busy_ns: 210,
                    events: vec![
                        DagEvent::Compute {
                            at: 0,
                            dt: 200,
                            label: None,
                        },
                        DagEvent::Recv {
                            at: 200,
                            src: 0,
                            seq: 7,
                        },
                        DagEvent::Compute {
                            at: 200,
                            dt: 10,
                            label: None,
                        },
                    ],
                },
            ],
        );
        assert_eq!(replay(&dag, &[]).expect("replay").makespan_ns, 210);
        let edits = parse_spec(&dag, "network=4.0").expect("spec");
        // Arrival moves to 300; b consumes there and finishes at 310.
        assert_eq!(replay(&dag, &edits).expect("replay").makespan_ns, 310);
    }

    #[test]
    fn spec_errors_are_reported() {
        let dag = tiny_dag();
        assert!(parse_spec(&dag, "disk=0.5").is_err());
        assert!(parse_spec(&dag, "compute@proc:nobody=0.5").is_err());
        assert!(parse_spec(&dag, "compute@op:nothing=0.5").is_err());
        assert!(parse_spec(&dag, "network=abc").is_err());
        assert!(parse_spec(&dag, "network=-1").is_err());
        assert!(parse_spec(&dag, "network").is_err());
        assert!(parse_spec(&dag, "").is_err());
        assert!(parse_spec(&dag, "network@link:client=0.5").is_err());
    }

    #[test]
    fn spec_parses_to_resolved_edits() {
        let dag = tiny_dag();
        let edits = parse_spec(&dag, "compute@proc:client=0.8,queue@dst:server=0").expect("spec");
        assert_eq!(
            edits,
            vec![
                Edit::Compute {
                    scale_milli: 800,
                    proc: Some(0),
                    label: None
                },
                Edit::Queue {
                    scale_milli: 0,
                    src: None,
                    dst: Some(1)
                },
            ]
        );
    }

    #[test]
    fn battery_is_deterministic_and_spec_deduplicated() {
        let dag = tiny_dag();
        let b1 = standard_battery(&dag);
        let b2 = standard_battery(&dag);
        assert_eq!(b1, b2);
        assert!(b1.len() >= 5, "battery too small: {b1:?}");
        let mut specs: Vec<&String> = b1.iter().map(|(_, s)| s).collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), b1.len(), "duplicate specs in battery");
    }

    #[test]
    fn run_battery_ranks_by_makespan_delta() {
        let dag = tiny_dag();
        let rep = run_battery(&dag, &[], &standard_battery(&dag)).expect("battery");
        assert_eq!(rep.baseline_makespan_ns, 200);
        for w in rep.experiments.windows(2) {
            assert!(w[0].delta_ns >= w[1].delta_ns, "not ranked: {w:?}");
        }
        // Byte-identical across reruns.
        let rep2 = run_battery(&dag, &[], &standard_battery(&dag)).expect("battery");
        assert_eq!(rep.to_json(), rep2.to_json());
        assert_eq!(rep.render(), rep2.render());
    }

    #[test]
    fn tail_estimates_scale_by_category_mix() {
        let t = OpTails {
            op: "pull".to_string(),
            p99_ns: 1000,
            p999_ns: 2000,
            compute_ns: 100,
            network_ns: 200,
            queue_ns: 700,
        };
        // queue=0 removes 70% of the mix: factor 0.3.
        let est = t.estimate(
            &[Edit::Queue {
                scale_milli: 0,
                src: None,
                dst: None,
            }],
            &[],
        );
        assert_eq!(est.p99_ns, 300);
        assert_eq!(est.p999_ns, 600);
        // A proc-filtered edit leaves tails unchanged.
        let est = t.estimate(
            &[Edit::Compute {
                scale_milli: 0,
                proc: Some(3),
                label: None,
            }],
            &[],
        );
        assert_eq!(est.p999_ns, 2000);
    }
}
