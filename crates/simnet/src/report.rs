//! Post-run statistics and the optional event trace.

use std::time::Duration;

use crate::config::NetConfig;
use crate::metrics::MetricsSnapshot;
use crate::runtime::ProcId;
use crate::time::SimTime;

/// Index into [`SimReport::labels`], identifying an interned trace label.
///
/// Labels are interned in first-use order while the simulation runs, so the
/// mapping is deterministic across same-seed runs. Resolve with
/// [`SimReport::label_name`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabelId(pub u32);

/// One recorded simulation event (when tracing is enabled via
/// [`crate::SimBuilder::trace`]).
///
/// `seq` is a run-unique message sequence number: every send consumes one,
/// and the matching `Recv` (or `Drop`) carries the same value, giving the
/// trace explicit causal message edges instead of FIFO-inferred pairing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `src` sent `bytes` with `tag`, arriving at `dst` at `arrival`.
    Send {
        at: SimTime,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        bytes: u64,
        arrival: SimTime,
        seq: u64,
    },
    /// `proc` consumed a message sent by `src` with `tag`.
    Recv {
        at: SimTime,
        proc: ProcId,
        src: ProcId,
        tag: u32,
        seq: u64,
    },
    /// `proc` charged `dt` of compute, optionally under an op label set via
    /// `SimCtx::op_label` (e.g. the PS request kind being served).
    Compute {
        at: SimTime,
        proc: ProcId,
        dt: SimTime,
        label: Option<LabelId>,
    },
    /// `proc` finished (or was interrupted).
    Finish { at: SimTime, proc: ProcId },
    /// `src`'s message was dropped because `dst` was dead.
    Drop {
        at: SimTime,
        src: ProcId,
        dst: ProcId,
        tag: u32,
        bytes: u64,
        seq: u64,
    },
    /// A labeled timeline annotation emitted by `proc` (e.g. scheduler
    /// stage/task events), with an optional machine-readable payload
    /// (task id, partition, slot — whatever the label's convention is).
    Mark {
        at: SimTime,
        proc: ProcId,
        label: LabelId,
        payload: Option<u64>,
    },
}

impl TraceEvent {
    /// Virtual time of the event.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Recv { at, .. }
            | TraceEvent::Compute { at, .. }
            | TraceEvent::Finish { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::Mark { at, .. } => *at,
        }
    }
}

/// Per-process counters, collected into the final [`SimReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcStats {
    pub name: String,
    pub daemon: bool,
    /// Virtual clock when the process finished (or was interrupted).
    pub finished_at: SimTime,
    /// Total compute time charged via `charge_*`/`advance`.
    pub busy: SimTime,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Messages this process sent that were dropped because the destination
    /// was dead (attributed to the sender — the destination can no longer
    /// account for anything).
    pub msgs_dropped: u64,
}

impl ProcStats {
    pub(crate) fn new(name: String, daemon: bool) -> ProcStats {
        ProcStats {
            name,
            daemon,
            finished_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            msgs_sent: 0,
            bytes_sent: 0,
            msgs_recv: 0,
            bytes_recv: 0,
            msgs_dropped: 0,
        }
    }
}

/// Result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Latest virtual clock among non-daemon processes — "how long the job
    /// took on the simulated cluster".
    pub virtual_time: SimTime,
    /// Real time the simulation took to execute.
    pub wall_time: Duration,
    pub total_msgs: u64,
    pub total_bytes: u64,
    /// Messages dropped because the destination was dead.
    pub dropped_msgs: u64,
    pub procs: Vec<ProcStats>,
    /// Recorded events, in virtual-time order (empty unless tracing was
    /// enabled on the builder).
    pub trace: Vec<TraceEvent>,
    /// Final snapshot of the run's metrics registry (counters, gauges,
    /// virtual-time histograms recorded via `SimCtx::metric_*`).
    pub metrics: MetricsSnapshot,
    /// Interned trace labels, indexed by [`LabelId`]. Populated in first-use
    /// order while tracing; empty when tracing was off.
    pub labels: Vec<&'static str>,
    /// The network model the run used — needed by `simnet::causal` to split
    /// observed message waits into ideal transit vs. queueing.
    pub net: NetConfig,
    /// Windowed metric time-series (None unless enabled via
    /// [`crate::SimBuilder::timeseries`]).
    pub timeseries: Option<crate::timeseries::TimeSeries>,
    /// Request-scoped trace summary: per-op request-latency histograms and
    /// slowest-request stage-breakdown exemplars (None unless enabled via
    /// [`crate::SimBuilder::reqtrace`]).
    pub reqs: Option<crate::reqtrace::ReqSummary>,
    /// Host-side self-profile: real wall-clock and allocation cost of the
    /// simulator itself, attributed to subsystem scopes (None unless
    /// [`crate::hostprof::set_enabled`] was on). Host data only — nothing in
    /// here affects, or is derived from, the virtual clock.
    pub host: Option<crate::hostprof::HostProfile>,
}

impl SimReport {
    /// Look up a process's stats by name.
    ///
    /// Debug-asserts the name is unique — with respawned/duplicate names use
    /// [`SimReport::procs_named`] instead, so one process can't silently
    /// shadow another's stats.
    pub fn proc(&self, name: &str) -> Option<&ProcStats> {
        debug_assert!(
            self.procs.iter().filter(|p| p.name == name).count() <= 1,
            "SimReport::proc(\"{name}\"): name is not unique; use procs_named"
        );
        self.procs.iter().find(|p| p.name == name)
    }

    /// All processes with this name, in spawn order.
    pub fn procs_named(&self, name: &str) -> Vec<&ProcStats> {
        self.procs.iter().filter(|p| p.name == name).collect()
    }

    /// Resolve an interned trace label.
    pub fn label_name(&self, id: LabelId) -> &'static str {
        self.labels
            .get(id.0 as usize)
            .copied()
            .unwrap_or("<unknown-label>")
    }

    /// Look up a label id by name, if the run ever emitted it.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.labels
            .iter()
            .position(|l| *l == name)
            .map(|i| LabelId(i as u32))
    }
}
