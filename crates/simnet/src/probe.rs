//! Pluggable liveness probing.
//!
//! A scheduler that times out waiting for replies cannot, on its own, tell
//! whether its *own* workers died or some dependency they talk to (e.g. a
//! parameter-server shard) did. Subsystems that know how to check and repair
//! their own processes implement [`LivenessProbe`]; the scheduler runs every
//! registered probe from its timeout branch and counts recoveries as
//! progress. The trait lives in the simulator crate so that consumers (the
//! dataflow scheduler) and implementors (the PS fleet) need not depend on
//! each other.

use crate::ctx::SimCtx;

/// A dependency-liveness check run from a scheduler's timeout branch.
pub trait LivenessProbe: Send + Sync {
    /// Inspect the subsystem's processes and recover any that died.
    /// Returns the number of recoveries performed; `0` means the subsystem
    /// saw nothing wrong (or another process is already mid-recovery).
    fn probe(&self, ctx: &mut SimCtx) -> u64;
}
