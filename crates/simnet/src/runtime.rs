//! The sequential deterministic scheduler.
//!
//! Every logical process is an OS thread, but only one runs at a time. At
//! each simulator call the running process re-evaluates which process is
//! *ready* with the smallest virtual clock and hands execution over. A
//! blocked process is ready when matching mail is in its mailbox (at the
//! mail's arrival time) or its receive deadline has passed.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::config::SimConfig;
use crate::ctx::SimCtx;
use crate::hostprof::{self, Scope as ProfScope};
use crate::message::Envelope;
use crate::metrics::MetricsSnapshot;
use crate::report::{ProcStats, SimReport};
use crate::reqtrace::{ReqRecorder, ReqToken};
use crate::time::SimTime;
use crate::timeseries::TsRecorder;

/// Identifier of a logical process (one process == one machine/NIC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug)]
pub enum SimError {
    /// No process can make progress but non-daemon processes remain.
    Deadlock(String),
    /// A process panicked with a real (non-interrupt) panic.
    ProcPanic { name: String, message: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "simulation deadlock: {d}"),
            SimError::ProcPanic { name, message } => {
                write!(f, "process '{name}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload used to unwind a process on shutdown or kill. Never leaks
/// out of the crate: process wrappers catch it.
pub(crate) struct Interrupt;

/// What a blocked process is waiting for.
#[derive(Clone)]
pub(crate) enum MatchSpec {
    /// Any message.
    Any,
    /// A reply whose correlation id is one of these.
    Replies(Vec<u64>),
}

impl MatchSpec {
    fn matches(&self, env: &Envelope) -> bool {
        match self {
            MatchSpec::Any => true,
            MatchSpec::Replies(ids) => env.is_reply && ids.contains(&env.corr),
        }
    }
}

enum Status {
    Runnable,
    Blocked {
        spec: MatchSpec,
        deadline: Option<SimTime>,
    },
    Finished,
}

struct Proc {
    name: String,
    daemon: bool,
    killed: bool,
    clock: SimTime,
    status: Status,
    /// Pending mail ordered by (arrival ns, global sequence).
    mailbox: BTreeMap<(u64, u64), Envelope>,
    stats: ProcStats,
}

impl Proc {
    fn new(name: String, daemon: bool, clock: SimTime) -> Proc {
        Proc {
            stats: ProcStats::new(name.clone(), daemon),
            name,
            daemon,
            killed: false,
            clock,
            status: Status::Runnable,
            mailbox: BTreeMap::new(),
        }
    }

    /// Virtual time at which this process could next run, or `None` if it
    /// cannot run at all right now.
    fn ready_key(&self) -> Option<SimTime> {
        if matches!(self.status, Status::Finished) {
            return None;
        }
        if self.killed {
            // Schedulable so it gets a turn in which to unwind.
            return Some(self.clock);
        }
        match &self.status {
            Status::Runnable => Some(self.clock),
            Status::Blocked { spec, deadline } => {
                let mail = self
                    .mailbox
                    .iter()
                    .find(|(_, env)| spec.matches(env))
                    .map(|((arrival, _), _)| self.clock.max(SimTime(*arrival)));
                match (mail, deadline) {
                    // Ready at whichever comes first: the matching mail's
                    // effective time or the deadline's effective time.
                    (Some(m), Some(d)) => Some(m.min(self.clock.max(*d))),
                    (Some(m), None) => Some(m),
                    (None, Some(d)) => Some(self.clock.max(*d)),
                    (None, None) => None,
                }
            }
            Status::Finished => None,
        }
    }
}

pub(crate) struct State {
    procs: Vec<Proc>,
    nic_out_free: Vec<SimTime>,
    nic_in_free: Vec<SimTime>,
    running: Option<usize>,
    /// Unfinished non-daemon processes.
    live: usize,
    shutdown: bool,
    error: Option<SimError>,
    seq: u64,
    corr: u64,
    total_msgs: u64,
    total_bytes: u64,
    dropped_msgs: u64,
    handles: Vec<JoinHandle<()>>,
    tracing: bool,
    trace: Vec<crate::report::TraceEvent>,
    metrics: MetricsSnapshot,
    /// Interned trace labels in first-use order (only populated while
    /// tracing, so untraced runs pay nothing).
    labels: Vec<&'static str>,
    /// Per-process current op label applied to `Compute` events.
    op_labels: Vec<Option<crate::report::LabelId>>,
    /// Windowed-telemetry scraper (None unless enabled on the builder).
    ts: Option<TsRecorder>,
    /// Request-scoped trace recorder (None unless enabled on the builder).
    /// All its hooks run inside this lock and are non-yielding, so traced
    /// runs stay byte-identical to untraced same-seed runs.
    req: Option<ReqRecorder>,
}

impl State {
    /// Advance the windowed-telemetry scraper to virtual time `t`, emitting
    /// any window boundaries crossed since the last mutation. Called
    /// immediately *before* each registry/clock mutation so that "registry
    /// state at a boundary" is exactly the state left by the prior
    /// mutation. Not a yield point: no clock moves, no process wakes —
    /// scraped runs keep the exact timing of unscraped ones.
    fn ts_roll(&mut self, t: SimTime) {
        let Some(ts) = &mut self.ts else { return };
        if !ts.due(t) {
            return;
        }
        let _prof = hostprof::scope(ProfScope::ScrapeRoll);
        let procs: Vec<(u64, u64)> = self
            .procs
            .iter()
            .map(|p| (p.stats.busy.as_nanos(), p.mailbox.len() as u64))
            .collect();
        ts.roll(t, &self.metrics, &procs);
    }

    /// Intern a label, returning its stable id. First-use order, so the
    /// table is deterministic across same-seed runs. Linear scan: the label
    /// population is a couple dozen static strings.
    fn intern(&mut self, label: &'static str) -> crate::report::LabelId {
        if let Some(i) = self.labels.iter().position(|l| *l == label) {
            return crate::report::LabelId(i as u32);
        }
        self.labels.push(label);
        crate::report::LabelId((self.labels.len() - 1) as u32)
    }
}

fn pick(st: &State) -> Option<usize> {
    let mut best: Option<(SimTime, usize)> = None;
    for (i, p) in st.procs.iter().enumerate() {
        if let Some(key) = p.ready_key() {
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

fn describe_blocked(st: &State) -> String {
    let mut parts = Vec::new();
    for p in &st.procs {
        if let Status::Blocked { .. } = p.status {
            parts.push(format!(
                "'{}'@{} (mailbox {})",
                p.name,
                p.clock,
                p.mailbox.len()
            ));
        }
    }
    if parts.is_empty() {
        "no blocked processes".to_string()
    } else {
        format!("blocked: {}", parts.join(", "))
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    fn interrupt_check(&self, st: &State, me: usize) {
        if st.shutdown || st.procs[me].killed {
            panic::panic_any(Interrupt);
        }
    }

    /// Park until it is `me`'s turn (or shutdown/kill unwinds us).
    fn wait_for_turn(&self, st: &mut MutexGuard<'_, State>, me: usize) {
        // Parked wall time is the time *other* procs spend running; giving
        // it a dedicated hostprof scope keeps it out of every enclosing
        // scope's self time (the guard also records during Interrupt
        // unwinds, so killed procs account their final park).
        let _prof = hostprof::scope(ProfScope::SchedPark);
        loop {
            if st.shutdown || st.procs[me].killed {
                panic::panic_any(Interrupt);
            }
            if st.running == Some(me) {
                return;
            }
            self.cv.wait(st);
        }
    }

    /// After any operation that may have advanced `me`'s clock: hand off to
    /// the globally minimal-clock ready process (possibly still `me`).
    fn reschedule(&self, st: &mut MutexGuard<'_, State>, me: usize) {
        {
            let _prof = hostprof::scope(ProfScope::SchedDispatch);
            let next = match pick(st) {
                Some(n) => n,
                None => {
                    // `me` is running, hence ready — pick can only fail if we
                    // just blocked, which this path never does.
                    unreachable!("reschedule with no ready process")
                }
            };
            if next == me {
                return;
            }
            st.running = Some(next);
            self.cv.notify_all();
        }
        self.wait_for_turn(st, me);
    }

    fn fail(&self, st: &mut MutexGuard<'_, State>, err: SimError) {
        if st.error.is_none() {
            st.error = Some(err);
        }
        st.shutdown = true;
        st.running = None;
        self.cv.notify_all();
    }

    // ---- operations invoked through SimCtx ------------------------------

    pub(crate) fn now(&self, me: usize) -> SimTime {
        self.state.lock().procs[me].clock
    }

    pub(crate) fn advance(&self, me: usize, dt: SimTime) {
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        let pre = st.procs[me].clock;
        st.ts_roll(pre);
        if st.tracing && dt > SimTime::ZERO {
            let at = st.procs[me].clock;
            let label = st.op_labels[me];
            st.trace.push(crate::report::TraceEvent::Compute {
                at,
                proc: ProcId(me),
                dt,
                label,
            });
        }
        let p = &mut st.procs[me];
        p.clock += dt;
        p.stats.busy += dt;
        self.reschedule(&mut st, me);
    }

    pub(crate) fn next_corr(&self) -> u64 {
        let mut st = self.state.lock();
        st.corr += 1;
        st.corr
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_env(
        &self,
        me: usize,
        dst: ProcId,
        tag: u32,
        corr: u64,
        is_reply: bool,
        payload: Box<dyn Any + Send>,
        bytes: u64,
        req: Option<ReqToken>,
    ) {
        let _prof = hostprof::scope(ProfScope::SchedSend);
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        let pre = st.procs[me].clock;
        st.ts_roll(pre);
        let net = &self.cfg.net;
        // Every send consumes a run-unique sequence number — dropped or not —
        // so traces carry explicit Send/Recv causal edges keyed by `seq`.
        st.seq += 1;
        let seq = st.seq;
        st.procs[me].clock += net.per_msg_overhead;
        let now = st.procs[me].clock;
        let arrival = if dst.0 == me {
            now + net.loopback
        } else {
            // Pipelined store-and-forward: receiving can begin once the first
            // bytes have crossed the link and the in-NIC is free.
            let wire = net.wire_time(bytes);
            let out_start = now.max(st.nic_out_free[me]);
            st.nic_out_free[me] = out_start + wire;
            let in_start = (out_start + net.latency).max(st.nic_in_free[dst.0]);
            let in_done = in_start + wire;
            st.nic_in_free[dst.0] = in_done;
            in_done
        };
        if st.tracing {
            st.trace.push(crate::report::TraceEvent::Send {
                at: now,
                src: ProcId(me),
                dst,
                tag,
                bytes,
                arrival,
                seq,
            });
        }
        if let (Some(tok), Some(rec)) = (req, &mut st.req) {
            rec.on_send(tok, now, arrival, is_reply);
        }
        st.procs[me].stats.msgs_sent += 1;
        st.procs[me].stats.bytes_sent += bytes;
        st.total_msgs += 1;
        st.total_bytes += bytes;
        if dst.0 != me {
            // Account virtual wire time as communication cost (loopback is
            // shared-memory, not the network).
            st.metrics
                .add("net.wire_ns", net.wire_time(bytes).as_nanos());
        } else {
            st.metrics.add("net.loopback_ns", net.loopback.as_nanos());
        }
        let dead = st.procs[dst.0].killed || matches!(st.procs[dst.0].status, Status::Finished);
        if dead {
            st.dropped_msgs += 1;
            st.procs[me].stats.msgs_dropped += 1;
            st.metrics.add(&format!("net.dropped.tag.{tag}"), 1);
            if st.tracing {
                st.trace.push(crate::report::TraceEvent::Drop {
                    at: now,
                    src: ProcId(me),
                    dst,
                    tag,
                    bytes,
                    seq,
                });
            }
        } else {
            let key = (arrival.as_nanos(), seq);
            st.procs[dst.0].mailbox.insert(
                key,
                Envelope {
                    src: ProcId(me),
                    dst,
                    tag,
                    corr,
                    is_reply,
                    payload,
                    bytes,
                    seq,
                    sent_at: now,
                    arrival,
                    req,
                },
            );
        }
        self.reschedule(&mut st, me);
    }

    pub(crate) fn block_recv(
        &self,
        me: usize,
        spec: MatchSpec,
        deadline: Option<SimTime>,
    ) -> Option<Envelope> {
        let _prof = hostprof::scope(ProfScope::SchedRecv);
        let mut st = self.state.lock();
        loop {
            self.interrupt_check(&st, me);
            let found = st.procs[me]
                .mailbox
                .iter()
                .find(|(_, env)| spec.matches(env))
                .map(|(k, _)| *k);
            if let Some(key) = found {
                let eff = st.procs[me].clock.max(st.procs[me].mailbox[&key].arrival);
                st.ts_roll(eff);
                let env = st.procs[me].mailbox.remove(&key).expect("mail vanished");
                let p = &mut st.procs[me];
                p.clock = p.clock.max(env.arrival);
                p.status = Status::Runnable;
                p.stats.msgs_recv += 1;
                p.stats.bytes_recv += env.bytes;
                if st.tracing {
                    let at = st.procs[me].clock;
                    st.trace.push(crate::report::TraceEvent::Recv {
                        at,
                        proc: ProcId(me),
                        src: env.src,
                        tag: env.tag,
                        seq: env.seq,
                    });
                }
                if let Some(tok) = env.req {
                    let clock = st.procs[me].clock;
                    if let Some(rec) = &mut st.req {
                        rec.on_dequeue(tok, clock, env.is_reply);
                    }
                }
                self.reschedule(&mut st, me);
                return Some(env);
            }
            if let Some(d) = deadline {
                if st.procs[me].clock >= d {
                    st.procs[me].status = Status::Runnable;
                    self.reschedule(&mut st, me);
                    return None;
                }
            }
            st.procs[me].status = Status::Blocked {
                spec: spec.clone(),
                deadline,
            };
            match pick(&st) {
                Some(next) if next == me => {
                    // Ready by deadline only (matching mail would have been
                    // consumed above).
                    let d = deadline.expect("self-ready without mail or deadline");
                    let eff = st.procs[me].clock.max(d);
                    st.ts_roll(eff);
                    let p = &mut st.procs[me];
                    p.clock = p.clock.max(d);
                    p.status = Status::Runnable;
                    self.reschedule(&mut st, me);
                    return None;
                }
                Some(next) => {
                    st.running = Some(next);
                    self.cv.notify_all();
                    self.wait_for_turn(&mut st, me);
                    // Loop re-checks the mailbox.
                }
                None => {
                    if st.live == 0 {
                        // Only daemons remain and all are blocked: the
                        // simulation is simply over.
                        st.shutdown = true;
                        st.running = None;
                        self.cv.notify_all();
                    } else {
                        let live = st.live;
                        let desc = format!("{} live non-daemons; {}", live, describe_blocked(&st));
                        self.fail(&mut st, SimError::Deadlock(desc));
                    }
                    panic::panic_any(Interrupt);
                }
            }
        }
    }

    // ---- flight-recorder operations --------------------------------------
    //
    // These are deliberately NOT yield points: they take the lock, update
    // the registry (or push a trace event), and return. No clock moves, no
    // sequence/correlation number is consumed, no other process is woken —
    // so an instrumented run is timing-identical to an uninstrumented one.

    /// The spawn-time name of a process — for diagnostics (panic messages,
    /// logs). Not a yield point.
    pub(crate) fn proc_name(&self, me: usize) -> String {
        self.state.lock().procs[me].name.clone()
    }

    pub(crate) fn metric_add(&self, me: usize, name: &str, delta: u64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.add(name, delta);
    }

    pub(crate) fn metric_gauge_set(&self, me: usize, name: &str, value: i64) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.gauge_set(name, value);
    }

    pub(crate) fn metric_observe(&self, me: usize, name: &str, dt: SimTime) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let t = st.procs[me].clock;
        st.ts_roll(t);
        st.metrics.observe(name, dt);
    }

    /// Mint request-trace tokens for one fabric op (empty when request
    /// tracing is off). Ids come from the recorder's own counter — no
    /// sequence or correlation number is consumed. Not a yield point.
    pub(crate) fn req_begin_batch(&self, me: usize, op: &str, n: usize) -> Vec<ReqToken> {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        let now = st.procs[me].clock;
        match &mut st.req {
            Some(rec) => rec.begin_batch(me, op, n, now),
            None => Vec::new(),
        }
    }

    /// Attribute `dt` of post-gather client work to `me`'s open request
    /// batch and seal it. Not a yield point.
    pub(crate) fn req_cache_fill(&self, me: usize, dt: SimTime) {
        let _prof = hostprof::scope(ProfScope::MetricsRecord);
        let mut st = self.state.lock();
        if let Some(rec) = &mut st.req {
            rec.cache_fill(me, dt);
        }
    }

    pub(crate) fn trace_mark(&self, me: usize, label: &'static str, payload: Option<u64>) {
        let mut st = self.state.lock();
        if st.tracing {
            let label = st.intern(label);
            let at = st.procs[me].clock;
            st.trace.push(crate::report::TraceEvent::Mark {
                at,
                proc: ProcId(me),
                label,
                payload,
            });
        }
    }

    /// Set (or clear) the op label attached to `me`'s subsequent `Compute`
    /// events. Not a yield point; no-op when tracing is off.
    pub(crate) fn set_op_label(&self, me: usize, label: Option<&'static str>) {
        let mut st = self.state.lock();
        if st.tracing {
            let id = label.map(|l| st.intern(l));
            st.op_labels[me] = id;
        }
    }

    pub(crate) fn kill(&self, me: usize, target: ProcId) {
        assert_ne!(me, target.0, "a process cannot kill itself; just return");
        let mut st = self.state.lock();
        self.interrupt_check(&st, me);
        if !matches!(st.procs[target.0].status, Status::Finished) {
            st.procs[target.0].killed = true;
        }
        // The victim gets reaped when the scheduler next selects it; parked
        // victims wake on this notify, see `killed`, and unwind.
        self.cv.notify_all();
        self.reschedule(&mut st, me);
    }

    pub(crate) fn is_alive(&self, target: ProcId) -> bool {
        let st = self.state.lock();
        let p = &st.procs[target.0];
        !p.killed && !matches!(p.status, Status::Finished)
    }

    pub(crate) fn spawn_impl(
        self: &Arc<Self>,
        name: &str,
        daemon: bool,
        start_clock: SimTime,
        f: Box<dyn FnOnce(&mut SimCtx) + Send>,
    ) -> ProcId {
        let mut st = self.state.lock();
        let id = st.procs.len();
        st.procs
            .push(Proc::new(name.to_string(), daemon, start_clock));
        st.nic_out_free.push(SimTime::ZERO);
        st.nic_in_free.push(SimTime::ZERO);
        st.op_labels.push(None);
        if !daemon {
            st.live += 1;
        }
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || proc_main(shared, id, f))
            .expect("failed to spawn simulation thread");
        st.handles.push(handle);
        ProcId(id)
    }

    fn on_proc_exit(&self, me: usize, result: Result<(), Box<dyn Any + Send>>) {
        let mut st = self.state.lock();
        if let Err(payload) = result {
            if !payload.is::<Interrupt>() && st.error.is_none() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let name = st.procs[me].name.clone();
                st.error = Some(SimError::ProcPanic { name, message });
                st.shutdown = true;
            }
        }
        let daemon = st.procs[me].daemon;
        let already_finished = matches!(st.procs[me].status, Status::Finished);
        st.procs[me].status = Status::Finished;
        st.procs[me].stats.finished_at = st.procs[me].clock;
        if st.tracing && !already_finished {
            let at = st.procs[me].clock;
            st.trace.push(crate::report::TraceEvent::Finish {
                at,
                proc: ProcId(me),
            });
        }
        if !daemon && !already_finished {
            st.live -= 1;
        }
        if st.live == 0 {
            st.shutdown = true;
        }
        if st.shutdown {
            st.running = None;
            self.cv.notify_all();
            return;
        }
        if st.running == Some(me) {
            match pick(&st) {
                Some(next) => {
                    st.running = Some(next);
                    self.cv.notify_all();
                }
                None => {
                    let desc = describe_blocked(&st);
                    self.fail(&mut st, SimError::Deadlock(desc));
                }
            }
        }
    }
}

/// Suppress the default panic-hook noise for our internal `Interrupt`
/// unwinds while keeping real panics loud.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Interrupt>() {
                return;
            }
            default(info);
        }));
    });
}

fn proc_main(shared: Arc<Shared>, me: usize, f: Box<dyn FnOnce(&mut SimCtx) + Send>) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let mut st = shared.state.lock();
            shared.wait_for_turn(&mut st, me);
        }
        let mut ctx = SimCtx::new(Arc::clone(&shared), ProcId(me));
        f(&mut ctx);
    }));
    shared.on_proc_exit(me, result);
}

/// A write-once slot used to carry a process's return value out of the
/// simulation.
pub struct OutputSlot<T> {
    inner: Arc<Mutex<Option<T>>>,
}

impl<T> Clone for OutputSlot<T> {
    fn clone(&self) -> Self {
        OutputSlot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> OutputSlot<T> {
    fn new() -> Self {
        OutputSlot {
            inner: Arc::new(Mutex::new(None)),
        }
    }

    fn put(&self, value: T) {
        *self.inner.lock() = Some(value);
    }

    /// Take the value. Panics if the producing process never finished.
    pub fn take(&self) -> T {
        self.inner
            .lock()
            .take()
            .expect("OutputSlot: producing process did not complete")
    }

    /// Non-panicking variant of [`OutputSlot::take`].
    pub fn try_take(&self) -> Option<T> {
        self.inner.lock().take()
    }
}

/// Builder for a [`SimRuntime`].
#[derive(Default)]
pub struct SimBuilder {
    cfg: SimConfig,
    tracing: bool,
    ts: Option<(SimTime, usize)>,
    reqtrace: bool,
}

impl SimBuilder {
    pub fn new() -> SimBuilder {
        SimBuilder::default()
    }

    pub fn seed(mut self, seed: u64) -> SimBuilder {
        self.cfg.seed = seed;
        self
    }

    pub fn network(mut self, net: crate::config::NetConfig) -> SimBuilder {
        self.cfg.net = net;
        self
    }

    pub fn compute(mut self, compute: crate::config::ComputeConfig) -> SimBuilder {
        self.cfg.compute = compute;
        self
    }

    pub fn config(mut self, cfg: SimConfig) -> SimBuilder {
        self.cfg = cfg;
        self
    }

    /// Record an event trace (sends, receives, compute, finishes) into the
    /// final report. Costs memory proportional to event count; intended for
    /// debugging and visualization, not for the large benches.
    pub fn trace(mut self, on: bool) -> SimBuilder {
        self.tracing = on;
        self
    }

    /// Scrape the metrics registry into windowed time-series every `window`
    /// of virtual time (ring capacity [`crate::timeseries::DEFAULT_CAPACITY`]
    /// windows). Scraping is non-yielding: a scraped run is byte-identical
    /// to an unscraped same-seed run.
    pub fn timeseries(self, window: SimTime) -> SimBuilder {
        self.timeseries_capacity(window, crate::timeseries::DEFAULT_CAPACITY)
    }

    /// [`SimBuilder::timeseries`] with an explicit ring capacity: once more
    /// than `capacity` windows complete, the oldest are evicted (counted in
    /// [`crate::timeseries::TimeSeries::dropped_windows`]).
    pub fn timeseries_capacity(mut self, window: SimTime, capacity: usize) -> SimBuilder {
        self.ts = Some((window, capacity));
        self
    }

    /// Record request-scoped traces: per-request stage latencies
    /// (issue/network/queue/service/reply/cache-fill) and deterministic
    /// slowest-request exemplars per op, exported on
    /// [`SimReport::reqs`](crate::SimReport::reqs). Recording is
    /// non-yielding: a traced run is byte-identical to an untraced
    /// same-seed run.
    pub fn reqtrace(mut self, on: bool) -> SimBuilder {
        self.reqtrace = on;
        self
    }

    pub fn build(self) -> SimRuntime {
        install_quiet_hook();
        SimRuntime {
            shared: Arc::new(Shared {
                cfg: self.cfg,
                state: Mutex::new(State {
                    procs: Vec::new(),
                    nic_out_free: Vec::new(),
                    nic_in_free: Vec::new(),
                    running: None,
                    live: 0,
                    shutdown: false,
                    error: None,
                    seq: 0,
                    corr: 0,
                    total_msgs: 0,
                    total_bytes: 0,
                    dropped_msgs: 0,
                    handles: Vec::new(),
                    tracing: self.tracing,
                    trace: Vec::new(),
                    metrics: MetricsSnapshot::default(),
                    labels: Vec::new(),
                    op_labels: Vec::new(),
                    ts: self.ts.map(|(w, c)| TsRecorder::new(w, c)),
                    req: self.reqtrace.then(ReqRecorder::new),
                }),
                cv: Condvar::new(),
            }),
        }
    }
}

/// A configured simulation: spawn processes, then [`SimRuntime::run`].
pub struct SimRuntime {
    shared: Arc<Shared>,
}

impl SimRuntime {
    /// Spawn a non-daemon process. The simulation ends when all non-daemon
    /// processes finish.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        self.shared
            .spawn_impl(name, false, SimTime::ZERO, Box::new(f))
    }

    /// Spawn a daemon process (e.g. a server loop). Daemons are interrupted
    /// when every non-daemon process has finished.
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&mut SimCtx) + Send + 'static,
    {
        self.shared
            .spawn_impl(name, true, SimTime::ZERO, Box::new(f))
    }

    /// Spawn a non-daemon process whose return value is captured in an
    /// [`OutputSlot`], readable after [`SimRuntime::run`].
    pub fn spawn_collect<T, F>(&mut self, name: &str, f: F) -> OutputSlot<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut SimCtx) -> T + Send + 'static,
    {
        let slot = OutputSlot::new();
        let out = slot.clone();
        self.spawn(name, move |ctx| {
            let v = f(ctx);
            out.put(v);
        });
        slot
    }

    /// Run the simulation to completion.
    pub fn run(self) -> Result<SimReport, SimError> {
        let wall_start = Instant::now();
        let profiling = hostprof::enabled();
        if profiling {
            // Drop leftovers from earlier runs (e.g. a previous run's
            // post-run export scopes) so this report is self-contained.
            hostprof::reset();
        }
        {
            let mut st = self.shared.state.lock();
            match pick(&st) {
                Some(next) => {
                    st.running = Some(next);
                    self.shared.cv.notify_all();
                }
                None => {
                    if st.live > 0 {
                        let desc = describe_blocked(&st);
                        st.error = Some(SimError::Deadlock(desc));
                    }
                    st.shutdown = true;
                    self.shared.cv.notify_all();
                }
            }
            while !st.shutdown {
                self.shared.cv.wait(&mut st);
            }
            st.running = None;
            self.shared.cv.notify_all();
        }
        // All threads unwind on shutdown; join them before reading stats.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut st = self.shared.state.lock();
                std::mem::take(&mut st.handles)
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let mut st = self.shared.state.lock();
        if let Some(err) = st.error.clone() {
            return Err(err);
        }
        let virtual_time = st
            .procs
            .iter()
            .filter(|p| !p.daemon)
            .map(|p| p.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        let reqs = st.req.take().map(ReqRecorder::finish);
        let timeseries = st.ts.take().map(|ts| {
            let procs: Vec<(u64, u64)> = st
                .procs
                .iter()
                .map(|p| (p.stats.busy.as_nanos(), p.mailbox.len() as u64))
                .collect();
            ts.finish(virtual_time, &st.metrics, &procs)
        });
        let trace = {
            let _prof = hostprof::scope(ProfScope::TraceExport);
            // The state is being discarded, so take the trace instead of
            // cloning it — the clone was a whole-trace copy on every run.
            let mut trace = std::mem::take(&mut st.trace);
            trace.sort_by_key(|e| e.at());
            trace
        };
        let wall_time = wall_start.elapsed();
        let host = if profiling {
            // Sim-proc threads merged their totals on exit (TLS drop); fold
            // in this thread's share before draining the global table.
            hostprof::flush_thread();
            Some(hostprof::take_profile(wall_time.as_nanos() as u64))
        } else {
            None
        };
        Ok(SimReport {
            virtual_time,
            wall_time,
            total_msgs: st.total_msgs,
            total_bytes: st.total_bytes,
            dropped_msgs: st.dropped_msgs,
            procs: st.procs.iter().map(|p| p.stats.clone()).collect(),
            trace,
            metrics: st.metrics.clone(),
            labels: st.labels.clone(),
            net: self.shared.cfg.net.clone(),
            timeseries,
            reqs,
            host,
        })
    }
}
